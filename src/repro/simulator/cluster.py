"""Cluster model: nodes, task slots, and slot accounting.

Hadoop clusters of the paper's era expose capacity as fixed numbers of map and
reduce *slots* per node (TaskTracker); a job's tasks occupy slots for their
duration and the cluster utilization figures in Figure 7 count active slots.
:class:`Cluster` keeps that accounting; the scheduler decides which queued
tasks get the free slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError

__all__ = ["ClusterConfig", "Node", "Cluster", "SlotLedger"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a simulated cluster.

    Attributes:
        n_nodes: number of worker nodes.
        map_slots_per_node: concurrent map tasks a node can run.
        reduce_slots_per_node: concurrent reduce tasks a node can run.
        disk_bandwidth_bps: per-node disk bandwidth (used by the HDFS model).
        network_bandwidth_bps: per-node network bandwidth (used for shuffle).
    """

    n_nodes: int = 100
    map_slots_per_node: int = 4
    reduce_slots_per_node: int = 2
    disk_bandwidth_bps: float = 100e6
    network_bandwidth_bps: float = 125e6

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise SimulationError("cluster needs at least one node")
        if self.map_slots_per_node <= 0 or self.reduce_slots_per_node <= 0:
            raise SimulationError("slots per node must be positive")
        if self.disk_bandwidth_bps <= 0 or self.network_bandwidth_bps <= 0:
            raise SimulationError("bandwidths must be positive")

    @property
    def total_map_slots(self) -> int:
        return self.n_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.n_nodes * self.reduce_slots_per_node

    @property
    def total_slots(self) -> int:
        return self.total_map_slots + self.total_reduce_slots


@dataclass
class Node:
    """One worker node with its slot occupancy counters."""

    node_id: int
    map_slots: int
    reduce_slots: int
    busy_map_slots: int = 0
    busy_reduce_slots: int = 0

    @property
    def free_map_slots(self) -> int:
        return self.map_slots - self.busy_map_slots

    @property
    def free_reduce_slots(self) -> int:
        return self.reduce_slots - self.busy_reduce_slots

    def acquire(self, kind: str) -> None:
        """Occupy one slot of ``kind`` ('map' or 'reduce')."""
        if kind == "map":
            if self.free_map_slots <= 0:
                raise SimulationError("node %d has no free map slots" % self.node_id)
            self.busy_map_slots += 1
        elif kind == "reduce":
            if self.free_reduce_slots <= 0:
                raise SimulationError("node %d has no free reduce slots" % self.node_id)
            self.busy_reduce_slots += 1
        else:
            raise SimulationError("unknown slot kind %r" % (kind,))

    def release(self, kind: str) -> None:
        """Release one slot of ``kind``."""
        if kind == "map":
            if self.busy_map_slots <= 0:
                raise SimulationError("node %d released a map slot it did not hold" % self.node_id)
            self.busy_map_slots -= 1
        elif kind == "reduce":
            if self.busy_reduce_slots <= 0:
                raise SimulationError("node %d released a reduce slot it did not hold" % self.node_id)
            self.busy_reduce_slots -= 1
        else:
            raise SimulationError("unknown slot kind %r" % (kind,))


class SlotLedger:
    """Aggregate busy/free slot counters without per-node placement.

    The vectorized replay engine tracks slot occupancy with two integers per
    slot kind.  This is exact for every recorded metric: the rotating-cursor
    node placement in :class:`Cluster` spreads tasks across nodes, but nothing
    the replayer measures (wait times, completion times, active-slot counts)
    observes *which* node ran a task — only how many slots of each kind are
    busy.  :class:`Cluster` remains the authoritative model when per-node
    occupancy matters (e.g. future locality experiments).
    """

    __slots__ = ("map_capacity", "reduce_capacity", "busy_map", "busy_reduce")

    def __init__(self, config: ClusterConfig):
        self.map_capacity = config.total_map_slots
        self.reduce_capacity = config.total_reduce_slots
        self.busy_map = 0
        self.busy_reduce = 0

    def free_slots(self, kind: str) -> int:
        if kind == "map":
            return self.map_capacity - self.busy_map
        if kind == "reduce":
            return self.reduce_capacity - self.busy_reduce
        raise SimulationError("unknown slot kind %r" % (kind,))

    def acquire(self, kind: str, count: int = 1) -> None:
        """Occupy ``count`` slots of ``kind``."""
        if kind == "map":
            self.busy_map += count
            if self.busy_map > self.map_capacity:
                raise SimulationError("acquired more map slots than exist")
        elif kind == "reduce":
            self.busy_reduce += count
            if self.busy_reduce > self.reduce_capacity:
                raise SimulationError("acquired more reduce slots than exist")
        else:
            raise SimulationError("unknown slot kind %r" % (kind,))

    def release(self, kind: str, count: int = 1) -> None:
        """Release ``count`` slots of ``kind``."""
        if kind == "map":
            self.busy_map -= count
            if self.busy_map < 0:
                raise SimulationError("released a map slot that was not acquired")
        elif kind == "reduce":
            self.busy_reduce -= count
            if self.busy_reduce < 0:
                raise SimulationError("released a reduce slot that was not acquired")
        else:
            raise SimulationError("unknown slot kind %r" % (kind,))

    def total_busy_slots(self) -> int:
        return self.busy_map + self.busy_reduce


class Cluster:
    """Slot accounting over a set of nodes.

    Slot acquisition uses a least-loaded-node policy, which spreads tasks
    evenly — the behaviour the default Hadoop scheduler approximates with its
    per-heartbeat assignment.
    """

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.nodes: List[Node] = [
            Node(node_id=index, map_slots=config.map_slots_per_node,
                 reduce_slots=config.reduce_slots_per_node)
            for index in range(config.n_nodes)
        ]
        # Aggregate busy counters keep free_slots()/utilization() O(1); the
        # per-node counters stay authoritative for placement decisions.
        self._busy = {"map": 0, "reduce": 0}
        self._cursor = {"map": 0, "reduce": 0}

    # ------------------------------------------------------------------
    def free_slots(self, kind: str) -> int:
        """Total free slots of ``kind`` across the cluster."""
        return self._capacity(kind) - self.busy_slots(kind)

    def busy_slots(self, kind: str) -> int:
        """Total busy slots of ``kind`` across the cluster."""
        if kind not in self._busy:
            raise SimulationError("unknown slot kind %r" % (kind,))
        return self._busy[kind]

    def _capacity(self, kind: str) -> int:
        if kind == "map":
            return self.config.total_map_slots
        if kind == "reduce":
            return self.config.total_reduce_slots
        raise SimulationError("unknown slot kind %r" % (kind,))

    def total_busy_slots(self) -> int:
        return self._busy["map"] + self._busy["reduce"]

    def utilization(self) -> float:
        """Fraction of all slots currently busy."""
        return self.total_busy_slots() / self.config.total_slots

    def acquire_slot(self, kind: str) -> Optional[Node]:
        """Acquire one slot of ``kind`` using a rotating-cursor placement.

        The cursor spreads consecutive tasks across nodes (approximating the
        per-heartbeat round-robin of the Hadoop JobTracker) while keeping the
        operation O(1) amortized.  Returns the node, or ``None`` when no slot
        of that kind is free.
        """
        if self.free_slots(kind) <= 0:
            return None
        n_nodes = len(self.nodes)
        start = self._cursor[kind]
        for offset in range(n_nodes):
            node = self.nodes[(start + offset) % n_nodes]
            free = node.free_map_slots if kind == "map" else node.free_reduce_slots
            if free > 0:
                node.acquire(kind)
                self._busy[kind] += 1
                self._cursor[kind] = (start + offset + 1) % n_nodes
                return node
        return None  # pragma: no cover - free_slots() > 0 guarantees a hit

    def release_slot(self, node: Node, kind: str) -> None:
        """Release a slot previously acquired on ``node``."""
        node.release(kind)
        if self._busy[kind] <= 0:
            raise SimulationError("released a %s slot that was not acquired" % kind)
        self._busy[kind] -= 1
