"""The pre-vectorization replay event loop, kept as a semantic reference.

The vectorized engine in :mod:`repro.simulator.replay` replaced the original
closure-per-event loop that had defined replay semantics since the simulator
landed.  Every metric the repo publishes (Figure-7 utilization, wait and
completion summaries, cache statistics) is pinned to that loop's event
ordering, so the old implementation is preserved here — unchanged except for
taking the replayer as an argument — as the ground truth the differential
equivalence suite (``tests/simulator/test_replay_equivalence.py``) checks the
new engine against, bit for bit.

This module is test/benchmark infrastructure, not a public API: it is slow by
design (one :class:`~repro.simulator.events.Event` object plus closures per
task transition) and exists so that any change to the vectorized engine can
be re-pinned against the original semantics.

The invariants this loop defines (and the new engine reproduces):

* submissions fire at ``max(0, submit_time_s)`` with priority 1, completions
  with priority 0 — at equal times every completion precedes every
  submission, submissions tie-break in input order, completions in dispatch
  order (the event-queue insertion sequence);
* jobs are pulled from the source in input order with a bounded look-ahead;
  ``split_job`` and the ``task_transform`` hook run at pull time, so RNG-based
  transforms consume their stream in input order;
* each submission serves the job's input through HDFS + cache *before* any
  task dispatch at that instant; each finished job writes its output (and
  invalidates the cache) when its last task completes;
* utilization is observed once before the run, after every task dispatch,
  after every task completion, and once after the run at the final horizon;
* metric folds (``record_job``) happen in job-finish event order.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator

from ..errors import SimulationError
from ..traces.schema import Job
from .cluster import Cluster
from .events import EventQueue
from .metrics import JobOutcome, SimulationMetrics
from .tasks import SimJob, SimTask, split_job

__all__ = ["legacy_replay_jobs"]


def legacy_replay_jobs(replayer, jobs: Iterable[Job]) -> SimulationMetrics:
    """Replay ``jobs`` with the original event loop of ``replayer``'s config.

    ``replayer`` is a :class:`~repro.simulator.replay.WorkloadReplayer` (or
    subclass); its scheduler/cache/HDFS state is mutated exactly as the old
    ``replay_jobs`` did, so use a fresh replayer per call.
    """
    job_iter: Iterator[Job] = iter(jobs)
    if replayer.max_simulated_jobs is not None:
        job_iter = itertools.islice(job_iter, replayer.max_simulated_jobs)

    queue = EventQueue()
    cluster = Cluster(replayer.cluster_config)
    metrics = SimulationMetrics(total_slots=replayer.cluster_config.total_slots,
                                keep_outcomes=replayer.keep_outcomes)
    active_jobs: Dict[str, SimJob] = {}
    last_submit = [float("-inf")]
    scheduler = replayer.scheduler

    def record_utilization():
        metrics.record_utilization(queue.now, cluster.total_busy_slots())

    def pull_next_job() -> bool:
        """Schedule the next job's submission; False when the source is dry."""
        job = next(job_iter, None)
        if job is None:
            return False
        if job.submit_time_s < last_submit[0]:
            raise SimulationError(
                "job %s submitted at %.3f after a job submitted at %.3f: "
                "streaming replay needs jobs in arrival-time order (sort "
                "the trace or rebuild the store with 'repro engine convert')"
                % (job.job_id, job.submit_time_s, last_submit[0]))
        last_submit[0] = job.submit_time_s
        sim_job = split_job(job)
        if replayer.task_transform is not None:
            replayer.task_transform(sim_job)
        metrics.record_submission()
        queue.schedule(max(0.0, job.submit_time_s), on_submit(sim_job), priority=1)
        return True

    def on_submit(sim_job: SimJob):
        def handler():
            active_jobs[sim_job.job_id] = sim_job
            scheduler.add_job(sim_job)
            replayer._serve_input(sim_job, queue.now)
            dispatch("map")
            dispatch("reduce")
            # This submission fired: top the look-ahead window back up.
            pull_next_job()
        return handler

    def dispatch(kind: str):
        """Hand free slots of ``kind`` to the scheduler until it runs dry."""
        while cluster.free_slots(kind) > 0:
            picked = scheduler.next_task(kind, queue.now)
            if picked is None:
                return
            sim_job, task = picked
            node = cluster.acquire_slot(kind)
            if node is None:  # pragma: no cover - free_slots() guarded above
                return
            if sim_job.start_time_s is None:
                sim_job.start_time_s = queue.now
            task.start_time_s = queue.now
            record_utilization()
            queue.schedule_after(task.duration_s, on_task_done(sim_job, task, node, kind))

    def on_task_done(sim_job: SimJob, task: SimTask, node, kind: str):
        def handler():
            task.finish_time_s = queue.now
            cluster.release_slot(node, kind)
            if hasattr(scheduler, "task_finished"):
                scheduler.task_finished(sim_job)
            if hasattr(scheduler, "task_released"):
                scheduler.task_released(sim_job, kind)
            if kind == "map":
                sim_job.maps_remaining -= 1
            else:
                sim_job.reduces_remaining -= 1
            record_utilization()
            if sim_job.done:
                finish_job(sim_job)
            dispatch("map")
            dispatch("reduce")
        return handler

    def finish_job(sim_job: SimJob):
        sim_job.finish_time_s = queue.now
        scheduler.job_finished(sim_job)
        active_jobs.pop(sim_job.job_id, None)
        replayer._write_output(sim_job, queue.now)
        metrics.record_job(
            JobOutcome(
                job_id=sim_job.job_id,
                submit_time_s=sim_job.submit_time_s,
                start_time_s=sim_job.start_time_s,
                finish_time_s=sim_job.finish_time_s,
                wait_time_s=sim_job.wait_time_s,
                completion_time_s=sim_job.completion_time_s,
                total_bytes=sim_job.job.total_bytes,
                n_tasks=len(sim_job.map_tasks) + len(sim_job.reduce_tasks),
            )
        )

    # Prime the look-ahead window, then let each fired submission refill it.
    for _ in range(replayer.lookahead):
        if not pull_next_job():
            break
    if metrics.jobs_submitted == 0:
        raise SimulationError("cannot replay an empty job stream")

    record_utilization()
    queue.run()
    metrics.horizon_s = queue.now
    metrics.cache_stats = replayer.cache.stats
    record_utilization()
    metrics.finalize()
    return metrics
