"""Job schedulers for the replay simulator.

The scheduler decides which queued task gets a freed slot.  Three policies are
provided:

* :class:`FifoScheduler` — Hadoop's original default: jobs are served strictly
  in submission order.  Under the small-jobs-dominated workloads of the paper
  a single large job can head-of-line-block hundreds of interactive jobs,
  which is the §6.2 observation motivating a split performance/capacity tier.
* :class:`FairScheduler` — Facebook's fair scheduler: slots go to the running
  job with the fewest currently running tasks, equalizing shares.
* :class:`CapacityScheduler` — two pools ("interactive" for small jobs,
  "batch" for everything else) with a configurable slot share per pool: the
  performance/capacity split the paper suggests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..units import GB
from .tasks import SimJob, SimTask

__all__ = ["Scheduler", "FifoScheduler", "FairScheduler", "CapacityScheduler"]


class Scheduler:
    """Base scheduler interface.

    The replayer calls :meth:`add_job` when a job is submitted,
    :meth:`next_task` whenever a slot of a given kind frees up, and
    :meth:`job_finished` when a job's last task completes.
    """

    def add_job(self, sim_job: SimJob) -> None:
        raise NotImplementedError

    def next_task(self, kind: str, now_s: float) -> Optional[Tuple[SimJob, SimTask]]:
        """Pick the next task of ``kind`` to run, or ``None`` if none is ready."""
        raise NotImplementedError

    def job_finished(self, sim_job: SimJob) -> None:
        """Notification that a job has completed (default: no-op)."""

    def drain(self, kind: str, now_s: float, max_tasks: int) -> List[Tuple[SimJob, SimTask]]:
        """Pick up to ``max_tasks`` tasks of ``kind``, in dispatch order.

        The default implementation calls :meth:`next_task` repeatedly, so the
        picks — and their order — are identical to a caller looping one slot
        at a time.  Policies whose choices do not depend on their own running
        counters (FIFO) may override this with a batched pop; count-sensitive
        policies (fair, capacity) must not, because the caller replays slot
        effects one task at a time between picks.
        """
        picks: List[Tuple[SimJob, SimTask]] = []
        while len(picks) < max_tasks:
            picked = self.next_task(kind, now_s)
            if picked is None:
                break
            picks.append(picked)
        return picks

    def pending_jobs(self) -> int:
        """Number of jobs that still have unscheduled tasks."""
        raise NotImplementedError


class _JobQueueMixin:
    """Shared bookkeeping: per-job queues of unscheduled map/reduce tasks."""

    def __init__(self):
        self._jobs: List[SimJob] = []
        self._map_queues: Dict[str, Deque[SimTask]] = {}
        self._reduce_queues: Dict[str, Deque[SimTask]] = {}
        self._running_tasks: Dict[str, int] = {}

    def _register(self, sim_job: SimJob) -> None:
        self._jobs.append(sim_job)
        self._map_queues[sim_job.job_id] = deque(sim_job.map_tasks)
        self._reduce_queues[sim_job.job_id] = deque(sim_job.reduce_tasks)
        self._running_tasks.setdefault(sim_job.job_id, 0)

    def _queue_for(self, sim_job: SimJob, kind: str) -> Deque[SimTask]:
        if kind == "map":
            return self._map_queues[sim_job.job_id]
        if kind == "reduce":
            return self._reduce_queues[sim_job.job_id]
        raise SchedulingError("unknown task kind %r" % (kind,))

    def _has_ready_task(self, sim_job: SimJob, kind: str) -> bool:
        queue = self._queue_for(sim_job, kind)
        if not queue:
            return False
        if kind == "reduce" and not sim_job.map_stage_done:
            # Reduce tasks wait for the map barrier.
            return False
        return True

    def _pop_task(self, sim_job: SimJob, kind: str) -> Tuple[SimJob, SimTask]:
        task = self._queue_for(sim_job, kind).popleft()
        self._running_tasks[sim_job.job_id] = self._running_tasks.get(sim_job.job_id, 0) + 1
        return sim_job, task

    def task_finished(self, sim_job: SimJob) -> None:
        """Called by the replayer when one of the job's tasks completes."""
        count = self._running_tasks.get(sim_job.job_id, 0)
        self._running_tasks[sim_job.job_id] = max(0, count - 1)

    def job_finished(self, sim_job: SimJob) -> None:
        self._jobs = [job for job in self._jobs if job.job_id != sim_job.job_id]
        self._map_queues.pop(sim_job.job_id, None)
        self._reduce_queues.pop(sim_job.job_id, None)
        self._running_tasks.pop(sim_job.job_id, None)

    def pending_jobs(self) -> int:
        return sum(
            1 for job in self._jobs
            if self._map_queues.get(job.job_id) or self._reduce_queues.get(job.job_id)
        )


class FifoScheduler(_JobQueueMixin, Scheduler):
    """Strict submission-order scheduling (Hadoop's original default)."""

    def add_job(self, sim_job: SimJob) -> None:
        self._register(sim_job)

    def next_task(self, kind: str, now_s: float) -> Optional[Tuple[SimJob, SimTask]]:
        # Inlined _has_ready_task: this probe runs once per freed slot per
        # event, so the per-job dict lookups are the dispatch loop's hottest
        # line.
        if kind == "map":
            queues = self._map_queues
            for sim_job in self._jobs:  # jobs were added in submission order
                if queues[sim_job.job_id]:
                    return self._pop_task(sim_job, kind)
            return None
        if kind != "reduce":
            raise SchedulingError("unknown task kind %r" % (kind,))
        queues = self._reduce_queues
        for sim_job in self._jobs:
            if queues[sim_job.job_id] and sim_job.map_stage_done:
                return self._pop_task(sim_job, kind)
        return None

    def drain(self, kind: str, now_s: float, max_tasks: int) -> List[Tuple[SimJob, SimTask]]:
        """Batched pop: whole per-job runs at a time.

        FIFO picks never read the running-task counters, so popping a job's
        contiguous run of queued tasks yields exactly the picks (and order)
        of the one-at-a-time loop — this is what lets the vectorized replay
        engine dispatch a stage in one step.
        """
        if kind == "map":
            queues = self._map_queues
        elif kind == "reduce":
            queues = self._reduce_queues
        else:
            raise SchedulingError("unknown task kind %r" % (kind,))
        picks: List[Tuple[SimJob, SimTask]] = []
        for sim_job in self._jobs:
            if len(picks) >= max_tasks:
                break
            queue = queues[sim_job.job_id]
            if not queue or (kind == "reduce" and not sim_job.map_stage_done):
                continue
            take = min(max_tasks - len(picks), len(queue))
            for _ in range(take):
                picks.append((sim_job, queue.popleft()))
            self._running_tasks[sim_job.job_id] = (
                self._running_tasks.get(sim_job.job_id, 0) + take)
        return picks


class FairScheduler(_JobQueueMixin, Scheduler):
    """Fair sharing: the freed slot goes to the job with the fewest running tasks."""

    def add_job(self, sim_job: SimJob) -> None:
        self._register(sim_job)

    def next_task(self, kind: str, now_s: float) -> Optional[Tuple[SimJob, SimTask]]:
        candidates = [job for job in self._jobs if self._has_ready_task(job, kind)]
        if not candidates:
            return None
        chosen = min(
            candidates,
            key=lambda job: (self._running_tasks.get(job.job_id, 0), job.submit_time_s),
        )
        return self._pop_task(chosen, kind)


class CapacityScheduler(Scheduler):
    """Two-pool capacity scheduling: an interactive pool and a batch pool.

    Jobs whose total data volume is below ``small_job_threshold_bytes`` go to
    the interactive pool; the interactive pool owns
    ``interactive_share`` of every slot type and the batch pool owns the rest.
    Each pool schedules FIFO internally, and an idle pool's slots are lent to
    the other pool (work-conserving).

    This is the "performance tier / capacity tier" split §6.2 of the paper
    argues for; the cache/scheduler ablation benchmarks compare it against
    FIFO on job wait times for small jobs.
    """

    def __init__(self, total_map_slots: int, total_reduce_slots: int,
                 interactive_share: float = 0.5,
                 small_job_threshold_bytes: float = 10 * GB):
        if not 0.0 < interactive_share < 1.0:
            raise SchedulingError("interactive_share must be in (0, 1)")
        if total_map_slots <= 0 or total_reduce_slots <= 0:
            raise SchedulingError("slot totals must be positive")
        self.interactive_share = float(interactive_share)
        self.small_job_threshold_bytes = float(small_job_threshold_bytes)
        self._limits = {
            ("interactive", "map"): max(1, int(round(total_map_slots * interactive_share))),
            ("interactive", "reduce"): max(1, int(round(total_reduce_slots * interactive_share))),
            ("batch", "map"): max(1, total_map_slots - int(round(total_map_slots * interactive_share))),
            ("batch", "reduce"): max(1, total_reduce_slots - int(round(total_reduce_slots * interactive_share))),
        }
        self._running = {key: 0 for key in self._limits}
        self._pools: Dict[str, FifoScheduler] = {
            "interactive": FifoScheduler(),
            "batch": FifoScheduler(),
        }
        self._pool_of_job: Dict[str, str] = {}

    def _pool_for(self, sim_job: SimJob) -> str:
        return ("interactive"
                if sim_job.job.total_bytes <= self.small_job_threshold_bytes
                else "batch")

    def add_job(self, sim_job: SimJob) -> None:
        pool = self._pool_for(sim_job)
        self._pool_of_job[sim_job.job_id] = pool
        self._pools[pool].add_job(sim_job)

    def next_task(self, kind: str, now_s: float) -> Optional[Tuple[SimJob, SimTask]]:
        # Pools under their limit pick first, ordered by how far below their
        # limit they are; an idle pool's unused capacity is lent to the other.
        ordered = sorted(
            self._pools,
            key=lambda pool: self._running[(pool, kind)] / self._limits[(pool, kind)],
        )
        for enforce_limit in (True, False):
            for pool in ordered:
                if enforce_limit and self._running[(pool, kind)] >= self._limits[(pool, kind)]:
                    continue
                picked = self._pools[pool].next_task(kind, now_s)
                if picked is not None:
                    self._running[(pool, kind)] += 1
                    return picked
        return None

    def task_finished(self, sim_job: SimJob) -> None:
        pool = self._pool_of_job.get(sim_job.job_id)
        if pool is None:
            return
        self._pools[pool].task_finished(sim_job)

    def task_released(self, sim_job: SimJob, kind: str) -> None:
        """Return the pool's slot accounting when one of its tasks finishes."""
        pool = self._pool_of_job.get(sim_job.job_id)
        if pool is None:
            return
        self._running[(pool, kind)] = max(0, self._running[(pool, kind)] - 1)

    def job_finished(self, sim_job: SimJob) -> None:
        pool = self._pool_of_job.pop(sim_job.job_id, None)
        if pool is not None:
            self._pools[pool].job_finished(sim_job)

    def pending_jobs(self) -> int:
        return sum(pool.pending_jobs() for pool in self._pools.values())
