"""Task-level decomposition of jobs for the replay simulator.

A trace records each job's aggregate map/reduce task time (slot-seconds) and,
when available, its task counts.  To replay a job the simulator splits those
aggregates into individual map and reduce tasks: each task occupies one slot
for its share of the aggregate task time.  This matches how SWIM replays
synthetic jobs — what matters for workload-level behaviour is the number of
slot-seconds demanded and the degree of parallelism, not the user code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from ..traces.schema import Job

__all__ = ["SimTask", "SimJob", "split_job"]

#: Default seconds of work per task when a trace lacks task counts.
DEFAULT_SECONDS_PER_TASK = 30.0

#: Cap on the number of simulated tasks per stage, to keep replay tractable
#: for jobs with millions of slot-seconds.  The aggregate task time is
#: preserved; only the granularity changes.
MAX_TASKS_PER_STAGE = 512


@dataclass
class SimTask:
    """One simulated task.

    Attributes:
        job_id: id of the owning job.
        kind: ``"map"`` or ``"reduce"``.
        duration_s: how long the task occupies its slot.
        index: task index within its stage.
    """

    job_id: str
    kind: str
    duration_s: float
    index: int
    start_time_s: Optional[float] = None
    finish_time_s: Optional[float] = None


@dataclass
class SimJob:
    """A job prepared for replay: its tasks plus progress bookkeeping.

    Reduce tasks only become runnable once every map task has finished,
    mirroring the Hadoop barrier between the map and reduce stages (ignoring
    the early-shuffle optimization, which does not change slot occupancy).
    """

    job: Job
    map_tasks: List[SimTask]
    reduce_tasks: List[SimTask]
    submit_time_s: float = 0.0
    start_time_s: Optional[float] = None
    finish_time_s: Optional[float] = None
    maps_remaining: int = 0
    reduces_remaining: int = 0

    def __post_init__(self):
        self.maps_remaining = len(self.map_tasks)
        self.reduces_remaining = len(self.reduce_tasks)

    @property
    def job_id(self) -> str:
        return self.job.job_id

    @property
    def map_stage_done(self) -> bool:
        return self.maps_remaining == 0

    @property
    def done(self) -> bool:
        return self.maps_remaining == 0 and self.reduces_remaining == 0

    @property
    def wait_time_s(self) -> float:
        """Time between submission and the first task start (0 if never started)."""
        if self.start_time_s is None:
            return 0.0
        return max(0.0, self.start_time_s - self.submit_time_s)

    @property
    def completion_time_s(self) -> Optional[float]:
        """Time between submission and job completion (None if unfinished)."""
        if self.finish_time_s is None:
            return None
        return self.finish_time_s - self.submit_time_s


def _stage_tasks(job_id: str, kind: str, total_task_seconds: float,
                 recorded_count: Optional[int]) -> List[SimTask]:
    """Split one stage's aggregate task time into individual tasks."""
    if total_task_seconds <= 0:
        return []
    if recorded_count and recorded_count > 0:
        n_tasks = int(recorded_count)
    else:
        n_tasks = max(1, int(round(total_task_seconds / DEFAULT_SECONDS_PER_TASK)))
    n_tasks = min(n_tasks, MAX_TASKS_PER_STAGE)
    per_task = total_task_seconds / n_tasks
    return [
        SimTask(job_id=job_id, kind=kind, duration_s=per_task, index=index)
        for index in range(n_tasks)
    ]


def split_job(job: Job) -> SimJob:
    """Split a trace job into simulated map and reduce tasks.

    Raises:
        SimulationError: if the job reports negative task time (schema
            validation normally prevents this).
    """
    map_seconds = float(job.map_task_seconds or 0.0)
    reduce_seconds = float(job.reduce_task_seconds or 0.0)
    if map_seconds < 0 or reduce_seconds < 0:
        raise SimulationError("job %s has negative task time" % job.job_id)
    map_tasks = _stage_tasks(job.job_id, "map", map_seconds, job.map_tasks)
    reduce_tasks = _stage_tasks(job.job_id, "reduce", reduce_seconds, job.reduce_tasks)
    if not map_tasks and not reduce_tasks:
        # Zero-compute jobs still occupy a slot for a moment so they appear in
        # occupancy accounting and complete in submission order.
        map_tasks = [SimTask(job_id=job.job_id, kind="map", duration_s=1.0, index=0)]
    return SimJob(job=job, map_tasks=map_tasks, reduce_tasks=reduce_tasks,
                  submit_time_s=job.submit_time_s)
