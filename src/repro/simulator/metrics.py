"""Simulation metrics collection — incremental, mergeable, bounded-memory.

The replayer records what the paper's Figure 7 rightmost column shows —
cluster occupancy over time in active slots — plus per-job wait and completion
summaries and the storage-cache statistics needed by the policy-comparison
benchmarks (§4.2/§4.3).

Since the streaming-replay refactor, every summary is maintained
*incrementally* on top of the mergeable aggregate states from
:mod:`repro.engine.aggregates`:

* :class:`MetricAccumulator` folds a stream of per-job scalar samples (wait
  time, completion time) into count/sum/min/max/mean plus a fixed-bin
  log-histogram :class:`~repro.engine.aggregates.HistogramSketch` for
  percentile and CDF read-outs;
* :class:`UtilizationAccumulator` integrates the active-slot step function
  into total busy slot-seconds and per-hour slot-second bins (the Figure-7
  utilization column) without retaining the samples.

This means a replay of millions of jobs needs O(1) metric memory.  Retaining
the raw per-job :class:`JobOutcome` list and the utilization samples is now an
*option* (``keep_outcomes``, on by default for :class:`WorkloadReplayer`, off
for :class:`~repro.simulator.replay.StreamingReplayer`); exact medians and
per-job analyses need it, everything else reads from the accumulators.

Exactness contract (relied on by the replay benchmark and the merge tests):

* counts, finished-job tallies, min/max and sketch bin counts are **exact**
  and association-independent — merging any partition of the sample stream is
  bit-identical to folding it serially;
* float sums (and hence means, busy slot-seconds) are deterministic for a
  fixed fold order, so a streamed replay and a materialized replay of the
  same jobs produce bit-identical values; merging differently-partitioned
  accumulators can differ in the last ulp (float addition is not associative);
* percentile read-outs are sketch-approximate (~7% relative resolution),
  clamped to the exact observed min/max, unless per-job outcomes were
  retained, in which case they are exact.

Doctest — fold two disjoint halves and merge, versus one serial pass::

    >>> import numpy as np
    >>> serial = MetricAccumulator()
    >>> serial.update(np.array([1.0, 2.0, 4.0, 8.0]))
    >>> left, right = MetricAccumulator(), MetricAccumulator()
    >>> left.update(np.array([1.0, 2.0]))
    >>> right.update(np.array([4.0, 8.0]))
    >>> left.merge(right)
    >>> (left.count, left.total, left.minimum, left.maximum) == \
        (serial.count, serial.total, serial.minimum, serial.maximum)
    True
    >>> bool(np.array_equal(left.sketch.counts, serial.sketch.counts))
    True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.aggregates import HistogramSketch, MaxState, MeanState, MinState
from ..errors import SimulationError
from .cache import CacheStats

__all__ = [
    "JobOutcome",
    "MetricAccumulator",
    "UtilizationAccumulator",
    "SimulationMetrics",
]

#: Scalar samples are buffered and folded into the aggregate states in blocks
#: of this size; the buffer is the only per-sample state and is bounded.
ACCUMULATOR_BATCH = 4096

_SECONDS_PER_HOUR = 3600.0


class JobOutcome:
    """Per-job result of a replay.

    Attributes:
        job_id: the job.
        submit_time_s: submission time.
        start_time_s: time the first task started (None if never ran).
        finish_time_s: time the last task finished (None if unfinished).
        wait_time_s: start minus submit (0 if never started).
        completion_time_s: finish minus submit (None if unfinished).
        total_bytes: the job's input + shuffle + output volume.
        n_tasks: number of simulated tasks.
    """

    __slots__ = ("job_id", "submit_time_s", "start_time_s", "finish_time_s",
                 "wait_time_s", "completion_time_s", "total_bytes", "n_tasks")

    def __init__(self, job_id: str, submit_time_s: float,
                 start_time_s: Optional[float], finish_time_s: Optional[float],
                 wait_time_s: float, completion_time_s: Optional[float],
                 total_bytes: float, n_tasks: int):
        self.job_id = job_id
        self.submit_time_s = submit_time_s
        self.start_time_s = start_time_s
        self.finish_time_s = finish_time_s
        self.wait_time_s = wait_time_s
        self.completion_time_s = completion_time_s
        self.total_bytes = total_bytes
        self.n_tasks = n_tasks

    def __repr__(self) -> str:
        return ("JobOutcome(job_id=%r, submit_time_s=%r, wait_time_s=%r, "
                "completion_time_s=%r)" % (self.job_id, self.submit_time_s,
                                           self.wait_time_s, self.completion_time_s))

    def __eq__(self, other) -> bool:
        if not isinstance(other, JobOutcome):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name) for name in self.__slots__)


class MetricAccumulator:
    """Mergeable summary of one scalar metric stream (e.g. job wait times).

    Built on the engine's aggregate states: a :class:`MeanState` carries the
    exact count and float sum, :class:`MinState`/:class:`MaxState` the exact
    extremes, and a :class:`HistogramSketch` supports percentile/CDF
    read-outs.  Scalars are buffered (:data:`ACCUMULATOR_BATCH` at a time)
    so the per-sample cost is a list append, not a NumPy round-trip.
    """

    __slots__ = ("mean", "low", "high", "sketch", "_pending")

    def __init__(self):
        self.mean = MeanState()
        self.low = MinState()
        self.high = MaxState()
        self.sketch = HistogramSketch()
        self._pending: List[float] = []

    # -- folding -----------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one scalar sample."""
        self._pending.append(value)
        if len(self._pending) >= ACCUMULATOR_BATCH:
            self.flush()

    def update(self, values: np.ndarray) -> None:
        """Fold a batch of samples (flushes buffered scalars first)."""
        self.flush()
        self._update_array(np.asarray(values, dtype=float))

    def flush(self) -> None:
        """Fold any buffered scalars into the aggregate states."""
        if self._pending:
            block = np.array(self._pending, dtype=float)
            self._pending = []
            self._update_array(block)

    def _update_array(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self.mean.update(values)
        self.low.update(values)
        self.high.update(values)
        self.sketch.update(values)

    def merge(self, other: "MetricAccumulator") -> None:
        """Combine with an accumulator folded over a disjoint sample stream."""
        self.flush()
        other.flush()
        self.mean.merge(other.mean)
        self.low.merge(other.low)
        self.high.merge(other.high)
        self.sketch.merge(other.sketch)

    # -- read-outs ---------------------------------------------------------
    @property
    def count(self) -> int:
        """Exact number of samples folded so far."""
        self.flush()
        return self.mean.count

    @property
    def total(self) -> float:
        self.flush()
        return self.mean.total

    @property
    def minimum(self) -> Optional[float]:
        self.flush()
        return self.low.value

    @property
    def maximum(self) -> Optional[float]:
        self.flush()
        return self.high.value

    @property
    def mean_value(self) -> Optional[float]:
        self.flush()
        return self.mean.result()

    def percentile(self, q: float) -> Optional[float]:
        """Sketch-approximate percentile, clamped to the observed min/max."""
        self.flush()
        return self.sketch.percentile(q)

    def cdf_points(self, max_points: int = 256) -> List[Tuple[float, float]]:
        self.flush()
        return self.sketch.cdf_points(max_points=max_points)


class UtilizationAccumulator:
    """Incremental time-weighted integral of the active-slot step function.

    ``observe(now, slots)`` closes the segment since the previous observation
    (charging the *previous* slot count over it, step-function semantics) and
    accumulates both the total busy slot-seconds and per-hour slot-second
    bins.  The bins grow with the simulated horizon (one float per hour), not
    with the number of observations, so a replay of millions of task events
    keeps O(hours) utilization state.
    """

    __slots__ = ("first_time_s", "last_time_s", "last_slots",
                 "busy_slot_seconds", "hourly_slot_seconds", "n_observations")

    def __init__(self):
        self.first_time_s: Optional[float] = None
        self.last_time_s: Optional[float] = None
        self.last_slots = 0.0
        self.busy_slot_seconds = 0.0
        self.hourly_slot_seconds: List[float] = []
        self.n_observations = 0

    def observe(self, now_s: float, active_slots: float) -> None:
        """Record the active-slot count at ``now_s`` (monotone non-decreasing)."""
        self.n_observations += 1
        if self.last_time_s is None:
            self.first_time_s = now_s
            self.last_time_s = now_s
            self.last_slots = float(active_slots)
            return
        if now_s < self.last_time_s:
            raise SimulationError(
                "utilization observations must be time-ordered "
                "(%.3f after %.3f)" % (now_s, self.last_time_s))
        start, end, value = self.last_time_s, now_s, self.last_slots
        if end > start:
            # Idle (zero-slot) segments still extend the hourly bins so the
            # step reconstruction in utilization_steps() covers the full span.
            self.busy_slot_seconds += value * (end - start)
            hour = int(start // _SECONDS_PER_HOUR)
            while start < end:
                hour_end = min(end, (hour + 1) * _SECONDS_PER_HOUR)
                if hour >= len(self.hourly_slot_seconds):
                    self.hourly_slot_seconds.extend(
                        [0.0] * (hour + 1 - len(self.hourly_slot_seconds)))
                self.hourly_slot_seconds[hour] += value * (hour_end - start)
                start = hour_end
                hour += 1
        self.last_time_s = now_s
        self.last_slots = float(active_slots)

    @property
    def span_s(self) -> float:
        """Time between the first and last observation."""
        if self.first_time_s is None or self.last_time_s is None:
            return 0.0
        return self.last_time_s - self.first_time_s

    def merge(self, other: "UtilizationAccumulator") -> None:
        """Combine with an accumulator covering a disjoint simulated period."""
        self.busy_slot_seconds += other.busy_slot_seconds
        self.n_observations += other.n_observations
        if len(other.hourly_slot_seconds) > len(self.hourly_slot_seconds):
            self.hourly_slot_seconds.extend(
                [0.0] * (len(other.hourly_slot_seconds) - len(self.hourly_slot_seconds)))
        for hour, value in enumerate(other.hourly_slot_seconds):
            self.hourly_slot_seconds[hour] += value
        if other.first_time_s is not None:
            self.first_time_s = (other.first_time_s if self.first_time_s is None
                                 else min(self.first_time_s, other.first_time_s))
        if other.last_time_s is not None:
            self.last_time_s = (other.last_time_s if self.last_time_s is None
                                else max(self.last_time_s, other.last_time_s))

    def hourly_active_slots(self) -> np.ndarray:
        """Average active slots per hour — the Figure-7 utilization column."""
        if not self.hourly_slot_seconds:
            return np.zeros(1, dtype=float)
        return np.array(self.hourly_slot_seconds, dtype=float) / _SECONDS_PER_HOUR

    def mean_utilization(self, total_slots: int) -> float:
        """Mean fraction of ``total_slots`` busy over the observed span."""
        span = self.span_s
        if total_slots <= 0 or span <= 0:
            return 0.0
        return self.busy_slot_seconds / (span * total_slots)


class SimulationMetrics:
    """Aggregated output of one replay run.

    All summaries (wait/completion means and percentiles, utilization) are
    maintained incrementally in mergeable accumulators, so the memory needed
    is independent of the number of replayed jobs.  With ``keep_outcomes=True``
    (the default for materialized replays) the raw per-job
    :class:`JobOutcome` list and the ``(time, active_slots)`` utilization
    samples are additionally retained for exact medians and per-job analyses;
    streaming replays disable it.

    Attributes:
        outcomes: per-job outcomes in finish order (empty when not retained).
        utilization_samples: (time, active slots) samples (empty when not
            retained).
        keep_outcomes: whether the two lists above are populated.
        total_slots: slot capacity of the simulated cluster.
        cache_stats: statistics of the attached cache policy (if any).
        horizon_s: simulated time span.
        jobs_submitted: number of jobs submitted to the simulator.
        finished_jobs: number of jobs that completed.
        wait: :class:`MetricAccumulator` over per-job wait times.
        completion: :class:`MetricAccumulator` over per-job completion times.
        utilization: :class:`UtilizationAccumulator` over active-slot samples.
    """

    def __init__(self, total_slots: int = 0, keep_outcomes: bool = True):
        self.outcomes: List[JobOutcome] = []
        self.utilization_samples: List[tuple] = []
        self.keep_outcomes = keep_outcomes
        self.total_slots = total_slots
        self.cache_stats: Optional[CacheStats] = None
        self.horizon_s = 0.0
        self.jobs_submitted = 0
        self.finished_jobs = 0
        self.wait = MetricAccumulator()
        self.completion = MetricAccumulator()
        self.utilization = UtilizationAccumulator()

    # -- recording ---------------------------------------------------------
    def record_submission(self) -> None:
        """Count one job handed to the simulator."""
        self.jobs_submitted += 1

    def record_job(self, outcome: JobOutcome) -> None:
        """Fold one finished (or abandoned) job into the summaries."""
        if outcome.finish_time_s is not None:
            self.finished_jobs += 1
        if outcome.start_time_s is not None:
            self.wait.add(outcome.wait_time_s)
        if outcome.completion_time_s is not None:
            self.completion.add(outcome.completion_time_s)
        if self.keep_outcomes:
            self.outcomes.append(outcome)

    def record_utilization(self, now_s: float, active_slots: int) -> None:
        self.utilization.observe(now_s, active_slots)
        if self.keep_outcomes:
            self.utilization_samples.append((now_s, active_slots))

    def finalize(self) -> None:
        """Flush buffered accumulator state (called at the end of a replay)."""
        self.wait.flush()
        self.completion.flush()

    # -- merging -----------------------------------------------------------
    def merge(self, other: "SimulationMetrics") -> None:
        """Merge metrics from a replay of a disjoint job set.

        Counts, extremes and percentile-sketch bins merge exactly; float sums
        are subject to addition rounding (see the module docstring).  Cache
        statistics and retained outcome lists are concatenated.
        """
        self.jobs_submitted += other.jobs_submitted
        self.finished_jobs += other.finished_jobs
        self.wait.merge(other.wait)
        self.completion.merge(other.completion)
        self.utilization.merge(other.utilization)
        self.horizon_s = max(self.horizon_s, other.horizon_s)
        self.total_slots = max(self.total_slots, other.total_slots)
        if other.cache_stats is not None:
            if self.cache_stats is None:
                self.cache_stats = CacheStats()
            for field_name in ("hits", "misses", "bytes_from_cache",
                               "bytes_from_disk", "evictions", "admissions_rejected"):
                setattr(self.cache_stats, field_name,
                        getattr(self.cache_stats, field_name)
                        + getattr(other.cache_stats, field_name))
        if self.keep_outcomes and other.keep_outcomes:
            self.outcomes.extend(other.outcomes)
            self.utilization_samples.extend(other.utilization_samples)
        else:
            # Mixed retention: a partial per-job list is worse than none —
            # exact summaries and utilization_steps() would silently cover
            # only one side's jobs.  Demote to accumulator-only.
            self.keep_outcomes = False
            self.outcomes = []
            self.utilization_samples = []

    # -- summaries ---------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Number of jobs recorded (submission count when known)."""
        return self.jobs_submitted or len(self.outcomes)

    def completion_times(self) -> np.ndarray:
        """Completion times of finished jobs (needs retained outcomes)."""
        return np.array([
            outcome.completion_time_s for outcome in self.outcomes
            if outcome.completion_time_s is not None
        ], dtype=float)

    def wait_times(self) -> np.ndarray:
        """Wait times of started jobs (needs retained outcomes)."""
        return np.array([
            outcome.wait_time_s for outcome in self.outcomes
            if outcome.start_time_s is not None
        ], dtype=float)

    def mean_completion_time(self) -> float:
        value = self.completion.mean_value
        if value is None:
            raise SimulationError("no finished jobs to summarize")
        return float(value)

    def median_completion_time(self) -> float:
        """Exact median with retained outcomes, sketch-approximate otherwise."""
        return self.percentile_completion_time(50.0)

    def percentile_completion_time(self, q: float) -> float:
        """Completion-time percentile.

        Exact (``numpy.percentile`` over the retained outcomes) when
        ``keep_outcomes`` is on; otherwise read from the log-histogram sketch
        (~7% relative resolution, clamped to the observed min/max).
        """
        if self.keep_outcomes:
            times = self.completion_times()
            if times.size == 0:
                raise SimulationError("no finished jobs to summarize")
            return float(np.percentile(times, q))
        value = self.completion.percentile(q)
        if value is None:
            raise SimulationError("no finished jobs to summarize")
        return float(value)

    def percentile_wait_time(self, q: float) -> float:
        """Wait-time percentile (same exactness contract as completions)."""
        if self.keep_outcomes:
            waits = self.wait_times()
            if waits.size == 0:
                return 0.0
            return float(np.percentile(waits, q))
        value = self.wait.percentile(q)
        return 0.0 if value is None else float(value)

    def mean_wait_time(self) -> float:
        value = self.wait.mean_value
        return 0.0 if value is None else float(value)

    def mean_utilization(self) -> float:
        """Mean fraction of slots busy, time-weighted over the replay."""
        return self.utilization.mean_utilization(self.total_slots)

    def hourly_active_slots(self) -> np.ndarray:
        """Average active slots per hour — the Figure-7 utilization column."""
        return self.utilization.hourly_active_slots()

    def utilization_steps(self) -> List[Tuple[float, float, float]]:
        """(start, end, busy_slots) steps of the occupancy function.

        Sample-exact when utilization samples were retained; otherwise the
        steps are reconstructed at hour granularity from the accumulator bins
        (good enough for energy integration over multi-hour horizons).

        Raises:
            SimulationError: when the replay spans zero simulated time.
        """
        if self.utilization_samples:
            samples = sorted(self.utilization_samples, key=lambda sample: sample[0])
            steps = []
            for index in range(len(samples) - 1):
                start, busy = samples[index]
                end = samples[index + 1][0]
                if end > start:
                    steps.append((float(start), float(end), float(busy)))
            if not steps:
                raise SimulationError("utilization samples span zero simulated time")
            return steps
        bins = self.utilization.hourly_slot_seconds
        if not bins:
            raise SimulationError("energy accounting needs a replay spanning "
                                  "nonzero simulated time")
        return [
            (hour * _SECONDS_PER_HOUR, (hour + 1) * _SECONDS_PER_HOUR,
             slot_seconds / _SECONDS_PER_HOUR)
            for hour, slot_seconds in enumerate(bins)
        ]

    def slowdown_of_small_jobs(self, small_bytes_threshold: float) -> float:
        """Mean completion time of jobs at or below the byte threshold.

        Raises:
            SimulationError: without retained outcomes (streaming replays
                discard the per-job list this filter needs), or when no small
                job finished.
        """
        if not self.keep_outcomes:
            raise SimulationError(
                "slowdown_of_small_jobs needs retained per-job outcomes; "
                "replay with keep_outcomes=True")
        small = [
            outcome.completion_time_s for outcome in self.outcomes
            if outcome.completion_time_s is not None
            and outcome.total_bytes <= small_bytes_threshold
        ]
        if not small:
            raise SimulationError("no finished small jobs below the threshold")
        return float(np.mean(small))

    def digest(self) -> Dict[str, object]:
        """Canonical bit-exact fingerprint of every published replay metric.

        Two replays of the same jobs produce equal digests **iff** their
        event sequences folded the same values in the same order: the digest
        covers the exact counters, the ``repr`` (shortest round-trip form) of
        every float sum/extreme, SHA-256 hashes of the percentile-sketch bin
        counts and the hourly utilization bins, and the cache counters.  It
        deliberately excludes observation *counts* and the retained raw
        sample/outcome lists — those differ in granularity (not content)
        between the vectorized engine and the legacy reference loop, which
        records one utilization sample per task transition instead of one per
        simulated instant.

        JSON round-trips losslessly (floats are ``repr`` strings), so the
        replay benchmark compares digests across subprocess boundaries and CI
        compares sharded lanes against the serial one.
        """
        import hashlib

        self.finalize()

        def sketch_digest(accumulator: MetricAccumulator) -> Dict[str, object]:
            sketch = accumulator.sketch
            return {
                "count": accumulator.count,
                "total": repr(accumulator.total),
                "minimum": repr(accumulator.minimum),
                "maximum": repr(accumulator.maximum),
                "bins_sha256": hashlib.sha256(
                    np.ascontiguousarray(sketch.counts).tobytes()).hexdigest(),
                "zero_count": sketch.zero_count,
                "n": sketch.n,
                "low": repr(sketch.low),
                "high": repr(sketch.high),
            }

        utilization = self.utilization
        hourly = np.array(utilization.hourly_slot_seconds, dtype=float)
        digest: Dict[str, object] = {
            "jobs_submitted": self.jobs_submitted,
            "finished_jobs": self.finished_jobs,
            "horizon_s": repr(self.horizon_s),
            "total_slots": self.total_slots,
            "wait": sketch_digest(self.wait),
            "completion": sketch_digest(self.completion),
            "busy_slot_seconds": repr(utilization.busy_slot_seconds),
            "utilization_first_s": repr(utilization.first_time_s),
            "utilization_last_s": repr(utilization.last_time_s),
            "hourly_bins": len(utilization.hourly_slot_seconds),
            "hourly_sha256": hashlib.sha256(hourly.tobytes()).hexdigest(),
        }
        if self.cache_stats is not None:
            stats = self.cache_stats
            digest["cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "bytes_from_cache": repr(stats.bytes_from_cache),
                "bytes_from_disk": repr(stats.bytes_from_disk),
                "evictions": stats.evictions,
                "admissions_rejected": stats.admissions_rejected,
            }
        return digest

    def summary(self) -> Dict[str, float]:
        """Accumulator-based scalar summary (identical for streamed and
        materialized replays of the same jobs)."""
        self.finalize()
        summary = {
            "jobs": self.n_jobs,
            "finished_jobs": self.finished_jobs,
            "horizon_s": self.horizon_s,
            "mean_wait_s": self.mean_wait_time(),
            "p95_wait_s": float(self.wait.percentile(95.0) or 0.0),
            "mean_completion_s": float(self.completion.mean_value or 0.0),
            "p50_completion_s": float(self.completion.percentile(50.0) or 0.0),
            "p99_completion_s": float(self.completion.percentile(99.0) or 0.0),
            "mean_utilization": self.mean_utilization(),
        }
        if self.cache_stats is not None:
            summary["cache_hit_rate"] = self.cache_stats.hit_rate
            summary["cache_byte_hit_rate"] = self.cache_stats.byte_hit_rate
        return summary
