"""Simulation metrics collection.

The replayer records what the paper's Figure 7 rightmost column shows —
cluster occupancy over time in active slots — plus the per-job outcomes
(wait time, completion time) and the storage-cache statistics needed by the
policy-comparison benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from .cache import CacheStats

__all__ = ["JobOutcome", "SimulationMetrics"]


@dataclass
class JobOutcome:
    """Per-job result of a replay.

    Attributes:
        job_id: the job.
        submit_time_s: submission time.
        start_time_s: time the first task started (None if never ran).
        finish_time_s: time the last task finished (None if unfinished).
        wait_time_s: start minus submit (0 if never started).
        completion_time_s: finish minus submit (None if unfinished).
        total_bytes: the job's input + shuffle + output volume.
        n_tasks: number of simulated tasks.
    """

    job_id: str
    submit_time_s: float
    start_time_s: Optional[float]
    finish_time_s: Optional[float]
    wait_time_s: float
    completion_time_s: Optional[float]
    total_bytes: float
    n_tasks: int


@dataclass
class SimulationMetrics:
    """Aggregated output of one replay run.

    Attributes:
        outcomes: per-job outcomes in submission order.
        utilization_samples: (time, active slots) samples.
        total_slots: slot capacity of the simulated cluster.
        cache_stats: statistics of the attached cache policy (if any).
        horizon_s: simulated time span.
        finished_jobs: number of jobs that completed.
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    utilization_samples: List[tuple] = field(default_factory=list)
    total_slots: int = 0
    cache_stats: Optional[CacheStats] = None
    horizon_s: float = 0.0
    finished_jobs: int = 0

    # ------------------------------------------------------------------
    def record_job(self, outcome: JobOutcome) -> None:
        self.outcomes.append(outcome)
        if outcome.finish_time_s is not None:
            self.finished_jobs += 1

    def record_utilization(self, now_s: float, active_slots: int) -> None:
        self.utilization_samples.append((now_s, active_slots))

    # -- summaries ---------------------------------------------------------
    def completion_times(self) -> np.ndarray:
        """Completion times of finished jobs (seconds)."""
        return np.array([
            outcome.completion_time_s for outcome in self.outcomes
            if outcome.completion_time_s is not None
        ], dtype=float)

    def wait_times(self) -> np.ndarray:
        """Wait times (submission to first task start) of all started jobs."""
        return np.array([
            outcome.wait_time_s for outcome in self.outcomes
            if outcome.start_time_s is not None
        ], dtype=float)

    def mean_completion_time(self) -> float:
        times = self.completion_times()
        if times.size == 0:
            raise SimulationError("no finished jobs to summarize")
        return float(times.mean())

    def median_completion_time(self) -> float:
        times = self.completion_times()
        if times.size == 0:
            raise SimulationError("no finished jobs to summarize")
        return float(np.median(times))

    def percentile_completion_time(self, q: float) -> float:
        times = self.completion_times()
        if times.size == 0:
            raise SimulationError("no finished jobs to summarize")
        return float(np.percentile(times, q))

    def mean_wait_time(self) -> float:
        waits = self.wait_times()
        if waits.size == 0:
            return 0.0
        return float(waits.mean())

    def mean_utilization(self) -> float:
        """Mean fraction of slots busy, time-weighted over the samples."""
        if self.total_slots <= 0 or len(self.utilization_samples) < 2:
            return 0.0
        times = np.array([sample[0] for sample in self.utilization_samples], dtype=float)
        slots = np.array([sample[1] for sample in self.utilization_samples], dtype=float)
        spans = np.diff(times)
        if spans.sum() <= 0:
            return 0.0
        return float(np.dot(slots[:-1], spans) / (spans.sum() * self.total_slots))

    def hourly_active_slots(self) -> np.ndarray:
        """Average active slots per hour — the Figure-7 utilization column."""
        if len(self.utilization_samples) < 2:
            return np.zeros(1, dtype=float)
        times = np.array([sample[0] for sample in self.utilization_samples], dtype=float)
        slots = np.array([sample[1] for sample in self.utilization_samples], dtype=float)
        horizon = max(self.horizon_s, float(times.max()))
        n_hours = max(1, int(np.ceil(horizon / 3600.0)))
        totals = np.zeros(n_hours, dtype=float)
        # Accumulate slot-seconds per hour from the step function of samples.
        for index in range(len(times) - 1):
            start, end = times[index], times[index + 1]
            value = slots[index]
            hour = int(start // 3600)
            while start < end and hour < n_hours:
                hour_end = min(end, (hour + 1) * 3600.0)
                totals[hour] += value * (hour_end - start)
                start = hour_end
                hour += 1
        return totals / 3600.0

    def slowdown_of_small_jobs(self, small_bytes_threshold: float) -> float:
        """Mean completion time of jobs at or below the byte threshold."""
        small = [
            outcome.completion_time_s for outcome in self.outcomes
            if outcome.completion_time_s is not None and outcome.total_bytes <= small_bytes_threshold
        ]
        if not small:
            raise SimulationError("no finished small jobs below the threshold")
        return float(np.mean(small))
