"""Rack topology, task locality and shuffle traffic estimation.

Section 6.2 of the paper notes that map-only jobs (7%-77% of bytes in the
workloads that have them) "benefit less from datacenter networks optimized for
shuffle patterns" — whether a network fabric investment pays off depends on
how much of the workload's traffic actually crosses racks during the shuffle.
This module provides the pieces needed to quantify that:

* :class:`RackTopology` — nodes grouped into racks with intra-rack and
  cross-rack (oversubscribed) bandwidth.
* :func:`locality_fractions` — expected node-local / rack-local / remote
  fractions of a job's map tasks given how many nodes hold its input blocks,
  with an optional delay-scheduling wait that trades a small scheduling delay
  for a higher local fraction.
* :func:`shuffle_cross_rack_bytes` — expected cross-rack traffic of a job's
  shuffle stage (all-to-all between map and reduce tasks spread over racks).
* :func:`workload_shuffle_profile` — aggregate a trace into total shuffle
  traffic, cross-rack traffic, and the map-only share of bytes, the numbers
  behind the "does a shuffle-optimized network help this workload" question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import SimulationError
from ..traces.trace import Trace

__all__ = [
    "RackTopology",
    "LocalityFractions",
    "locality_fractions",
    "shuffle_cross_rack_bytes",
    "ShuffleProfile",
    "workload_shuffle_profile",
]


@dataclass(frozen=True)
class RackTopology:
    """A cluster arranged into racks.

    Attributes:
        n_nodes: total worker nodes.
        nodes_per_rack: nodes in each rack (the last rack may be partial).
        intra_rack_bandwidth_bps: per-node bandwidth to peers in the same rack.
        cross_rack_bandwidth_bps: per-node bandwidth to peers in other racks
            (smaller than intra-rack on an oversubscribed fabric).
    """

    n_nodes: int = 100
    nodes_per_rack: int = 20
    intra_rack_bandwidth_bps: float = 125e6
    cross_rack_bandwidth_bps: float = 25e6

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise SimulationError("topology needs at least one node")
        if self.nodes_per_rack <= 0:
            raise SimulationError("nodes_per_rack must be positive")
        if self.intra_rack_bandwidth_bps <= 0 or self.cross_rack_bandwidth_bps <= 0:
            raise SimulationError("bandwidths must be positive")

    @property
    def n_racks(self) -> int:
        return int(np.ceil(self.n_nodes / self.nodes_per_rack))

    @property
    def oversubscription(self) -> float:
        """Ratio of intra-rack to cross-rack bandwidth (1.0 = non-blocking)."""
        return self.intra_rack_bandwidth_bps / self.cross_rack_bandwidth_bps

    def rack_of(self, node_id: int) -> int:
        """Rack index of a node id.

        Raises:
            SimulationError: for a node id outside the topology.
        """
        if not 0 <= node_id < self.n_nodes:
            raise SimulationError("node id %d outside topology of %d nodes" % (node_id, self.n_nodes))
        return node_id // self.nodes_per_rack


@dataclass
class LocalityFractions:
    """Expected placement-locality split of a job's map tasks.

    Attributes:
        node_local: fraction of map tasks reading their block from local disk.
        rack_local: fraction reading from another node in the same rack.
        remote: fraction reading across racks.
    """

    node_local: float
    rack_local: float
    remote: float

    def __post_init__(self):
        total = self.node_local + self.rack_local + self.remote
        if not np.isclose(total, 1.0, atol=1e-6):
            raise SimulationError("locality fractions must sum to 1, got %.6f" % total)


def locality_fractions(topology: RackTopology, n_map_tasks: int, replication: int = 3,
                       delay_scheduling_attempts: int = 0) -> LocalityFractions:
    """Expected locality of a job's map tasks under random slot assignment.

    With blocks replicated on ``replication`` nodes out of ``n_nodes``, the
    chance that a randomly chosen free slot is on a node holding the block is
    ``replication / n_nodes``; delay scheduling retries the assignment up to
    ``delay_scheduling_attempts`` extra times before giving up, which raises
    the node-local probability to ``1 - (1 - r/n)^(1+D)``.  Replicas are placed
    per the standard HDFS policy (one off-rack copy), so a non-local
    assignment still lands rack-local with probability proportional to the
    remaining same-rack replica spread.

    Small jobs — a single map task — see the worst locality, which compounds
    the scheduling problems §6.2 describes for them.

    Raises:
        SimulationError: for non-positive task counts or replication.
    """
    if n_map_tasks <= 0:
        raise SimulationError("n_map_tasks must be positive")
    if replication <= 0:
        raise SimulationError("replication must be positive")
    if delay_scheduling_attempts < 0:
        raise SimulationError("delay_scheduling_attempts must be non-negative")

    replication = min(replication, topology.n_nodes)
    p_node = replication / topology.n_nodes
    p_node_with_delay = 1.0 - (1.0 - p_node) ** (1 + delay_scheduling_attempts)

    # Given a miss on node locality, the block still has replicas somewhere;
    # HDFS default placement puts ~2 of 3 replicas in one rack, so the chance
    # a random node shares a rack with some replica is roughly the fraction of
    # nodes in racks that hold replicas, excluding the replica nodes.
    racks_with_replicas = min(topology.n_racks, max(1, replication - 1))
    nodes_in_replica_racks = min(topology.n_nodes,
                                 racks_with_replicas * topology.nodes_per_rack)
    p_rack_given_miss = max(0.0, (nodes_in_replica_racks - replication) /
                            max(1, topology.n_nodes - replication))

    node_local = p_node_with_delay
    rack_local = (1.0 - node_local) * p_rack_given_miss
    remote = max(0.0, 1.0 - node_local - rack_local)
    return LocalityFractions(node_local=node_local, rack_local=rack_local, remote=remote)


def shuffle_cross_rack_bytes(topology: RackTopology, shuffle_bytes: float,
                             n_map_tasks: int, n_reduce_tasks: int) -> float:
    """Expected cross-rack bytes of an all-to-all shuffle.

    Map outputs are spread over the racks that ran the map tasks; each reduce
    task pulls from every map task, so a fraction ``1 - 1/n_racks_used`` of
    the shuffle volume crosses racks, where the number of racks actually used
    is bounded by both the task parallelism and the topology.

    Raises:
        SimulationError: for negative shuffle volume.
    """
    if shuffle_bytes < 0:
        raise SimulationError("shuffle volume must be non-negative")
    if shuffle_bytes == 0 or n_map_tasks <= 0 or n_reduce_tasks <= 0:
        return 0.0
    racks_used = min(topology.n_racks, max(1, min(n_map_tasks, topology.n_nodes) // topology.nodes_per_rack + 1))
    if racks_used <= 1:
        return 0.0
    return shuffle_bytes * (1.0 - 1.0 / racks_used)


@dataclass
class ShuffleProfile:
    """Aggregate shuffle-traffic profile of a workload on a topology.

    Attributes:
        total_bytes: input + shuffle + output bytes of the whole trace.
        shuffle_bytes: total shuffle volume.
        cross_rack_bytes: expected cross-rack part of the shuffle volume.
        map_only_bytes_fraction: fraction of all bytes moved by map-only jobs
            (the paper reports 7%-77% across the workloads that have them).
        map_only_job_fraction: fraction of jobs that are map-only.
        mean_cross_rack_fraction: cross-rack bytes over shuffle bytes.
    """

    total_bytes: float
    shuffle_bytes: float
    cross_rack_bytes: float
    map_only_bytes_fraction: float
    map_only_job_fraction: float

    @property
    def mean_cross_rack_fraction(self) -> float:
        if self.shuffle_bytes <= 0:
            return 0.0
        return self.cross_rack_bytes / self.shuffle_bytes


def workload_shuffle_profile(trace: Trace, topology: Optional[RackTopology] = None) -> ShuffleProfile:
    """Profile a trace's shuffle traffic and map-only share on a topology.

    Raises:
        SimulationError: when the trace is empty.
    """
    topology = topology or RackTopology()
    if trace.is_empty():
        raise SimulationError("cannot profile an empty trace")

    total = 0.0
    shuffle_total = 0.0
    cross_rack = 0.0
    map_only_bytes = 0.0
    map_only_jobs = 0
    for job in trace:
        total += job.total_bytes
        shuffle = float(job.shuffle_bytes or 0.0)
        shuffle_total += shuffle
        if job.is_map_only:
            map_only_jobs += 1
            map_only_bytes += job.total_bytes
            continue
        n_maps = int(job.map_tasks or max(1, round((job.map_task_seconds or 30.0) / 30.0)))
        n_reduces = int(job.reduce_tasks or 1)
        cross_rack += shuffle_cross_rack_bytes(topology, shuffle, n_maps, n_reduces)

    return ShuffleProfile(
        total_bytes=total,
        shuffle_bytes=shuffle_total,
        cross_rack_bytes=cross_rack,
        map_only_bytes_fraction=map_only_bytes / total if total > 0 else 0.0,
        map_only_job_fraction=map_only_jobs / len(trace),
    )
