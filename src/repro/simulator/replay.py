"""Workload replay on the simulated cluster — materialized or streaming.

:class:`WorkloadReplayer` takes a trace (observed, spec-generated, or produced
by the SWIM synthesizer), splits each job into tasks, and runs them through
the discrete-event cluster model under a chosen scheduler and storage-cache
policy.  The output is a :class:`~repro.simulator.metrics.SimulationMetrics`
with per-job wait and completion summaries, slot-occupancy over time (the
Figure-7 utilization column), and cache hit statistics (the §4.2/§4.3 policy
comparisons).

Both replayers share one lazy event loop (:meth:`WorkloadReplayer.replay_jobs`)
that pulls jobs from an iterator in arrival-time order with a bounded
submission look-ahead, so the event sequence — and therefore every metric,
bit for bit — is identical whether the jobs came from an in-memory
:class:`~repro.traces.trace.Trace`, a lazy trace-file reader, or a chunked
on-disk store:

* :class:`WorkloadReplayer` — the classic entry point; replays a materialized
  trace and retains per-job outcomes for exact medians and per-job analyses.
* :class:`StreamingReplayer` — bounded-memory replay for traces that do not
  fit in RAM: consumes a :class:`~repro.engine.store.ChunkedTraceStore`
  (one chunk resident at a time) or any sorted job iterator, and keeps only
  the mergeable metric accumulators, never a per-job list.

Usage — the streamed run reproduces the materialized run exactly::

    >>> from repro.simulator.replay import StreamingReplayer, WorkloadReplayer
    >>> from repro.traces import Job, Trace
    >>> jobs = [Job(job_id="j%d" % i, submit_time_s=60.0 * i, duration_s=30.0,
    ...             input_bytes=1e9, shuffle_bytes=0.0, output_bytes=1e8,
    ...             map_task_seconds=90.0, reduce_task_seconds=0.0)
    ...         for i in range(4)]
    >>> materialized = WorkloadReplayer().replay(Trace(jobs, name="tiny"))
    >>> streamed = StreamingReplayer().replay_jobs(iter(jobs))
    >>> streamed.finished_jobs == materialized.finished_jobs == 4
    True
    >>> streamed.mean_wait_time() == materialized.mean_wait_time()
    True
    >>> streamed.keep_outcomes, len(streamed.outcomes)
    (False, 0)
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, Optional

from ..errors import SimulationError
from ..traces.schema import Job
from ..traces.trace import Trace
from .cache import CachePolicy, NoCache
from .cluster import Cluster, ClusterConfig
from .events import EventQueue
from .hdfs import Hdfs, HdfsConfig
from .metrics import JobOutcome, SimulationMetrics
from .scheduler import FifoScheduler, Scheduler
from .tasks import SimJob, SimTask, split_job

__all__ = ["WorkloadReplayer", "StreamingReplayer", "replay", "replay_store"]

#: Default bound on submission look-ahead: at most this many jobs are split
#: into tasks and queued for submission ahead of simulated time.
DEFAULT_LOOKAHEAD = 4096


class WorkloadReplayer:
    """Replays a trace on a simulated cluster.

    Args:
        cluster_config: cluster size and per-node slot counts; defaults to a
            100-node cluster with 4 map + 2 reduce slots per node.
        scheduler: scheduling policy; FIFO when omitted.
        cache: storage-cache policy applied to job input reads; no cache when
            omitted.
        hdfs_config: HDFS model parameters.
        max_simulated_jobs: optional cap on the number of jobs replayed (the
            first N by submission order), useful for quick benchmarks.
        task_transform: optional callable applied to each :class:`SimJob`
            right after it is split into tasks and before it is submitted.
            Used to perturb task durations, e.g. by the straggler-injection
            model in :mod:`repro.simulator.stragglers`.
        lookahead: bound on how many submissions may be queued ahead of
            simulated time (default :data:`DEFAULT_LOOKAHEAD`).  Replay
            memory is O(lookahead + active jobs), independent of trace size.
        keep_outcomes: retain the per-job :class:`JobOutcome` list and raw
            utilization samples on the returned metrics (default True here;
            :class:`StreamingReplayer` defaults to False).
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 keep_outcomes: bool = True):
        if lookahead < 1:
            raise SimulationError("lookahead must be at least 1, got %r" % (lookahead,))
        self.cluster_config = cluster_config or ClusterConfig()
        self.scheduler = scheduler or FifoScheduler()
        self.cache = cache or NoCache()
        self.hdfs = Hdfs(hdfs_config or HdfsConfig(n_datanodes=self.cluster_config.n_nodes))
        self.max_simulated_jobs = max_simulated_jobs
        self.task_transform = task_transform
        self.lookahead = lookahead
        self.keep_outcomes = keep_outcomes

    # ------------------------------------------------------------------
    def replay(self, trace: Trace) -> SimulationMetrics:
        """Replay a fully materialized trace and return its metrics.

        Raises:
            SimulationError: when the trace is empty.
        """
        if trace.is_empty():
            raise SimulationError("cannot replay an empty trace")
        return self.replay_jobs(iter(trace.jobs))

    def replay_jobs(self, jobs: Iterable[Job]) -> SimulationMetrics:
        """Replay jobs pulled lazily from an iterable, in arrival-time order.

        At most ``lookahead`` jobs are split into tasks and queued for
        submission ahead of the simulation clock; each fired submission pulls
        one more job from the iterator, so memory stays bounded no matter how
        many jobs the source yields.

        Raises:
            SimulationError: when the iterable yields no jobs, or yields them
                out of arrival-time order (sort the trace, or convert it with
                ``repro engine convert``, first).
        """
        job_iter: Iterator[Job] = iter(jobs)
        if self.max_simulated_jobs is not None:
            job_iter = itertools.islice(job_iter, self.max_simulated_jobs)

        queue = EventQueue()
        cluster = Cluster(self.cluster_config)
        metrics = SimulationMetrics(total_slots=self.cluster_config.total_slots,
                                    keep_outcomes=self.keep_outcomes)
        active_jobs: Dict[str, SimJob] = {}
        last_submit = [float("-inf")]

        def record_utilization():
            metrics.record_utilization(queue.now, cluster.total_busy_slots())

        def pull_next_job() -> bool:
            """Schedule the next job's submission; False when the source is dry."""
            job = next(job_iter, None)
            if job is None:
                return False
            if job.submit_time_s < last_submit[0]:
                raise SimulationError(
                    "job %s submitted at %.3f after a job submitted at %.3f: "
                    "streaming replay needs jobs in arrival-time order (sort "
                    "the trace or rebuild the store with 'repro engine convert')"
                    % (job.job_id, job.submit_time_s, last_submit[0]))
            last_submit[0] = job.submit_time_s
            sim_job = split_job(job)
            if self.task_transform is not None:
                self.task_transform(sim_job)
            metrics.record_submission()
            queue.schedule(max(0.0, job.submit_time_s), on_submit(sim_job), priority=1)
            return True

        def on_submit(sim_job: SimJob):
            def handler():
                active_jobs[sim_job.job_id] = sim_job
                self.scheduler.add_job(sim_job)
                self._serve_input(sim_job, queue.now)
                dispatch("map")
                dispatch("reduce")
                # This submission fired: top the look-ahead window back up.
                pull_next_job()
            return handler

        def dispatch(kind: str):
            """Hand free slots of ``kind`` to the scheduler until it runs dry."""
            while cluster.free_slots(kind) > 0:
                picked = self.scheduler.next_task(kind, queue.now)
                if picked is None:
                    return
                sim_job, task = picked
                node = cluster.acquire_slot(kind)
                if node is None:  # pragma: no cover - free_slots() guarded above
                    return
                if sim_job.start_time_s is None:
                    sim_job.start_time_s = queue.now
                task.start_time_s = queue.now
                record_utilization()
                queue.schedule_after(task.duration_s, on_task_done(sim_job, task, node, kind))

        def on_task_done(sim_job: SimJob, task: SimTask, node, kind: str):
            def handler():
                task.finish_time_s = queue.now
                cluster.release_slot(node, kind)
                if hasattr(self.scheduler, "task_finished"):
                    self.scheduler.task_finished(sim_job)
                if hasattr(self.scheduler, "task_released"):
                    self.scheduler.task_released(sim_job, kind)
                if kind == "map":
                    sim_job.maps_remaining -= 1
                else:
                    sim_job.reduces_remaining -= 1
                record_utilization()
                if sim_job.done:
                    finish_job(sim_job)
                dispatch("map")
                dispatch("reduce")
            return handler

        def finish_job(sim_job: SimJob):
            sim_job.finish_time_s = queue.now
            self.scheduler.job_finished(sim_job)
            active_jobs.pop(sim_job.job_id, None)
            self._write_output(sim_job, queue.now)
            metrics.record_job(
                JobOutcome(
                    job_id=sim_job.job_id,
                    submit_time_s=sim_job.submit_time_s,
                    start_time_s=sim_job.start_time_s,
                    finish_time_s=sim_job.finish_time_s,
                    wait_time_s=sim_job.wait_time_s,
                    completion_time_s=sim_job.completion_time_s,
                    total_bytes=sim_job.job.total_bytes,
                    n_tasks=len(sim_job.map_tasks) + len(sim_job.reduce_tasks),
                )
            )

        # Prime the look-ahead window, then let each fired submission refill it.
        for _ in range(self.lookahead):
            if not pull_next_job():
                break
        if metrics.jobs_submitted == 0:
            raise SimulationError("cannot replay an empty job stream")

        record_utilization()
        queue.run()
        metrics.horizon_s = queue.now
        metrics.cache_stats = self.cache.stats
        record_utilization()
        metrics.finalize()
        return metrics

    # ------------------------------------------------------------------
    def _serve_input(self, sim_job: SimJob, now_s: float) -> None:
        """Route the job's input read through HDFS and the cache policy."""
        job = sim_job.job
        path = job.input_path or ("/implicit/%s" % job.job_id)
        size = float(job.input_bytes or 0.0)
        self.hdfs.read(path, now_s, size)
        self.cache.access(path, size, now_s)

    def _write_output(self, sim_job: SimJob, now_s: float) -> None:
        """Record the job's output write in HDFS (invalidating stale cache entries)."""
        job = sim_job.job
        if job.output_path is None or not (job.output_bytes or 0.0):
            return
        self.hdfs.create(job.output_path, float(job.output_bytes), now_s, overwrite=True)
        self.cache.invalidate(job.output_path)


class StreamingReplayer(WorkloadReplayer):
    """Bounded-memory replay straight from a chunked store or a lazy reader.

    Differences from :class:`WorkloadReplayer` (all overridable):

    * ``keep_outcomes`` defaults to False: the returned metrics hold only the
      mergeable accumulators, never a per-job outcome list;
    * the HDFS model defaults to ``retain_files=False`` so traces without
      recorded paths do not grow the simulated namespace by one implicit
      entry per job (the file model does not influence replay timing).

    Peak memory is O(chunk + lookahead + active jobs + hours of horizon),
    independent of how many jobs the source holds — this is what lets a
    multi-million-job production trace replay in a few hundred MB of RSS.

    Usage::

        >>> from repro.simulator.replay import StreamingReplayer
        >>> replayer = StreamingReplayer()
        >>> replayer.keep_outcomes, replayer.hdfs.config.retain_files
        (False, False)

    See :meth:`replay_store` for the store-backed entry point used by
    ``repro replay --store``.
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 keep_outcomes: bool = False):
        cluster_config = cluster_config or ClusterConfig()
        if hdfs_config is None:
            hdfs_config = HdfsConfig(n_datanodes=cluster_config.n_nodes,
                                     retain_files=False)
        super().__init__(cluster_config=cluster_config, scheduler=scheduler,
                         cache=cache, hdfs_config=hdfs_config,
                         max_simulated_jobs=max_simulated_jobs,
                         task_transform=task_transform, lookahead=lookahead,
                         keep_outcomes=keep_outcomes)

    def replay_store(self, store) -> SimulationMetrics:
        """Replay a :class:`~repro.engine.store.ChunkedTraceStore` (or its
        directory path), streaming one chunk of jobs at a time.

        Raises:
            SimulationError: when the store is not sorted by submission time
                (rebuild it with ``repro engine convert`` from a sorted
                source) or is empty.
        """
        from ..engine.store import ChunkedTraceStore

        if not isinstance(store, ChunkedTraceStore):
            store = ChunkedTraceStore(store)
        return self.replay_jobs(store.iter_jobs())

    def replay_path(self, path) -> SimulationMetrics:
        """Replay a trace file (.csv/.jsonl, optionally .gz) without
        materializing it, via the lazy readers in :mod:`repro.traces.io`.

        The file must list jobs in arrival-time order (the library's writers
        always do, since :class:`~repro.traces.trace.Trace` keeps jobs
        sorted).
        """
        from ..traces.io import iter_trace

        return self.replay_jobs(iter_trace(path))


def replay(trace: Trace, cluster_config: Optional[ClusterConfig] = None,
           scheduler: Optional[Scheduler] = None, cache: Optional[CachePolicy] = None,
           max_simulated_jobs: Optional[int] = None) -> SimulationMetrics:
    """Convenience wrapper: build a :class:`WorkloadReplayer` and run it."""
    replayer = WorkloadReplayer(
        cluster_config=cluster_config, scheduler=scheduler, cache=cache,
        max_simulated_jobs=max_simulated_jobs,
    )
    return replayer.replay(trace)


def replay_store(store, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 max_simulated_jobs: Optional[int] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD) -> SimulationMetrics:
    """Convenience wrapper: stream a chunked store through a
    :class:`StreamingReplayer` with bounded memory."""
    replayer = StreamingReplayer(
        cluster_config=cluster_config, scheduler=scheduler, cache=cache,
        max_simulated_jobs=max_simulated_jobs, lookahead=lookahead,
    )
    return replayer.replay_store(store)
