"""Workload replay on the simulated cluster.

:class:`WorkloadReplayer` takes a trace (observed, spec-generated, or produced
by the SWIM synthesizer), splits each job into tasks, and runs them through
the discrete-event cluster model under a chosen scheduler and storage-cache
policy.  The output is a :class:`~repro.simulator.metrics.SimulationMetrics`
with per-job wait and completion times, slot-occupancy over time (the
Figure-7 utilization column), and cache hit statistics (the §4.2/§4.3 policy
comparisons).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import SimulationError
from ..traces.trace import Trace
from .cache import CachePolicy, NoCache
from .cluster import Cluster, ClusterConfig
from .events import EventQueue
from .hdfs import Hdfs, HdfsConfig
from .metrics import JobOutcome, SimulationMetrics
from .scheduler import CapacityScheduler, FifoScheduler, Scheduler
from .tasks import SimJob, SimTask, split_job

__all__ = ["WorkloadReplayer", "replay"]


class WorkloadReplayer:
    """Replays a trace on a simulated cluster.

    Args:
        cluster_config: cluster size and per-node slot counts; defaults to a
            100-node cluster with 4 map + 2 reduce slots per node.
        scheduler: scheduling policy; FIFO when omitted.
        cache: storage-cache policy applied to job input reads; no cache when
            omitted.
        hdfs_config: HDFS model parameters.
        max_simulated_jobs: optional cap on the number of jobs replayed (the
            first N by submission order), useful for quick benchmarks.
        task_transform: optional callable applied to each :class:`SimJob`
            right after it is split into tasks and before it is submitted.
            Used to perturb task durations, e.g. by the straggler-injection
            model in :mod:`repro.simulator.stragglers`.
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None):
        self.cluster_config = cluster_config or ClusterConfig()
        self.scheduler = scheduler or FifoScheduler()
        self.cache = cache or NoCache()
        self.hdfs = Hdfs(hdfs_config or HdfsConfig(n_datanodes=self.cluster_config.n_nodes))
        self.max_simulated_jobs = max_simulated_jobs
        self.task_transform = task_transform

    # ------------------------------------------------------------------
    def replay(self, trace: Trace) -> SimulationMetrics:
        """Run the replay and return its metrics.

        Raises:
            SimulationError: when the trace is empty.
        """
        if trace.is_empty():
            raise SimulationError("cannot replay an empty trace")

        jobs = list(trace.jobs)
        if self.max_simulated_jobs is not None:
            jobs = jobs[: self.max_simulated_jobs]

        queue = EventQueue()
        cluster = Cluster(self.cluster_config)
        metrics = SimulationMetrics(total_slots=self.cluster_config.total_slots)
        sim_jobs: Dict[str, SimJob] = {}
        active_jobs: Dict[str, SimJob] = {}

        def record_utilization():
            metrics.record_utilization(queue.now, cluster.total_busy_slots())

        def on_submit(sim_job: SimJob):
            def handler():
                active_jobs[sim_job.job_id] = sim_job
                self.scheduler.add_job(sim_job)
                self._serve_input(sim_job, queue.now)
                dispatch("map")
                dispatch("reduce")
            return handler

        def dispatch(kind: str):
            """Hand free slots of ``kind`` to the scheduler until it runs dry."""
            while cluster.free_slots(kind) > 0:
                picked = self.scheduler.next_task(kind, queue.now)
                if picked is None:
                    return
                sim_job, task = picked
                node = cluster.acquire_slot(kind)
                if node is None:  # pragma: no cover - free_slots() guarded above
                    return
                if sim_job.start_time_s is None:
                    sim_job.start_time_s = queue.now
                task.start_time_s = queue.now
                record_utilization()
                queue.schedule_after(task.duration_s, on_task_done(sim_job, task, node, kind))

        def on_task_done(sim_job: SimJob, task: SimTask, node, kind: str):
            def handler():
                task.finish_time_s = queue.now
                cluster.release_slot(node, kind)
                if hasattr(self.scheduler, "task_finished"):
                    self.scheduler.task_finished(sim_job)
                if hasattr(self.scheduler, "task_released"):
                    self.scheduler.task_released(sim_job, kind)
                if kind == "map":
                    sim_job.maps_remaining -= 1
                else:
                    sim_job.reduces_remaining -= 1
                record_utilization()
                if sim_job.done:
                    finish_job(sim_job)
                dispatch("map")
                dispatch("reduce")
            return handler

        def finish_job(sim_job: SimJob):
            sim_job.finish_time_s = queue.now
            self.scheduler.job_finished(sim_job)
            active_jobs.pop(sim_job.job_id, None)
            self._write_output(sim_job, queue.now)
            metrics.record_job(
                JobOutcome(
                    job_id=sim_job.job_id,
                    submit_time_s=sim_job.submit_time_s,
                    start_time_s=sim_job.start_time_s,
                    finish_time_s=sim_job.finish_time_s,
                    wait_time_s=sim_job.wait_time_s,
                    completion_time_s=sim_job.completion_time_s,
                    total_bytes=sim_job.job.total_bytes,
                    n_tasks=len(sim_job.map_tasks) + len(sim_job.reduce_tasks),
                )
            )

        # Schedule all submissions.
        for job in jobs:
            sim_job = split_job(job)
            if self.task_transform is not None:
                self.task_transform(sim_job)
            sim_jobs[sim_job.job_id] = sim_job
            queue.schedule(max(0.0, job.submit_time_s), on_submit(sim_job), priority=1)

        record_utilization()
        queue.run()
        metrics.horizon_s = queue.now
        metrics.cache_stats = self.cache.stats
        record_utilization()
        return metrics

    # ------------------------------------------------------------------
    def _serve_input(self, sim_job: SimJob, now_s: float) -> None:
        """Route the job's input read through HDFS and the cache policy."""
        job = sim_job.job
        path = job.input_path or ("/implicit/%s" % job.job_id)
        size = float(job.input_bytes or 0.0)
        self.hdfs.read(path, now_s, size)
        self.cache.access(path, size, now_s)

    def _write_output(self, sim_job: SimJob, now_s: float) -> None:
        """Record the job's output write in HDFS (invalidating stale cache entries)."""
        job = sim_job.job
        if job.output_path is None or not (job.output_bytes or 0.0):
            return
        self.hdfs.create(job.output_path, float(job.output_bytes), now_s, overwrite=True)
        self.cache.invalidate(job.output_path)


def replay(trace: Trace, cluster_config: Optional[ClusterConfig] = None,
           scheduler: Optional[Scheduler] = None, cache: Optional[CachePolicy] = None,
           max_simulated_jobs: Optional[int] = None) -> SimulationMetrics:
    """Convenience wrapper: build a :class:`WorkloadReplayer` and run it."""
    replayer = WorkloadReplayer(
        cluster_config=cluster_config, scheduler=scheduler, cache=cache,
        max_simulated_jobs=max_simulated_jobs,
    )
    return replayer.replay(trace)
