"""Workload replay on the simulated cluster — materialized or streaming.

:class:`WorkloadReplayer` takes a trace (observed, spec-generated, or produced
by the SWIM synthesizer), splits each job into tasks, and runs them through
the discrete-event cluster model under a chosen scheduler and storage-cache
policy.  The output is a :class:`~repro.simulator.metrics.SimulationMetrics`
with per-job wait and completion summaries, slot-occupancy over time (the
Figure-7 utilization column), and cache hit statistics (the §4.2/§4.3 policy
comparisons).

Both replayers share one vectorized event engine (:class:`_ReplayEngine`)
that pulls jobs from the source in arrival-time order with a bounded
submission look-ahead, so the event sequence — and therefore every metric,
bit for bit — is identical whether the jobs came from an in-memory
:class:`~repro.traces.trace.Trace`, a lazy trace-file reader, or a chunked
on-disk store:

* :class:`WorkloadReplayer` — the classic entry point; replays a materialized
  trace and retains per-job outcomes for exact medians and per-job analyses.
* :class:`StreamingReplayer` — bounded-memory replay for traces that do not
  fit in RAM: consumes a :class:`~repro.engine.store.ChunkedTraceStore`
  (one chunk resident at a time) or any sorted job iterator, and keeps only
  the mergeable metric accumulators, never a per-job list.

The engine replaced the original one-Python-object-per-event loop, which is
preserved verbatim in :mod:`repro.simulator.legacy` as the semantic reference
the differential equivalence suite pins this engine against.  The invariants
both implementations share are documented there; the performance-relevant
differences here are:

* completion events live in a plain ``heapq`` of tuples instead of an
  ``EventQueue`` of closure objects, and tasks of one job dispatched at the
  same instant to the same stage share **one** heap entry (their completion
  events are adjacent in the legacy event order, so processing them as a
  group is order-preserving);
* under the default configuration (FIFO scheduling, no task transform) jobs
  are decomposed straight from the store's column arrays with NumPy — no
  ``Job``/``SimJob``/``SimTask`` objects exist at all — and slot accounting
  is two integers per slot kind (:class:`~repro.simulator.cluster.SlotLedger`);
* when every slot of both kinds is busy, no arrival can dispatch until the
  next completion, so all buffered arrivals before that completion are
  admitted in one :func:`bisect.bisect_left` batch instead of one loop
  iteration per job.

Usage — the streamed run reproduces the materialized run exactly::

    >>> from repro.simulator.replay import StreamingReplayer, WorkloadReplayer
    >>> from repro.traces import Job, Trace
    >>> jobs = [Job(job_id="j%d" % i, submit_time_s=60.0 * i, duration_s=30.0,
    ...             input_bytes=1e9, shuffle_bytes=0.0, output_bytes=1e8,
    ...             map_task_seconds=90.0, reduce_task_seconds=0.0)
    ...         for i in range(4)]
    >>> materialized = WorkloadReplayer().replay(Trace(jobs, name="tiny"))
    >>> streamed = StreamingReplayer().replay_jobs(iter(jobs))
    >>> streamed.finished_jobs == materialized.finished_jobs == 4
    True
    >>> streamed.mean_wait_time() == materialized.mean_wait_time()
    True
    >>> streamed.keep_outcomes, len(streamed.outcomes)
    (False, 0)
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..traces.schema import Job
from ..traces.trace import Trace
from .cache import CachePolicy, NoCache
from .cluster import ClusterConfig, SlotLedger
from .hdfs import Hdfs, HdfsConfig
from .metrics import JobOutcome, SimulationMetrics
from .scheduler import FifoScheduler, Scheduler
from .tasks import (DEFAULT_SECONDS_PER_TASK, MAX_TASKS_PER_STAGE, SimJob,
                    split_job)

__all__ = ["WorkloadReplayer", "StreamingReplayer", "replay", "replay_store"]

#: Default bound on submission look-ahead: at most this many jobs are split
#: into tasks and queued for submission ahead of simulated time.
DEFAULT_LOOKAHEAD = 4096

_INF = float("inf")

_ORDER_ERROR = (
    "job %s submitted at %.3f after a job submitted at %.3f: "
    "streaming replay needs jobs in arrival-time order (sort "
    "the trace or rebuild the store with 'repro engine convert')")

#: Store columns the column-fed fast path needs (strings may be absent).
_FAST_NUMERIC = ("submit_time_s", "map_task_seconds", "reduce_task_seconds",
                 "map_tasks", "reduce_tasks", "input_bytes", "shuffle_bytes",
                 "output_bytes")
_FAST_STRINGS = ("job_id", "input_path", "output_path")


class _PreparedJob:
    """Fast-path job record: scalar stage parameters, no task objects.

    Exists only inside the engine's FIFO fast mode; one instance replaces a
    ``SimJob`` plus up to 1024 ``SimTask`` objects.  ``maps_queued`` counts
    not-yet-dispatched map tasks, ``maps_remaining`` not-yet-completed ones
    (likewise for reduces); ``order`` is the admission index used to keep the
    reduce-ready heap in FIFO order.
    """

    __slots__ = ("job_id", "submit_time_s", "n_map", "map_duration_s",
                 "n_reduce", "reduce_duration_s", "maps_queued",
                 "maps_remaining", "reduces_queued", "reduces_remaining",
                 "start_time_s", "order", "input_path", "input_bytes",
                 "output_path", "output_bytes", "total_bytes")

    def __init__(self, job_id, submit_time_s, n_map, map_duration_s,
                 n_reduce, reduce_duration_s, input_path, input_bytes,
                 output_path, output_bytes, total_bytes):
        self.job_id = job_id
        self.submit_time_s = submit_time_s
        self.n_map = n_map
        self.map_duration_s = map_duration_s
        self.n_reduce = n_reduce
        self.reduce_duration_s = reduce_duration_s
        self.maps_queued = n_map
        self.maps_remaining = n_map
        self.reduces_queued = n_reduce
        self.reduces_remaining = n_reduce
        self.start_time_s = None
        self.order = 0
        self.input_path = input_path
        self.input_bytes = input_bytes
        self.output_path = output_path
        self.output_bytes = output_bytes
        self.total_bytes = total_bytes


def _stage_params(total_seconds: float, recorded_count) -> Tuple[int, float]:
    """Scalar mirror of :func:`repro.simulator.tasks._stage_tasks`."""
    if total_seconds <= 0:
        return 0, 0.0
    if recorded_count and recorded_count > 0:
        n_tasks = int(recorded_count)
    else:
        n_tasks = max(1, int(round(total_seconds / DEFAULT_SECONDS_PER_TASK)))
    n_tasks = min(n_tasks, MAX_TASKS_PER_STAGE)
    return n_tasks, total_seconds / n_tasks


def _vector_stage(seconds: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized mirror of :func:`repro.simulator.tasks._stage_tasks`.

    ``np.rint`` matches Python's banker's rounding in ``int(round(x))`` and
    the element-wise division produces the same IEEE quotient as the scalar
    path, so per-task durations are bit-identical to ``split_job``.
    """
    n_tasks = np.where(counts > 0.0, counts,
                       np.maximum(1.0, np.rint(seconds / DEFAULT_SECONDS_PER_TASK)))
    np.minimum(n_tasks, float(MAX_TASKS_PER_STAGE), out=n_tasks)
    n_tasks = np.where(seconds > 0.0, n_tasks, 0.0)
    durations = np.divide(seconds, n_tasks, out=np.zeros_like(n_tasks),
                          where=n_tasks > 0.0)
    return n_tasks.astype(np.int64), durations


def _nan_to_zero(array: np.ndarray) -> np.ndarray:
    return np.where(np.isnan(array), 0.0, array)


class _ReplayEngine:
    """The replay event loop: tuple heap, batched admission, vectorized prep.

    One engine instance runs one replay (or, via ``feed_boundary`` +
    repeated :meth:`run` calls, one exact sharded replay — see
    :class:`~repro.simulator.sharded.ShardedReplayer`).  The engine reads its
    configuration from the owning :class:`WorkloadReplayer` and mutates that
    replayer's scheduler/cache/HDFS state exactly as the legacy loop did.

    Two modes, chosen at construction:

    * **fast** (``FifoScheduler`` of exactly that type, untouched, and no
      task transform): jobs become :class:`_PreparedJob` records — from NumPy
      columns when fed by a store — and FIFO dispatch runs over an internal
      deque/heap without consulting the scheduler object.  FIFO's picks never
      read its running-task counters, so dispatching a job's whole queued run
      in one step is pick-for-pick identical to the one-slot-at-a-time loop.
    * **object**: jobs go through :func:`split_job` + the task transform into
      real ``SimJob``/``SimTask`` objects and dispatch via
      :meth:`Scheduler.drain`, replaying each completion's scheduler hooks
      one task at a time in legacy order (fair/capacity picks are sensitive
      to their running counters, so the per-task interleaving matters).

    Utilization is observed once per simulated instant with activity (the
    final busy count), instead of once per task transition as the legacy loop
    does.  All intermediate legacy observations at one instant close
    zero-length segments, which add exactly nothing to any accumulator bin,
    so ``busy_slot_seconds`` and the hourly bins are bit-identical; only the
    retained raw-sample *list* is shorter (its step function is unchanged).
    """

    def __init__(self, replayer: "WorkloadReplayer"):
        self.replayer = replayer
        config = replayer.cluster_config
        self.scheduler = replayer.scheduler
        self.cache = replayer.cache
        self.hdfs = replayer.hdfs
        self.transform = replayer.task_transform
        self.lookahead = replayer.lookahead
        self.slots = SlotLedger(config)
        self.metrics = SimulationMetrics(total_slots=config.total_slots,
                                         keep_outcomes=replayer.keep_outcomes)
        self.now = 0.0
        self.last_submit = -_INF
        self.feed_boundary = _INF
        self.fast = (type(self.scheduler) is FifoScheduler
                     and self.transform is None
                     and not self.scheduler._jobs)
        # Serving a job's input through an empty NoCache + retain_files=False
        # HDFS is a fixed float-op sequence on the counters; skip the path
        # string, the HdfsFile allocation and both dict probes per job.
        self._fast_io = (type(self.cache) is NoCache
                         and type(self.hdfs) is Hdfs
                         and not self.hdfs.config.retain_files
                         and not self.hdfs._files
                         and not self.cache._contents)
        self._has_task_finished = hasattr(self.scheduler, "task_finished")
        self._has_task_released = hasattr(self.scheduler, "task_released")
        self._seq = 0
        self._order = 0
        self._active = 0
        self._primed = False
        self._heap: List[tuple] = []
        # Buffered (not yet admitted) submissions: parallel lists + cursor.
        self._buf_times: List[float] = []
        self._buf_jobs: List[object] = []
        self._buf_head = 0
        self._budget = replayer.max_simulated_jobs
        # Fast-mode FIFO structures: map-ready jobs in admission order, and a
        # reduce-ready min-heap keyed by admission order (a job enters it when
        # its map stage completes, so plain FIFO list order would not do).
        self._map_ready: deque = deque()
        self._reduce_ready: List[tuple] = []
        # Job source (exactly one of the two is attached).
        self._jobs_iter: Optional[Iterator[Job]] = None
        self._pending_job: Optional[Job] = None
        self._blocks: Optional[Iterator] = None
        self._cols: Optional[dict] = None
        self._row = 0
        self._n_rows = 0
        self._exhausted = True

    # -- job sources -------------------------------------------------------
    def attach_jobs(self, jobs: Iterable[Job]) -> None:
        self._jobs_iter = iter(jobs)
        self._exhausted = False

    def attach_blocks(self, blocks: Iterable) -> None:
        """Feed the engine store chunks (``ColumnBlock``); fast mode only."""
        self._blocks = iter(blocks)
        self._exhausted = False

    def _load_block(self, block) -> None:
        n_rows = block.n_rows

        def numeric(name: str) -> np.ndarray:
            if not block.has_column(name):  # never recorded: every job reads None
                return np.zeros(n_rows, dtype=float)
            return _nan_to_zero(np.asarray(block.column(name), dtype=float))

        def string(name: str) -> Optional[np.ndarray]:
            # block.column materializes v3 dictionary-encoded columns, which
            # a raw block.columns lookup would miss entirely.
            return block.column(name) if block.has_column(name) else None

        input_bytes = numeric("input_bytes")
        shuffle_bytes = numeric("shuffle_bytes")
        output_bytes = numeric("output_bytes")
        self._cols = {
            "submit": np.asarray(block.column("submit_time_s"), dtype=float),
            "map_sec": numeric("map_task_seconds"),
            "red_sec": numeric("reduce_task_seconds"),
            "map_cnt": numeric("map_tasks"),
            "red_cnt": numeric("reduce_tasks"),
            "input_bytes": input_bytes,
            "output_bytes": output_bytes,
            # Same add order as Job.total_bytes: (input + shuffle) + output.
            "total_bytes": input_bytes + shuffle_bytes + output_bytes,
            "job_id": string("job_id"),
            "input_path": string("input_path"),
            "output_path": string("output_path"),
        }
        self._row = 0
        self._n_rows = n_rows

    # -- look-ahead refill -------------------------------------------------
    def _refill(self) -> None:
        """Top the buffered-submission window up to ``lookahead`` jobs.

        Stops early at ``feed_boundary`` (exclusive, raw submit time) without
        marking the source exhausted — the sharded driver advances the
        boundary and calls back in.
        """
        head = self._buf_head
        if head and head == len(self._buf_times):
            del self._buf_times[:]
            del self._buf_jobs[:]
            self._buf_head = head = 0
        boundary = self.feed_boundary
        while not self._exhausted:
            buffered = len(self._buf_times) - head
            need = self.lookahead - buffered
            if need <= 0:
                return
            if self._budget is not None and self._budget <= 0:
                self._exhausted = True
                return
            if self._blocks is not None:
                if self._cols is None or self._row >= self._n_rows:
                    block = next(self._blocks, None)
                    if block is None:
                        self._exhausted = True
                        return
                    if block.n_rows == 0:
                        continue
                    self._load_block(block)
                lo = self._row
                hi = min(self._n_rows, lo + need)
                if self._budget is not None:
                    hi = min(hi, lo + self._budget)
                if boundary != _INF:
                    cut = lo + int(np.searchsorted(
                        self._cols["submit"][lo:hi], boundary, side="left"))
                    if cut == lo:
                        return  # held at the shard boundary, not exhausted
                    hi = min(hi, cut)
                self._prep_rows(lo, hi)
                self._row = hi
                if self._budget is not None:
                    self._budget -= hi - lo
            else:
                job = self._pending_job
                self._pending_job = None
                if job is None:
                    job = next(self._jobs_iter, None)
                    if job is None:
                        self._exhausted = True
                        return
                if boundary != _INF and job.submit_time_s >= boundary:
                    self._pending_job = job
                    return
                self._prep_job(job)
                if self._budget is not None:
                    self._budget -= 1

    def _prep_job(self, job: Job) -> None:
        """Decompose one ``Job`` object and buffer its submission."""
        submit = job.submit_time_s
        if submit < self.last_submit:
            raise SimulationError(_ORDER_ERROR % (job.job_id, submit, self.last_submit))
        self.last_submit = submit
        if self.fast:
            map_seconds = float(job.map_task_seconds or 0.0)
            reduce_seconds = float(job.reduce_task_seconds or 0.0)
            if map_seconds < 0 or reduce_seconds < 0:
                raise SimulationError("job %s has negative task time" % job.job_id)
            n_map, map_duration = _stage_params(map_seconds, job.map_tasks)
            n_reduce, reduce_duration = _stage_params(reduce_seconds, job.reduce_tasks)
            if n_map == 0 and n_reduce == 0:
                # Zero-compute jobs still occupy a slot for a moment (split_job).
                n_map, map_duration = 1, 1.0
            entry: object = _PreparedJob(
                job.job_id, submit, n_map, map_duration, n_reduce,
                reduce_duration, job.input_path, float(job.input_bytes or 0.0),
                job.output_path, job.output_bytes, job.total_bytes)
        else:
            sim_job = split_job(job)
            if self.transform is not None:
                self.transform(sim_job)
            entry = sim_job
        self.metrics.record_submission()
        self._buf_times.append(max(0.0, submit))
        self._buf_jobs.append(entry)

    def _prep_rows(self, lo: int, hi: int) -> None:
        """Vectorized decomposition of store rows ``[lo, hi)`` (fast mode)."""
        cols = self._cols
        submits = cols["submit"][lo:hi]
        if submits[0] < self.last_submit:
            raise SimulationError(_ORDER_ERROR % (
                str(cols["job_id"][lo]), float(submits[0]), self.last_submit))
        if submits.shape[0] > 1:
            bad = np.flatnonzero(submits[1:] < submits[:-1])
            if bad.size:
                index = int(bad[0])
                raise SimulationError(_ORDER_ERROR % (
                    str(cols["job_id"][lo + index + 1]),
                    float(submits[index + 1]), float(submits[index])))
        self.last_submit = float(submits[-1])
        map_seconds = cols["map_sec"][lo:hi]
        reduce_seconds = cols["red_sec"][lo:hi]
        if (map_seconds < 0).any() or (reduce_seconds < 0).any():
            bad = np.flatnonzero((map_seconds < 0) | (reduce_seconds < 0))[0]
            raise SimulationError("job %s has negative task time"
                                  % str(cols["job_id"][lo + int(bad)]))
        n_map, map_duration = _vector_stage(map_seconds, cols["map_cnt"][lo:hi])
        n_reduce, reduce_duration = _vector_stage(reduce_seconds, cols["red_cnt"][lo:hi])
        empty = (n_map == 0) & (n_reduce == 0)
        if empty.any():
            n_map = np.where(empty, 1, n_map)
            map_duration = np.where(empty, 1.0, map_duration)
        # Python-land lists: .tolist() converts to native float/int/str once,
        # instead of one NumPy-scalar box per attribute access later.
        effective = np.maximum(submits, 0.0).tolist()
        raw_submit = submits.tolist()
        job_ids = cols["job_id"][lo:hi].tolist()
        n_map = n_map.tolist()
        map_duration = map_duration.tolist()
        n_reduce = n_reduce.tolist()
        reduce_duration = reduce_duration.tolist()
        input_bytes = cols["input_bytes"][lo:hi].tolist()
        output_bytes = cols["output_bytes"][lo:hi].tolist()
        total_bytes = cols["total_bytes"][lo:hi].tolist()
        input_paths = cols["input_path"]
        input_paths = (input_paths[lo:hi].tolist() if input_paths is not None else None)
        output_paths = cols["output_path"]
        output_paths = (output_paths[lo:hi].tolist() if output_paths is not None else None)
        buf_times = self._buf_times
        buf_jobs = self._buf_jobs
        for index in range(hi - lo):
            buf_times.append(effective[index])
            buf_jobs.append(_PreparedJob(
                job_ids[index], raw_submit[index], n_map[index],
                map_duration[index], n_reduce[index], reduce_duration[index],
                input_paths[index] if input_paths is not None else None,
                input_bytes[index],
                output_paths[index] if output_paths is not None else None,
                output_bytes[index], total_bytes[index]))
        self.metrics.jobs_submitted += hi - lo

    # -- storage side effects ---------------------------------------------
    def _serve_input(self, job_id: str, input_path, size: float) -> None:
        """Route a job's input read through HDFS + cache (legacy op order)."""
        if self._fast_io:
            hdfs = self.hdfs
            hdfs.bytes_written += size
            hdfs.bytes_written -= size
            hdfs.bytes_read += size
            stats = self.cache.stats
            stats.misses += 1
            stats.bytes_from_disk += size
            stats.admissions_rejected += 1
            return
        path = input_path or ("/implicit/%s" % job_id)
        self.hdfs.read(path, self.now, size)
        self.cache.access(path, size, self.now)

    def _write_output(self, output_path, output_bytes) -> None:
        if not output_path or not (output_bytes or 0.0):
            return
        self.hdfs.create(output_path, float(output_bytes), self.now, overwrite=True)
        self.cache.invalidate(output_path)

    # -- admission and dispatch -------------------------------------------
    def _admit(self, entry) -> None:
        if self.fast:
            record: _PreparedJob = entry
            record.order = self._order
            self._order += 1
            self._active += 1
            self._serve_input(record.job_id, record.input_path, record.input_bytes)
            if record.n_map:
                self._map_ready.append(record)
            elif record.reduces_queued:
                heappush(self._reduce_ready, (record.order, record))
        else:
            sim_job: SimJob = entry
            self._active += 1
            self.scheduler.add_job(sim_job)
            job = sim_job.job
            self._serve_input(job.job_id, job.input_path,
                              float(job.input_bytes or 0.0))

    def _dispatch_fast(self) -> bool:
        """FIFO dispatch over the internal ready structures, one heap entry
        per (job, stage, instant) group of tasks."""
        slots = self.slots
        heap = self._heap
        now = self.now
        dispatched = False
        free = slots.map_capacity - slots.busy_map
        if free > 0 and self._map_ready:
            ready = self._map_ready
            while free > 0 and ready:
                record = ready[0]
                take = record.maps_queued
                if take > free:
                    record.maps_queued = take - free
                    take = free
                else:
                    record.maps_queued = 0
                    ready.popleft()
                if record.start_time_s is None:
                    record.start_time_s = now
                heappush(heap, (now + record.map_duration_s, self._seq,
                                record, "map", take))
                self._seq += 1
                free -= take
            slots.busy_map = slots.map_capacity - free
            dispatched = True
        free = slots.reduce_capacity - slots.busy_reduce
        if free > 0 and self._reduce_ready:
            ready = self._reduce_ready
            while free > 0 and ready:
                record = ready[0][1]
                take = record.reduces_queued
                if take > free:
                    record.reduces_queued = take - free
                    take = free
                else:
                    record.reduces_queued = 0
                    heappop(ready)
                if record.start_time_s is None:
                    record.start_time_s = now
                heappush(heap, (now + record.reduce_duration_s, self._seq,
                                record, "reduce", take))
                self._seq += 1
                free -= take
            slots.busy_reduce = slots.reduce_capacity - free
            dispatched = True
        return dispatched

    def _dispatch_obj(self, kind: str) -> bool:
        slots = self.slots
        free = slots.free_slots(kind)
        if free <= 0:
            return False
        picks = self.scheduler.drain(kind, self.now, free)
        if not picks:
            return False
        slots.acquire(kind, len(picks))
        now = self.now
        heap = self._heap
        group_job = None
        group_time = 0.0
        group_tasks: Optional[list] = None
        for sim_job, task in picks:
            if sim_job.start_time_s is None:
                sim_job.start_time_s = now
            task.start_time_s = now
            completion = now + task.duration_s
            if group_tasks is not None and group_job is sim_job and group_time == completion:
                group_tasks.append(task)
                continue
            if group_tasks is not None:
                heappush(heap, (group_time, self._seq, group_job, kind, group_tasks))
                self._seq += 1
            group_job, group_time, group_tasks = sim_job, completion, [task]
        heappush(heap, (group_time, self._seq, group_job, kind, group_tasks))
        self._seq += 1
        return True

    # -- event processing --------------------------------------------------
    def _finish_fast(self, record: _PreparedJob) -> None:
        self._active -= 1
        self._write_output(record.output_path, record.output_bytes)
        now = self.now
        submit = record.submit_time_s
        start = record.start_time_s
        wait = start - submit
        if wait < 0.0:
            wait = 0.0
        self.metrics.record_job(JobOutcome(
            job_id=record.job_id, submit_time_s=submit, start_time_s=start,
            finish_time_s=now, wait_time_s=wait, completion_time_s=now - submit,
            total_bytes=record.total_bytes,
            n_tasks=record.n_map + record.n_reduce))

    def _finish_obj(self, sim_job: SimJob) -> None:
        sim_job.finish_time_s = self.now
        self.scheduler.job_finished(sim_job)
        self._active -= 1
        job = sim_job.job
        self._write_output(job.output_path, job.output_bytes)
        self.metrics.record_job(JobOutcome(
            job_id=sim_job.job_id, submit_time_s=sim_job.submit_time_s,
            start_time_s=sim_job.start_time_s, finish_time_s=sim_job.finish_time_s,
            wait_time_s=sim_job.wait_time_s,
            completion_time_s=sim_job.completion_time_s,
            total_bytes=job.total_bytes,
            n_tasks=len(sim_job.map_tasks) + len(sim_job.reduce_tasks)))

    def _pop_completion(self) -> None:
        time_s, _seq, owner, kind, payload = heappop(self._heap)
        self.now = time_s
        slots = self.slots
        if self.fast:
            record: _PreparedJob = owner
            if kind == "map":
                slots.busy_map -= payload
                record.maps_remaining -= payload
                if record.maps_remaining == 0 and record.reduces_queued:
                    heappush(self._reduce_ready, (record.order, record))
            else:
                slots.busy_reduce -= payload
                record.reduces_remaining -= payload
            if record.maps_remaining == 0 and record.reduces_remaining == 0:
                self._finish_fast(record)
            self._dispatch_fast()
        else:
            sim_job: SimJob = owner
            scheduler = self.scheduler
            # Legacy per-task completion order: release, scheduler hooks,
            # progress decrement, finish check, dispatch both kinds — the
            # interleaving matters for count-sensitive schedulers.
            for task in payload:
                task.finish_time_s = time_s
                slots.release(kind)
                if self._has_task_finished:
                    scheduler.task_finished(sim_job)
                if self._has_task_released:
                    scheduler.task_released(sim_job, kind)
                if kind == "map":
                    sim_job.maps_remaining -= 1
                else:
                    sim_job.reduces_remaining -= 1
                if sim_job.done:
                    self._finish_obj(sim_job)
                self._dispatch_obj("map")
                self._dispatch_obj("reduce")
        self.metrics.record_utilization(time_s, slots.busy_map + slots.busy_reduce)

    def _admit_next(self, until_s: float = _INF) -> None:
        head = self._buf_head
        self.now = self._buf_times[head]
        entry = self._buf_jobs[head]
        self._buf_head = head + 1
        self._admit(entry)
        if self.fast:
            dispatched = self._dispatch_fast()
        else:
            dispatched_map = self._dispatch_obj("map")
            dispatched_reduce = self._dispatch_obj("reduce")
            dispatched = dispatched_map or dispatched_reduce
        slots = self.slots
        if dispatched:
            self.metrics.record_utilization(self.now,
                                            slots.busy_map + slots.busy_reduce)
        elif (slots.busy_map == slots.map_capacity
              and slots.busy_reduce == slots.reduce_capacity):
            self._bulk_admit(until_s)

    def _bulk_admit(self, until_s: float = _INF) -> None:
        """Admit every buffered arrival preceding the next completion.

        Only legal when both slot kinds are fully busy: no arrival can
        dispatch anything (and the legacy loop records no utilization sample
        for dispatch-free submissions), so admissions before the next
        completion are pure buffer/scheduler/cache bookkeeping and one
        ``bisect`` replaces one main-loop iteration per job.  Ties with the
        completion stay with the completion (``bisect_left``), matching the
        completions-before-submissions event order; a sharded driver's
        ``until_s`` caps the sweep the same way (arrivals at the boundary
        belong to the next shard).
        """
        if not self._heap:
            return
        next_completion = self._heap[0][0]
        if next_completion > until_s:
            next_completion = until_s
        while True:
            times = self._buf_times
            head = self._buf_head
            cut = bisect_left(times, next_completion, head, len(times))
            if cut > head:
                jobs = self._buf_jobs
                for index in range(head, cut):
                    self.now = times[index]
                    self._admit(jobs[index])
                self._buf_head = cut
            if cut < len(times):
                return
            self._refill()
            if self._buf_head >= len(self._buf_times):
                return

    # -- driving -----------------------------------------------------------
    def prime(self) -> None:
        """Fill the look-ahead window and take the initial idle observation."""
        if not self._primed:
            self._primed = True
            self._refill()
            self.metrics.record_utilization(0.0, 0)
        else:
            self._refill()

    def require_jobs(self) -> None:
        if self.metrics.jobs_submitted == 0:
            raise SimulationError("cannot replay an empty job stream")

    def run(self, until_s: float = _INF) -> None:
        """Process events until the source is dry and every completion at or
        before ``until_s`` has fired.

        With the default ``until_s`` this drains the replay completely.  A
        sharded driver passes the shard boundary: submissions at or past it
        stay buffered and completions after it stay queued (the next shard's
        earliest submission is at or after the boundary and completions win
        ties, so processing completions up to the boundary first is exactly
        the serial event order).
        """
        heap = self._heap
        while True:
            if self._buf_head >= len(self._buf_times):
                self._refill()
                if self._buf_head >= len(self._buf_times):
                    while heap and heap[0][0] <= until_s:
                        self._pop_completion()
                    return
            next_submit = self._buf_times[self._buf_head]
            if next_submit >= until_s:
                while heap and heap[0][0] <= until_s:
                    self._pop_completion()
                return
            if heap and heap[0][0] <= next_submit:
                self._pop_completion()
            else:
                self._admit_next(until_s)

    def snapshot(self, shard_index: int, boundary_s: float) -> dict:
        """Hand-off state at a shard boundary (for ShardHandoff reporting)."""
        in_flight = 0
        for item in self._heap:
            payload = item[4]
            in_flight += payload if self.fast else len(payload)
        return {
            "shard_index": shard_index,
            "boundary_s": boundary_s,
            "clock_s": self.now,
            "jobs_submitted": self.metrics.jobs_submitted,
            "active_jobs": self._active,
            "in_flight_tasks": in_flight,
            "pending_completion_events": len(self._heap),
            "busy_map_slots": self.slots.busy_map,
            "busy_reduce_slots": self.slots.busy_reduce,
        }

    def finish(self) -> SimulationMetrics:
        metrics = self.metrics
        metrics.horizon_s = self.now
        metrics.cache_stats = self.cache.stats
        metrics.record_utilization(self.now, self.slots.total_busy_slots())
        metrics.finalize()
        return metrics


class WorkloadReplayer:
    """Replays a trace on a simulated cluster.

    Args:
        cluster_config: cluster size and per-node slot counts; defaults to a
            100-node cluster with 4 map + 2 reduce slots per node.
        scheduler: scheduling policy; FIFO when omitted.
        cache: storage-cache policy applied to job input reads; no cache when
            omitted.
        hdfs_config: HDFS model parameters.
        max_simulated_jobs: optional cap on the number of jobs replayed (the
            first N by submission order), useful for quick benchmarks.
        task_transform: optional callable applied to each :class:`SimJob`
            right after it is split into tasks and before it is submitted.
            Used to perturb task durations, e.g. by the straggler-injection
            model in :mod:`repro.simulator.stragglers`.  Setting a transform
            disables the vectorized fast path (tasks must exist as objects).
        lookahead: bound on how many submissions may be queued ahead of
            simulated time (default :data:`DEFAULT_LOOKAHEAD`).  Replay
            memory is O(lookahead + active jobs), independent of trace size.
        keep_outcomes: retain the per-job :class:`JobOutcome` list and raw
            utilization samples on the returned metrics (default True here;
            :class:`StreamingReplayer` defaults to False).
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 keep_outcomes: bool = True):
        if lookahead < 1:
            raise SimulationError("lookahead must be at least 1, got %r" % (lookahead,))
        self.cluster_config = cluster_config or ClusterConfig()
        self.scheduler = scheduler or FifoScheduler()
        self.cache = cache or NoCache()
        self.hdfs = Hdfs(hdfs_config or HdfsConfig(n_datanodes=self.cluster_config.n_nodes))
        self.max_simulated_jobs = max_simulated_jobs
        self.task_transform = task_transform
        self.lookahead = lookahead
        self.keep_outcomes = keep_outcomes

    # ------------------------------------------------------------------
    def replay(self, trace: Trace) -> SimulationMetrics:
        """Replay a fully materialized trace and return its metrics.

        Raises:
            SimulationError: when the trace is empty.
        """
        if trace.is_empty():
            raise SimulationError("cannot replay an empty trace")
        return self.replay_jobs(iter(trace.jobs))

    def replay_jobs(self, jobs: Iterable[Job]) -> SimulationMetrics:
        """Replay jobs pulled lazily from an iterable, in arrival-time order.

        At most ``lookahead`` jobs are decomposed and queued for submission
        ahead of the simulation clock, so memory stays bounded no matter how
        many jobs the source yields.

        Raises:
            SimulationError: when the iterable yields no jobs, or yields them
                out of arrival-time order (sort the trace, or convert it with
                ``repro engine convert``, first).
        """
        engine = _ReplayEngine(self)
        engine.attach_jobs(jobs)
        engine.prime()
        engine.require_jobs()
        engine.run()
        return engine.finish()

    # ------------------------------------------------------------------
    def _serve_input(self, sim_job: SimJob, now_s: float) -> None:
        """Route the job's input read through HDFS and the cache policy.

        Kept for the legacy reference loop (:mod:`repro.simulator.legacy`);
        the engine inlines the same operation sequence.
        """
        job = sim_job.job
        path = job.input_path or ("/implicit/%s" % job.job_id)
        size = float(job.input_bytes or 0.0)
        self.hdfs.read(path, now_s, size)
        self.cache.access(path, size, now_s)

    def _write_output(self, sim_job: SimJob, now_s: float) -> None:
        """Record the job's output write in HDFS (invalidating stale cache entries)."""
        job = sim_job.job
        if job.output_path is None or not (job.output_bytes or 0.0):
            return
        self.hdfs.create(job.output_path, float(job.output_bytes), now_s, overwrite=True)
        self.cache.invalidate(job.output_path)


class StreamingReplayer(WorkloadReplayer):
    """Bounded-memory replay straight from a chunked store or a lazy reader.

    Differences from :class:`WorkloadReplayer` (all overridable):

    * ``keep_outcomes`` defaults to False: the returned metrics hold only the
      mergeable accumulators, never a per-job outcome list;
    * the HDFS model defaults to ``retain_files=False`` so traces without
      recorded paths do not grow the simulated namespace by one implicit
      entry per job (the file model does not influence replay timing).

    Peak memory is O(chunk + lookahead + active jobs + hours of horizon),
    independent of how many jobs the source holds — this is what lets a
    multi-million-job production trace replay in a few hundred MB of RSS.

    Usage::

        >>> from repro.simulator.replay import StreamingReplayer
        >>> replayer = StreamingReplayer()
        >>> replayer.keep_outcomes, replayer.hdfs.config.retain_files
        (False, False)

    See :meth:`replay_store` for the store-backed entry point used by
    ``repro replay --store``.
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 keep_outcomes: bool = False):
        cluster_config = cluster_config or ClusterConfig()
        if hdfs_config is None:
            hdfs_config = HdfsConfig(n_datanodes=cluster_config.n_nodes,
                                     retain_files=False)
        super().__init__(cluster_config=cluster_config, scheduler=scheduler,
                         cache=cache, hdfs_config=hdfs_config,
                         max_simulated_jobs=max_simulated_jobs,
                         task_transform=task_transform, lookahead=lookahead,
                         keep_outcomes=keep_outcomes)

    def replay_store(self, store) -> SimulationMetrics:
        """Replay a :class:`~repro.engine.store.ChunkedTraceStore` (or its
        directory path), streaming one chunk of jobs at a time.

        Under the default FIFO/no-transform configuration the jobs are
        decomposed directly from the store's column arrays (no ``Job``
        objects); otherwise the chunks are materialized row by row.  Both
        feeds produce the identical event sequence.

        Raises:
            SimulationError: when the store is not sorted by submission time
                (rebuild it with ``repro engine convert`` from a sorted
                source) or is empty.
        """
        metrics = self._replay_store_window(store, None, None, empty_ok=False)
        assert metrics is not None
        return metrics

    def _replay_store_window(self, store, window_lo: Optional[float],
                             window_hi: Optional[float],
                             empty_ok: bool) -> Optional[SimulationMetrics]:
        """Replay one time window ``[window_lo, window_hi)`` of a store.

        ``None`` bounds are open; chunks whose submit-time zone is disjoint
        from the window are never read.  Returns ``None`` instead of raising
        when the window holds no jobs and ``empty_ok`` is set (the windowed
        sharding driver skips empty windows).
        """
        from ..engine.store import ChunkedTraceStore

        if not isinstance(store, ChunkedTraceStore):
            store = ChunkedTraceStore(store)
        indices = list(range(store.n_chunks))
        if window_lo is not None or window_hi is not None:
            indices = [
                index for index in indices
                if _zone_overlaps(store.chunk_zone(index, "submit_time_s"),
                                  window_lo, window_hi)
            ]
        engine = _ReplayEngine(self)
        if engine.fast:
            wanted = [name for name in _FAST_NUMERIC + _FAST_STRINGS
                      if name in store.columns]
            blocks = store.iter_chunks(columns=wanted, chunk_indices=indices)
            if window_lo is not None or window_hi is not None:
                blocks = _window_blocks(blocks, window_lo, window_hi)
            engine.attach_blocks(blocks)
        else:
            jobs: Iterator[Job] = _iter_store_jobs(store, indices)
            if window_lo is not None or window_hi is not None:
                jobs = _window_jobs(jobs, window_lo, window_hi)
            engine.attach_jobs(jobs)
        engine.prime()
        if empty_ok and engine.metrics.jobs_submitted == 0:
            return None
        engine.require_jobs()
        engine.run()
        return engine.finish()

    def replay_path(self, path) -> SimulationMetrics:
        """Replay a trace file (.csv/.jsonl, optionally .gz) without
        materializing it, via the lazy readers in :mod:`repro.traces.io`.

        The file must list jobs in arrival-time order (the library's writers
        always do, since :class:`~repro.traces.trace.Trace` keeps jobs
        sorted).
        """
        from ..traces.io import iter_trace

        return self.replay_jobs(iter_trace(path))


def _zone_overlaps(zone, window_lo: Optional[float], window_hi: Optional[float]) -> bool:
    if zone is None:
        return True  # unknown zone: never skip
    if window_hi is not None and zone[0] >= window_hi:
        return False
    if window_lo is not None and zone[1] < window_lo:
        return False
    return True


def _window_blocks(blocks, window_lo: Optional[float], window_hi: Optional[float]):
    """Slice each block to rows with ``window_lo <= submit < window_hi``.

    Blocks from a sorted store are internally sorted, so the window is a
    contiguous row range found with two binary searches.
    """
    for block in blocks:
        submits = block.column("submit_time_s")
        lo = 0 if window_lo is None else int(np.searchsorted(submits, window_lo, side="left"))
        hi = submits.shape[0] if window_hi is None else int(
            np.searchsorted(submits, window_hi, side="left"))
        if hi > lo:
            yield block if (lo == 0 and hi == submits.shape[0]) else block.slice(lo, hi)


def _window_jobs(jobs: Iterator[Job], window_lo: Optional[float],
                 window_hi: Optional[float]) -> Iterator[Job]:
    for job in jobs:
        if window_lo is not None and job.submit_time_s < window_lo:
            continue
        if window_hi is not None and job.submit_time_s >= window_hi:
            continue
        yield job


def _iter_store_jobs(store, indices) -> Iterator[Job]:
    from ..engine.columnar import _block_to_jobs

    for block in store.iter_chunks(chunk_indices=indices):
        for job in _block_to_jobs(block):
            yield job


def replay(trace: Trace, cluster_config: Optional[ClusterConfig] = None,
           scheduler: Optional[Scheduler] = None, cache: Optional[CachePolicy] = None,
           max_simulated_jobs: Optional[int] = None) -> SimulationMetrics:
    """Convenience wrapper: build a :class:`WorkloadReplayer` and run it."""
    replayer = WorkloadReplayer(
        cluster_config=cluster_config, scheduler=scheduler, cache=cache,
        max_simulated_jobs=max_simulated_jobs,
    )
    return replayer.replay(trace)


def replay_store(store, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 max_simulated_jobs: Optional[int] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD) -> SimulationMetrics:
    """Convenience wrapper: stream a chunked store through a
    :class:`StreamingReplayer` with bounded memory."""
    replayer = StreamingReplayer(
        cluster_config=cluster_config, scheduler=scheduler, cache=cache,
        max_simulated_jobs=max_simulated_jobs, lookahead=lookahead,
    )
    return replayer.replay_store(store)
