"""Scenario sweeps: fan a grid of replay configurations out in parallel.

The paper's evaluation questions are comparative — FIFO vs fair scheduling
(§6.2), cache admission/eviction policies (§4.2/§4.3), cluster sizings — and
each cell of such a comparison is one independent replay of the same trace.
:class:`ScenarioSweep` runs a list (or a cross-product grid) of
:class:`Scenario` configurations against one trace source, fanning the
replays out over the engine's :class:`~repro.engine.parallel.ParallelExecutor`
process pool, and merges the per-scenario metric summaries into a single
comparison report.

Scenarios are plain picklable specs — scheduler/cache/cluster are named and
parameterized, not instantiated — so only the spec and the store *directory*
cross the process boundary; each worker opens the chunked store itself and
streams it with bounded memory through a
:class:`~repro.simulator.replay.StreamingReplayer`.

Spec files (``repro replay --sweep sweep.json``) accept either an explicit
scenario list, a grid to cross-multiply, or both::

    {
      "grid": {
        "schedulers": ["fifo", "fair"],
        "caches": [{"cache": "none"},
                   {"cache": "lru", "cache_gb": 512}],
        "nodes": [100]
      },
      "scenarios": [
        {"name": "capacity-tier", "scheduler": "capacity",
         "scheduler_kwargs": {"interactive_share": 0.3}, "cache": "none"}
      ]
    }

Doctest — a grid crosses every scheduler with every cache::

    >>> scenarios = expand_grid({"schedulers": ["fifo", "fair"],
    ...                          "caches": [{"cache": "none"},
    ...                                     {"cache": "lru", "cache_gb": 1}]})
    >>> [scenario.name for scenario in scenarios]
    ['fifo/none', 'fifo/lru', 'fair/none', 'fair/lru']
    >>> scenarios[3].build_replayer().scheduler.__class__.__name__
    'FairScheduler'
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.report import render_table
from ..engine.parallel import ParallelExecutor
from ..errors import SimulationError
from ..traces.trace import Trace
from .cache import (CachePolicy, LfuCache, LruCache, NoCache,
                    SizeThresholdCache, UnlimitedCache)
from .cluster import ClusterConfig
from .metrics import SimulationMetrics
from .replay import DEFAULT_LOOKAHEAD, StreamingReplayer
from .scheduler import CapacityScheduler, FairScheduler, FifoScheduler, Scheduler

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "ScenarioSweep",
    "SweepResult",
    "expand_grid",
    "load_sweep_spec",
    "SCHEDULER_NAMES",
    "CACHE_NAMES",
]

GB = 1e9

#: Scheduler spec names accepted by :class:`Scenario`.
SCHEDULER_NAMES = ("fifo", "fair", "capacity")

#: Cache-policy spec names accepted by :class:`Scenario`.
CACHE_NAMES = ("none", "unlimited", "lru", "lfu", "size-threshold")


@dataclass
class Scenario:
    """One cell of a sweep: a named (scheduler × cache × cluster) combination.

    Attributes:
        name: label used in the comparison report.
        scheduler: one of :data:`SCHEDULER_NAMES`.
        scheduler_kwargs: extra constructor arguments (e.g.
            ``interactive_share`` for the capacity scheduler; its slot totals
            are filled in from the cluster config automatically).
        cache: one of :data:`CACHE_NAMES`.
        cache_gb: capacity in GB for the capacity-bounded policies.
        cache_kwargs: extra cache constructor arguments (e.g.
            ``size_threshold_bytes``).
        nodes / map_slots_per_node / reduce_slots_per_node: cluster sizing.
        max_jobs: optional cap on replayed jobs.
        lookahead: streaming submission look-ahead.
        shards: time-window shard count for the replay (0 or 1 = unsharded).
        shard_mode: ``"exact"`` (bit-identical, single engine) or
            ``"windowed"`` (parallel windows, approximate contention); see
            :class:`~repro.simulator.sharded.ShardedReplayer`.
    """

    name: str
    scheduler: str = "fifo"
    scheduler_kwargs: Dict = field(default_factory=dict)
    cache: str = "none"
    cache_gb: float = 1024.0
    cache_kwargs: Dict = field(default_factory=dict)
    nodes: int = 100
    map_slots_per_node: int = 4
    reduce_slots_per_node: int = 2
    max_jobs: Optional[int] = None
    lookahead: int = DEFAULT_LOOKAHEAD
    shards: int = 0
    shard_mode: str = "exact"

    # -- factories ---------------------------------------------------------
    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(n_nodes=self.nodes,
                             map_slots_per_node=self.map_slots_per_node,
                             reduce_slots_per_node=self.reduce_slots_per_node)

    def build_scheduler(self) -> Scheduler:
        if self.scheduler == "fifo":
            return FifoScheduler(**self.scheduler_kwargs)
        if self.scheduler == "fair":
            return FairScheduler(**self.scheduler_kwargs)
        if self.scheduler == "capacity":
            config = self.cluster_config()
            return CapacityScheduler(total_map_slots=config.total_map_slots,
                                     total_reduce_slots=config.total_reduce_slots,
                                     **self.scheduler_kwargs)
        raise SimulationError("unknown scheduler %r (supported: %s)"
                              % (self.scheduler, ", ".join(SCHEDULER_NAMES)))

    def build_cache(self) -> CachePolicy:
        capacity = float(self.cache_gb) * GB
        if self.cache == "none":
            return NoCache(**self.cache_kwargs)
        if self.cache == "unlimited":
            return UnlimitedCache(**self.cache_kwargs)
        if self.cache == "lru":
            return LruCache(capacity_bytes=capacity, **self.cache_kwargs)
        if self.cache == "lfu":
            return LfuCache(capacity_bytes=capacity, **self.cache_kwargs)
        if self.cache == "size-threshold":
            return SizeThresholdCache(capacity_bytes=capacity, **self.cache_kwargs)
        raise SimulationError("unknown cache policy %r (supported: %s)"
                              % (self.cache, ", ".join(CACHE_NAMES)))

    def build_replayer(self) -> StreamingReplayer:
        """Instantiate a fresh bounded-memory replayer for this scenario.

        ``shards > 1`` returns a :class:`ShardedReplayer`; windowed shards
        inside a sweep cell run serially (``processes=1``) so the sweep's own
        process fan-out stays the only pool.
        """
        if self.shards and self.shards > 1:
            from .sharded import ShardedReplayer

            return ShardedReplayer(cluster_config=self.cluster_config(),
                                   scheduler=self.build_scheduler(),
                                   cache=self.build_cache(),
                                   max_simulated_jobs=self.max_jobs,
                                   lookahead=self.lookahead,
                                   shards=self.shards,
                                   mode=self.shard_mode,
                                   processes=1)
        return StreamingReplayer(cluster_config=self.cluster_config(),
                                 scheduler=self.build_scheduler(),
                                 cache=self.build_cache(),
                                 max_simulated_jobs=self.max_jobs,
                                 lookahead=self.lookahead)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "scheduler": self.scheduler,
            "scheduler_kwargs": dict(self.scheduler_kwargs),
            "cache": self.cache,
            "cache_gb": self.cache_gb,
            "cache_kwargs": dict(self.cache_kwargs),
            "nodes": self.nodes,
            "map_slots_per_node": self.map_slots_per_node,
            "reduce_slots_per_node": self.reduce_slots_per_node,
            "max_jobs": self.max_jobs,
            "lookahead": self.lookahead,
            "shards": self.shards,
            "shard_mode": self.shard_mode,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise SimulationError("unknown scenario fields %s (known: %s)"
                                  % (sorted(unknown), sorted(known)))
        if "name" not in data:
            data = dict(data)
            data["name"] = "%s/%s" % (data.get("scheduler", "fifo"),
                                      data.get("cache", "none"))
        return cls(**data)


def _axis_labels(specs: List[Dict], key: str, default: str, detail) -> List[str]:
    """Unique display label per axis entry.

    Entries sharing the same ``key`` name (e.g. two ``lru`` caches with
    different capacities) get the ``detail`` suffix appended; any labels
    still colliding after that get a ``#k`` counter.
    """
    bases = [str(spec.get(key, default)) for spec in specs]
    labels = []
    for spec, base in zip(specs, bases):
        extra = detail(spec) if bases.count(base) > 1 else None
        labels.append("%s-%s" % (base, extra) if extra else base)
    seen: Dict[str, int] = {}
    unique = []
    for label in labels:
        seen[label] = seen.get(label, 0) + 1
        unique.append(label if seen[label] == 1 else "%s#%d" % (label, seen[label]))
    return unique


def expand_grid(grid: Dict) -> List[Scenario]:
    """Cross-multiply a grid spec into concrete scenarios.

    Grid keys: ``schedulers`` (names or dicts with ``scheduler``/
    ``scheduler_kwargs``), ``caches`` (names or dicts with ``cache``/
    ``cache_gb``/``cache_kwargs``), ``nodes`` (ints).  Missing axes default
    to a single FIFO / no-cache / 100-node cell.  Scenario names are
    ``scheduler/cache[/nodes]`` (nodes suffixed only when that axis varies);
    axis entries that repeat a policy name — a cache-sizing sweep, say — are
    disambiguated with the capacity (``lru-512GB``) or a ``#k`` counter.
    """
    schedulers = grid.get("schedulers", ["fifo"])
    caches = grid.get("caches", ["none"])
    nodes_axis = grid.get("nodes", [100])
    sched_specs = [{"scheduler": s} if isinstance(s, str) else dict(s)
                   for s in schedulers]
    cache_specs = [{"cache": c} if isinstance(c, str) else dict(c)
                   for c in caches]
    sched_labels = _axis_labels(sched_specs, "scheduler", "fifo",
                                lambda spec: None)
    cache_labels = _axis_labels(cache_specs, "cache", "none",
                                lambda spec: "%gGB" % float(spec.get("cache_gb", 1024.0)))
    scenarios: List[Scenario] = []
    for sched_label, sched_spec in zip(sched_labels, sched_specs):
        for cache_label, cache_spec in zip(cache_labels, cache_specs):
            for nodes in nodes_axis:
                spec = dict(sched_spec)
                spec.update(cache_spec)
                spec["nodes"] = int(nodes)
                name = "%s/%s" % (sched_label, cache_label)
                if len(nodes_axis) > 1:
                    name += "/%dn" % int(nodes)
                spec.setdefault("name", name)
                scenarios.append(Scenario.from_dict(spec))
    return scenarios


def load_sweep_spec(spec: Union[str, Dict]) -> List[Scenario]:
    """Load scenarios from a JSON file path or an already-parsed dict.

    The spec may carry a ``grid`` (cross-multiplied), an explicit
    ``scenarios`` list, or both (grid cells first).

    Raises:
        SimulationError: when the spec is unreadable or yields no scenarios.
    """
    if isinstance(spec, str):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SimulationError("cannot read sweep spec %s: %s" % (spec, exc))
    if not isinstance(spec, dict):
        raise SimulationError("sweep spec must be a JSON object, got %r" % type(spec).__name__)
    scenarios: List[Scenario] = []
    if "grid" in spec:
        scenarios.extend(expand_grid(spec["grid"]))
    for entry in spec.get("scenarios", []):
        scenarios.append(Scenario.from_dict(entry))
    if not scenarios:
        raise SimulationError("sweep spec defines no scenarios "
                              "(provide 'grid' and/or 'scenarios')")
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise SimulationError("duplicate scenario names in sweep spec: %s"
                              % sorted({n for n in names if names.count(n) > 1}))
    return scenarios


@dataclass
class ScenarioOutcome:
    """Result of one scenario's replay."""

    scenario: Scenario
    metrics: SimulationMetrics

    @property
    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


@dataclass
class SweepResult:
    """All scenario outcomes of one sweep, with a comparison report."""

    outcomes: List[ScenarioOutcome]

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, name: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario.name == name:
                return outcome
        raise KeyError(name)

    def render(self) -> str:
        """Side-by-side comparison table of all scenarios."""
        headers = ["scenario", "jobs", "finished", "mean wait s", "p95 wait s",
                   "p50 compl s", "p99 compl s", "util %", "cache hit %"]
        rows = []
        for outcome in self.outcomes:
            summary = outcome.summary
            cache_hit = summary.get("cache_hit_rate")
            rows.append([
                outcome.scenario.name,
                "%d" % summary["jobs"],
                "%d" % summary["finished_jobs"],
                "%.1f" % summary["mean_wait_s"],
                "%.1f" % summary["p95_wait_s"],
                "%.1f" % summary["p50_completion_s"],
                "%.1f" % summary["p99_completion_s"],
                "%.1f" % (100.0 * summary["mean_utilization"]),
                "-" if cache_hit is None else "%.1f" % (100.0 * cache_hit),
            ])
        return render_table(headers, rows, title="scenario sweep")

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = [
            {"scenario": outcome.scenario.to_dict(), "summary": outcome.summary}
            for outcome in self.outcomes
        ]
        return json.dumps(payload, indent=indent, sort_keys=True)


def _run_store_scenario(task) -> SimulationMetrics:
    """Worker entry point: open the store and stream one scenario's replay."""
    store_directory, scenario_dict = task
    scenario = Scenario.from_dict(scenario_dict)
    return scenario.build_replayer().replay_store(store_directory)


class ScenarioSweep:
    """Run a set of scenarios against one trace source and compare them.

    Args:
        scenarios: the cells to run (see :func:`load_sweep_spec` /
            :func:`expand_grid`).
        executor: the :class:`~repro.engine.parallel.ParallelExecutor` to fan
            store-backed sweeps out with; a default (cpu-count) executor when
            omitted.
    """

    def __init__(self, scenarios: Sequence[Scenario],
                 executor: Optional[ParallelExecutor] = None):
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise SimulationError("a sweep needs at least one scenario")
        self.executor = executor or ParallelExecutor()

    def run(self, source) -> SweepResult:
        """Replay every scenario against ``source``.

        ``source`` may be a chunked-store directory (or
        :class:`~repro.engine.store.ChunkedTraceStore`) — replayed with
        bounded memory and fanned out over worker processes — or an
        in-memory :class:`~repro.traces.trace.Trace`, replayed serially.
        """
        from ..engine.store import ChunkedTraceStore

        if isinstance(source, Trace):
            metrics_list = [
                scenario.build_replayer().replay_jobs(iter(source.jobs))
                for scenario in self.scenarios
            ]
        else:
            directory = source.directory if isinstance(source, ChunkedTraceStore) else str(source)
            # Validate the store up front so a bad path fails fast, once.
            ChunkedTraceStore(directory)
            tasks = [(directory, scenario.to_dict()) for scenario in self.scenarios]
            metrics_list = self.executor.map(_run_store_scenario, tasks)
        return SweepResult(outcomes=[
            ScenarioOutcome(scenario=scenario, metrics=metrics)
            for scenario, metrics in zip(self.scenarios, metrics_list)
        ])
