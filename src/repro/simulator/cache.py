"""Storage cache policies.

Section 4 of the paper derives two storage-policy recommendations from the
observed access patterns:

* because 90% of jobs access files of at most a few GB which hold a small
  fraction of stored bytes, *admitting only files below a size threshold*
  keeps cache capacity needs detached from total data growth (§4.2);
* because 75% of re-accesses happen within about six hours, *evicting files
  not accessed for longer than a workload-specific threshold* — i.e. anything
  LRU-like — is a sensible eviction rule (§4.3).

This module implements those two policies plus baselines so the paper's
claims can be evaluated as cache hit-rate orderings on replayed workloads:

* :class:`LruCache` — least-recently-used eviction, admit everything that fits.
* :class:`LfuCache` — least-frequently-used eviction baseline.
* :class:`SizeThresholdCache` — LRU eviction but only admit files below a
  size threshold (the paper's recommended admission policy).
* :class:`UnlimitedCache` — no capacity limit (upper bound on hit rate).
* :class:`NoCache` — never caches (lower bound).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CacheError
from ..units import GB

__all__ = [
    "CacheStats",
    "CachePolicy",
    "NoCache",
    "UnlimitedCache",
    "LruCache",
    "LfuCache",
    "SizeThresholdCache",
]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance.

    Attributes:
        hits: number of accesses served from cache.
        misses: number of accesses that went to disk.
        bytes_from_cache: bytes served from cache.
        bytes_from_disk: bytes served from disk.
        evictions: number of files evicted.
        admissions_rejected: accesses whose file the policy refused to admit.
    """

    hits: int = 0
    misses: int = 0
    bytes_from_cache: float = 0.0
    bytes_from_disk: float = 0.0
    evictions: int = 0
    admissions_rejected: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from cache (0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def byte_hit_rate(self) -> float:
        """Fraction of bytes served from cache (0 when never accessed)."""
        total = self.bytes_from_cache + self.bytes_from_disk
        if total == 0:
            return 0.0
        return self.bytes_from_cache / total


class CachePolicy:
    """Base class: a file cache with an ``access`` entry point.

    Subclasses implement :meth:`_admit` (should the file enter the cache
    after a miss?) and :meth:`_evict_victim` (which cached path to drop when
    space is needed).
    """

    def __init__(self, capacity_bytes: float):
        if capacity_bytes < 0:
            raise CacheError("cache capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self.stats = CacheStats()
        self._contents: "OrderedDict[str, float]" = OrderedDict()
        self._used_bytes = 0.0

    # -- public API ------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return self._used_bytes

    @property
    def n_cached_files(self) -> int:
        return len(self._contents)

    def contains(self, path: str) -> bool:
        return path in self._contents

    def access(self, path: str, size_bytes: float, now_s: float) -> bool:
        """Record an access; returns True on a cache hit.

        On a miss the file is admitted (subject to the policy's admission rule
        and capacity, evicting victims as needed).
        """
        if size_bytes < 0:
            raise CacheError("file size must be non-negative")
        if path in self._contents:
            self.stats.hits += 1
            self.stats.bytes_from_cache += size_bytes
            self._on_hit(path, size_bytes, now_s)
            return True
        self.stats.misses += 1
        self.stats.bytes_from_disk += size_bytes
        if self._admit(path, size_bytes, now_s):
            self._insert(path, size_bytes, now_s)
        else:
            self.stats.admissions_rejected += 1
        return False

    def invalidate(self, path: str) -> None:
        """Drop a path (e.g. because the file was overwritten)."""
        size = self._contents.pop(path, None)
        if size is not None:
            self._used_bytes -= size

    # -- policy hooks ------------------------------------------------------
    def _admit(self, path: str, size_bytes: float, now_s: float) -> bool:
        return size_bytes <= self.capacity_bytes

    def _evict_victim(self) -> Optional[str]:
        """Choose the path to evict; default is least-recently-used order."""
        if not self._contents:
            return None
        return next(iter(self._contents))

    def _on_hit(self, path: str, size_bytes: float, now_s: float) -> None:
        self._contents.move_to_end(path)

    # -- internals ---------------------------------------------------------
    def _insert(self, path: str, size_bytes: float, now_s: float) -> None:
        if size_bytes > self.capacity_bytes:
            return
        while self._used_bytes + size_bytes > self.capacity_bytes and self._contents:
            victim = self._evict_victim()
            if victim is None:
                break
            victim_size = self._contents.pop(victim)
            self._used_bytes -= victim_size
            self.stats.evictions += 1
            self._on_evict(victim)
        if self._used_bytes + size_bytes <= self.capacity_bytes:
            self._contents[path] = size_bytes
            self._used_bytes += size_bytes

    def _on_evict(self, path: str) -> None:
        """Hook for subclasses tracking extra per-path state."""


class NoCache(CachePolicy):
    """Baseline that never caches anything (every access is a miss)."""

    def __init__(self):
        super().__init__(capacity_bytes=0.0)

    def _admit(self, path, size_bytes, now_s):
        return False


class UnlimitedCache(CachePolicy):
    """Upper-bound policy: infinite capacity, admit everything."""

    def __init__(self):
        super().__init__(capacity_bytes=float("inf"))

    def _admit(self, path, size_bytes, now_s):
        return True

    def _insert(self, path, size_bytes, now_s):
        self._contents[path] = size_bytes
        self._used_bytes += size_bytes


class LruCache(CachePolicy):
    """Least-recently-used eviction; admits any file that fits."""


class LfuCache(CachePolicy):
    """Least-frequently-used eviction baseline."""

    def __init__(self, capacity_bytes: float):
        super().__init__(capacity_bytes)
        self._frequencies: Dict[str, int] = {}

    def _on_hit(self, path, size_bytes, now_s):
        super()._on_hit(path, size_bytes, now_s)
        self._frequencies[path] = self._frequencies.get(path, 0) + 1

    def _insert(self, path, size_bytes, now_s):
        super()._insert(path, size_bytes, now_s)
        if path in self._contents:
            self._frequencies[path] = self._frequencies.get(path, 0) + 1

    def _evict_victim(self):
        if not self._contents:
            return None
        return min(self._contents, key=lambda path: self._frequencies.get(path, 0))

    def _on_evict(self, path):
        self._frequencies.pop(path, None)


class SizeThresholdCache(LruCache):
    """The paper's §4.2 policy: only admit files below a size threshold.

    Eviction is LRU.  With the threshold at a few GB the cache captures the
    90% of jobs that touch small files while its capacity requirement stays
    decoupled from total data growth.
    """

    def __init__(self, capacity_bytes: float, size_threshold_bytes: float = 4 * GB):
        super().__init__(capacity_bytes)
        if size_threshold_bytes <= 0:
            raise CacheError("size threshold must be positive")
        self.size_threshold_bytes = float(size_threshold_bytes)

    def _admit(self, path, size_bytes, now_s):
        return size_bytes <= self.size_threshold_bytes and size_bytes <= self.capacity_bytes
