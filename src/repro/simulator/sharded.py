"""Time-sharded replay: split a sorted trace into per-window shards.

Two sharding disciplines, both built on the vectorized engine in
:mod:`repro.simulator.replay`:

* **exact** (the default) — one engine instance is threaded across the time
  windows in order.  The shard boundary only throttles the *feed*: jobs whose
  raw submit time is at or past the boundary stay with the next shard, and
  the engine pauses once every completion at or before the boundary has
  fired.  In-flight tasks, busy slots, scheduler/cache state and the metric
  accumulators carry across the boundary untouched (snapshotted per boundary
  as a :class:`ShardHandoff`), so the event sequence — and every digest bit —
  is identical to an unsharded run.  Exactness hinges on two event-loop
  invariants pinned by the equivalence suite: the next shard's earliest
  submission is at or after the boundary, and completions precede
  submissions at equal times, so draining completions up to the boundary
  before feeding the next shard is exactly the serial event order.
* **windowed** — each window is replayed *independently* (fresh cluster,
  scheduler and cache per shard) on a
  :class:`~repro.engine.parallel.ParallelExecutor`, pruning store chunks by
  their submit-time zones, and the per-shard
  :class:`~repro.simulator.metrics.SimulationMetrics` are merged.  Counts,
  extremes and sketch bins merge exactly; float sums are subject to merge
  rounding, and cross-boundary queueing contention is *dropped* — a job
  admitted in window k that would still occupy slots in window k+1 does not
  delay the next window's jobs.  This is the SWIM-style approximation: it is
  exact when no boundary has in-flight work, and the per-window
  :class:`ShardHandoff` reports (``horizon_s`` past the boundary) show where
  it was not.  Use it for throughput, exact mode for bit-fidelity.

The cut points default to an even split of the store's recorded submit-time
range; pass ``boundaries`` to control them.  Jobs submitted exactly *at* a
boundary belong to the following shard (half-open windows), so an arrival tie
on the boundary never splits across shards.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..errors import SimulationError
from ..traces.schema import Job
from .cache import CachePolicy
from .cluster import ClusterConfig
from .hdfs import HdfsConfig
from .metrics import SimulationMetrics
from .replay import DEFAULT_LOOKAHEAD, StreamingReplayer, _ReplayEngine
from .scheduler import Scheduler
from .tasks import SimJob

__all__ = ["ShardHandoff", "ShardedReplayer", "SHARD_MODES"]

SHARD_MODES = ("exact", "windowed")

_INF = float("inf")


@dataclass(frozen=True)
class ShardHandoff:
    """State carried over one shard boundary (exact mode) or one window's
    closing report (windowed mode).

    Attributes:
        shard_index: zero-based index of the shard that just finished feeding.
        boundary_s: the boundary (raw submit time, exclusive for this shard).
        clock_s: simulation clock when the hand-off was taken.
        jobs_submitted: cumulative jobs fed so far (exact) or jobs in this
            window (windowed).
        active_jobs: jobs admitted but not yet finished at the hand-off.
        in_flight_tasks: running tasks crossing the boundary.
        pending_completion_events: queued completion heap entries.
        busy_map_slots: map slots occupied across the boundary.
        busy_reduce_slots: reduce slots occupied across the boundary.
    """

    shard_index: int
    boundary_s: float
    clock_s: float
    jobs_submitted: int
    active_jobs: int
    in_flight_tasks: int
    pending_completion_events: int
    busy_map_slots: int
    busy_reduce_slots: int


def _replay_window_task(task) -> Optional[tuple]:
    """ParallelExecutor worker: replay one time window of a shared store."""
    from ..engine.parallel import get_worker_store

    directory, blob, window_lo, window_hi = task
    replayer: StreamingReplayer = pickle.loads(blob)
    store = get_worker_store(directory)
    metrics = replayer._replay_store_window(store, window_lo, window_hi,
                                            empty_ok=True)
    if metrics is None:
        return None
    return metrics, metrics.jobs_submitted, metrics.horizon_s


class ShardedReplayer(StreamingReplayer):
    """Replay a sorted store split into per-time-window shards.

    Args:
        shards: number of time windows (≥ 1; 1 degenerates to a plain
            streamed replay in either mode).
        mode: ``"exact"`` or ``"windowed"`` — see the module docstring for
            the fidelity/throughput trade-off.
        boundaries: explicit interior cut points (``shards - 1`` ascending
            raw submit times).  Defaults to an even split of the store's
            submit-time range.  Required for :meth:`replay_jobs` with more
            than one shard (an iterator's time range is unknown up front).
        processes: worker processes for windowed mode (``None`` = one per
            core, as :class:`~repro.engine.parallel.ParallelExecutor`).
        Remaining arguments match :class:`StreamingReplayer`.

    After a replay, :attr:`handoffs` holds one :class:`ShardHandoff` per
    boundary (exact mode) or per non-empty window (windowed mode).
    """

    def __init__(self, cluster_config: Optional[ClusterConfig] = None,
                 scheduler: Optional[Scheduler] = None,
                 cache: Optional[CachePolicy] = None,
                 hdfs_config: Optional[HdfsConfig] = None,
                 max_simulated_jobs: Optional[int] = None,
                 task_transform: Optional[Callable[[SimJob], None]] = None,
                 lookahead: int = DEFAULT_LOOKAHEAD,
                 keep_outcomes: bool = False,
                 shards: int = 2,
                 mode: str = "exact",
                 boundaries: Optional[Sequence[float]] = None,
                 processes: Optional[int] = None):
        super().__init__(cluster_config=cluster_config, scheduler=scheduler,
                         cache=cache, hdfs_config=hdfs_config,
                         max_simulated_jobs=max_simulated_jobs,
                         task_transform=task_transform, lookahead=lookahead,
                         keep_outcomes=keep_outcomes)
        if not isinstance(shards, int) or shards < 1:
            raise SimulationError("shards must be a positive integer, got %r"
                                  % (shards,))
        if mode not in SHARD_MODES:
            raise SimulationError("unknown shard mode %r (choose from %s)"
                                  % (mode, "/".join(SHARD_MODES)))
        if boundaries is not None:
            boundaries = [float(value) for value in boundaries]
            if len(boundaries) != shards - 1:
                raise SimulationError(
                    "%d shards need %d interior boundaries, got %d"
                    % (shards, shards - 1, len(boundaries)))
            if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
                raise SimulationError("shard boundaries must be strictly increasing")
        self.shards = shards
        self.mode = mode
        self.boundaries = boundaries
        self.processes = processes
        self.handoffs: List[ShardHandoff] = []

    # ------------------------------------------------------------------
    def replay_jobs(self, jobs: Iterable[Job]) -> SimulationMetrics:
        """Exact sharded replay of a sorted job iterator.

        Needs explicit ``boundaries`` when ``shards > 1`` (the time range of
        an iterator is unknown until it is consumed); windowed mode needs a
        store (:meth:`replay_store`) because each worker re-reads its window.
        """
        if self.shards > 1 and self.mode == "windowed":
            raise SimulationError(
                "windowed sharding needs a chunked store (replay_store); "
                "use mode='exact' for iterator sources")
        if self.shards > 1 and self.boundaries is None:
            raise SimulationError(
                "sharded replay_jobs needs explicit boundaries (an "
                "iterator's time range is unknown); pass boundaries= or "
                "replay from a store")
        engine = _ReplayEngine(self)
        engine.attach_jobs(jobs)
        return self._run_exact(engine)

    def replay_store(self, store) -> SimulationMetrics:
        from ..engine.store import ChunkedTraceStore

        if not isinstance(store, ChunkedTraceStore):
            store = ChunkedTraceStore(store)
        if self.shards == 1:
            self.handoffs = []
            return super().replay_store(store)
        boundaries = self.boundaries
        if boundaries is None:
            boundaries = self._even_boundaries(store)
        if self.mode == "windowed":
            return self._run_windowed(store, boundaries)
        engine = _ReplayEngine(self)
        if engine.fast:
            from .replay import _FAST_NUMERIC, _FAST_STRINGS

            wanted = [name for name in _FAST_NUMERIC + _FAST_STRINGS
                      if name in store.columns]
            engine.attach_blocks(store.iter_chunks(columns=wanted))
        else:
            engine.attach_jobs(store.iter_jobs())
        return self._run_exact(engine, boundaries)

    # ------------------------------------------------------------------
    def _even_boundaries(self, store) -> List[float]:
        time_range = store.info()["submit_time_range"]
        if time_range is None:
            raise SimulationError("cannot replay an empty job stream")
        lo, hi = float(time_range[0]), float(time_range[1])
        shards = self.shards
        return [lo + (hi - lo) * index / shards for index in range(1, shards)]

    def _run_exact(self, engine: _ReplayEngine,
                   boundaries: Optional[Sequence[float]] = None) -> SimulationMetrics:
        """Drive one engine across the boundary list, snapshotting hand-offs."""
        if boundaries is None:
            boundaries = self.boundaries or []
        self.handoffs = []
        if boundaries:
            # Before priming, so the initial look-ahead pull already stops at
            # shard 0's window and the hand-off counters reflect it.
            engine.feed_boundary = boundaries[0]
        engine.prime()
        for index, boundary in enumerate(boundaries):
            engine.feed_boundary = boundary
            engine.run(until_s=boundary)
            self.handoffs.append(ShardHandoff(**engine.snapshot(index, boundary)))
        engine.feed_boundary = _INF
        engine.require_jobs()
        engine.run()
        return engine.finish()

    def _run_windowed(self, store, boundaries: Sequence[float]) -> SimulationMetrics:
        from ..engine.parallel import ParallelExecutor

        edges: List[Optional[float]] = [None] + list(boundaries) + [None]
        windows = [(edges[index], edges[index + 1])
                   for index in range(len(edges) - 1)]
        self.handoffs = []
        if self.task_transform is not None:
            # Transforms are usually closures (unpicklable) and often carry
            # RNG state whose draw order would change per worker: replay the
            # windows serially in-process instead, sharing this replayer's
            # transform in window order.
            results = []
            for window_lo, window_hi in windows:
                clone = self._serial_clone(with_transform=False)
                clone.task_transform = self.task_transform
                metrics = clone._replay_store_window(store, window_lo, window_hi,
                                                     empty_ok=True)
                results.append(None if metrics is None
                               else (metrics, metrics.jobs_submitted, metrics.horizon_s))
        else:
            blob = pickle.dumps(self._serial_clone(with_transform=False))
            tasks = [(store.directory, blob, window_lo, window_hi)
                     for window_lo, window_hi in windows]
            executor = ParallelExecutor(processes=self.processes)
            results = executor.map(_replay_window_task, tasks,
                                   store_directory=store.directory)
        merged: Optional[SimulationMetrics] = None
        for index, result in enumerate(results):
            if result is None:
                continue
            metrics, jobs_submitted, horizon_s = result
            window_hi = windows[index][1]
            self.handoffs.append(ShardHandoff(
                shard_index=index,
                boundary_s=_INF if window_hi is None else window_hi,
                clock_s=horizon_s,
                jobs_submitted=jobs_submitted,
                active_jobs=0, in_flight_tasks=0,
                pending_completion_events=0,
                busy_map_slots=0, busy_reduce_slots=0))
            if merged is None:
                merged = metrics
            else:
                merged.merge(metrics)
        if merged is None:
            raise SimulationError("cannot replay an empty job stream")
        return merged

    def _serial_clone(self, with_transform: bool = True) -> StreamingReplayer:
        """A fresh single-window replayer with this replayer's configuration.

        Workers unpickle their own copy, so per-window scheduler/cache/HDFS
        mutations never touch this instance or each other.
        """
        clone = StreamingReplayer(
            cluster_config=self.cluster_config,
            scheduler=pickle.loads(pickle.dumps(self.scheduler)),
            cache=pickle.loads(pickle.dumps(self.cache)),
            hdfs_config=self.hdfs.config,
            max_simulated_jobs=self.max_simulated_jobs,
            task_transform=self.task_transform if with_transform else None,
            lookahead=self.lookahead,
            keep_outcomes=self.keep_outcomes)
        return clone
