"""Two-tier cluster replay: a performance tier and a capacity tier (§6.2).

The small-big job dichotomy leads the paper to suggest splitting the cluster
into (1) a *performance tier* that handles the interactive and semi-streaming
computations, and (2) a *capacity tier* that trades performance for storage
and computational efficiency with batch-like semantics — analogous to
multiplexing OLTP and OLAP workloads on separate systems.

The :class:`CapacityScheduler` already models a *logical* split (two pools on
one cluster).  This module models the *physical* split: the trace is routed to
two separately-simulated clusters by job size, then compared against a single
unified cluster with the same total slot count.  The quantities compared are
the ones the paper's argument is about — wait and completion times of small
(interactive) jobs, and overall slot utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SimulationError
from ..traces.trace import Trace
from ..units import GB
from .cache import CachePolicy
from .cluster import ClusterConfig
from .metrics import SimulationMetrics
from .replay import WorkloadReplayer
from .scheduler import FifoScheduler, Scheduler

__all__ = [
    "TieredClusterConfig",
    "TieredReplayResult",
    "TieredReplayer",
    "TieredComparison",
    "compare_tiered_vs_unified",
]


@dataclass(frozen=True)
class TieredClusterConfig:
    """Configuration of the physical performance/capacity split.

    Attributes:
        performance: cluster serving small (interactive) jobs.
        capacity: cluster serving everything else.
        small_job_threshold_bytes: jobs whose total data volume is at or below
            this threshold go to the performance tier.  The 10 GB default
            follows §6.2 ("jobs touching <10GB of total data make up >92% of
            all jobs" and achieve interactive latency).
    """

    performance: ClusterConfig = field(default_factory=lambda: ClusterConfig(n_nodes=40))
    capacity: ClusterConfig = field(default_factory=lambda: ClusterConfig(n_nodes=60))
    small_job_threshold_bytes: float = 10 * GB

    def __post_init__(self):
        if self.small_job_threshold_bytes <= 0:
            raise SimulationError("small job threshold must be positive")

    @property
    def total_nodes(self) -> int:
        return self.performance.n_nodes + self.capacity.n_nodes

    @property
    def total_slots(self) -> int:
        return self.performance.total_slots + self.capacity.total_slots

    def unified_equivalent(self) -> ClusterConfig:
        """A single cluster with the same node count and per-node slots.

        The per-node slot counts of the performance tier are used (the two
        tiers are normally configured identically; when they are not, the
        comparison keeps the node count honest, which is what dominates).
        """
        return ClusterConfig(
            n_nodes=self.total_nodes,
            map_slots_per_node=self.performance.map_slots_per_node,
            reduce_slots_per_node=self.performance.reduce_slots_per_node,
            disk_bandwidth_bps=self.performance.disk_bandwidth_bps,
            network_bandwidth_bps=self.performance.network_bandwidth_bps,
        )


@dataclass
class TieredReplayResult:
    """Metrics of a tiered replay, per tier and combined.

    Attributes:
        performance: metrics of the performance-tier replay (None when the
            trace contains no small jobs).
        capacity: metrics of the capacity-tier replay (None when the trace
            contains no large jobs).
        n_small_jobs: number of jobs routed to the performance tier.
        n_large_jobs: number of jobs routed to the capacity tier.
    """

    performance: Optional[SimulationMetrics]
    capacity: Optional[SimulationMetrics]
    n_small_jobs: int
    n_large_jobs: int

    def small_job_mean_wait(self) -> float:
        """Mean wait time of the jobs in the performance tier (0 if none)."""
        if self.performance is None:
            return 0.0
        return self.performance.mean_wait_time()

    def small_job_median_completion(self) -> float:
        """Median completion time of the jobs in the performance tier."""
        if self.performance is None:
            raise SimulationError("no small jobs were replayed")
        return self.performance.median_completion_time()


class TieredReplayer:
    """Replay a trace on a physically split performance/capacity cluster.

    Args:
        config: the tier split.
        scheduler_factory: zero-argument callable returning a fresh scheduler
            for each tier (FIFO by default — the point of the physical split
            is that even FIFO protects small jobs from large ones).
        cache_factory: optional zero-argument callable returning a fresh cache
            policy per tier.
        max_simulated_jobs: optional per-tier cap on replayed jobs.
    """

    def __init__(self, config: Optional[TieredClusterConfig] = None,
                 scheduler_factory=FifoScheduler,
                 cache_factory=None,
                 max_simulated_jobs: Optional[int] = None):
        self.config = config or TieredClusterConfig()
        self.scheduler_factory = scheduler_factory
        self.cache_factory = cache_factory
        self.max_simulated_jobs = max_simulated_jobs

    def split_trace(self, trace: Trace) -> Dict[str, Trace]:
        """Split a trace into its performance-tier and capacity-tier parts."""
        threshold = self.config.small_job_threshold_bytes
        small = trace.filter(lambda job: job.total_bytes <= threshold,
                             name="%s-small" % trace.name)
        large = trace.filter(lambda job: job.total_bytes > threshold,
                             name="%s-large" % trace.name)
        return {"performance": small, "capacity": large}

    def replay(self, trace: Trace) -> TieredReplayResult:
        """Run both tiers and return the per-tier metrics.

        Raises:
            SimulationError: when the trace is empty.
        """
        if trace.is_empty():
            raise SimulationError("cannot replay an empty trace")
        parts = self.split_trace(trace)

        def run(part: Trace, cluster: ClusterConfig) -> Optional[SimulationMetrics]:
            if part.is_empty():
                return None
            replayer = WorkloadReplayer(
                cluster_config=cluster,
                scheduler=self.scheduler_factory(),
                cache=self.cache_factory() if self.cache_factory else None,
                max_simulated_jobs=self.max_simulated_jobs,
            )
            return replayer.replay(part)

        return TieredReplayResult(
            performance=run(parts["performance"], self.config.performance),
            capacity=run(parts["capacity"], self.config.capacity),
            n_small_jobs=len(parts["performance"]),
            n_large_jobs=len(parts["capacity"]),
        )


@dataclass
class TieredComparison:
    """Side-by-side comparison of the tiered split against a unified cluster.

    Attributes:
        unified: metrics of the unified-cluster replay.
        tiered: metrics of the tiered replay.
        small_job_wait_unified: mean wait of small jobs on the unified cluster.
        small_job_wait_tiered: mean wait of small jobs on the performance tier.
        small_job_wait_improvement: unified wait divided by tiered wait
            (>1 means the split helps; guarded against division by zero).
        threshold_bytes: the small-job byte threshold used for routing.
    """

    unified: SimulationMetrics
    tiered: TieredReplayResult
    small_job_wait_unified: float
    small_job_wait_tiered: float
    small_job_wait_improvement: float
    threshold_bytes: float


def compare_tiered_vs_unified(trace: Trace, config: Optional[TieredClusterConfig] = None,
                              scheduler_factory=FifoScheduler,
                              max_simulated_jobs: Optional[int] = None) -> TieredComparison:
    """Replay a trace on a unified cluster and on the tiered split, and compare.

    The unified cluster has the same total node count as the two tiers
    combined, so the comparison isolates the effect of the split rather than
    of extra hardware.

    Raises:
        SimulationError: when the trace is empty.
    """
    config = config or TieredClusterConfig()
    if trace.is_empty():
        raise SimulationError("cannot compare replays of an empty trace")

    unified_replayer = WorkloadReplayer(
        cluster_config=config.unified_equivalent(),
        scheduler=scheduler_factory(),
        max_simulated_jobs=max_simulated_jobs,
    )
    unified = unified_replayer.replay(trace)

    tiered_replayer = TieredReplayer(config=config, scheduler_factory=scheduler_factory,
                                     max_simulated_jobs=max_simulated_jobs)
    tiered = tiered_replayer.replay(trace)

    threshold = config.small_job_threshold_bytes
    small_waits_unified = [
        outcome.wait_time_s for outcome in unified.outcomes
        if outcome.total_bytes <= threshold and outcome.start_time_s is not None
    ]
    wait_unified = float(sum(small_waits_unified) / len(small_waits_unified)) if small_waits_unified else 0.0
    wait_tiered = tiered.small_job_mean_wait()
    improvement = wait_unified / wait_tiered if wait_tiered > 0 else float("inf") if wait_unified > 0 else 1.0
    return TieredComparison(
        unified=unified,
        tiered=tiered,
        small_job_wait_unified=wait_unified,
        small_job_wait_tiered=wait_tiered,
        small_job_wait_improvement=improvement,
        threshold_bytes=threshold,
    )
