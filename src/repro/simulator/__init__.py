"""Discrete-event MapReduce cluster simulator: the replay substrate.

Provides the event engine, cluster/slot model, schedulers, an HDFS-like file
model, storage-cache policies, and the workload replayer used to evaluate the
paper's storage and scheduling recommendations.
"""

from .events import Event, EventQueue
from .cluster import Cluster, ClusterConfig, Node
from .tasks import SimJob, SimTask, split_job
from .scheduler import CapacityScheduler, FairScheduler, FifoScheduler, Scheduler
from .hdfs import Hdfs, HdfsConfig, HdfsFile
from .cache import (
    CachePolicy,
    CacheStats,
    LfuCache,
    LruCache,
    NoCache,
    SizeThresholdCache,
    UnlimitedCache,
)
from .metrics import JobOutcome, SimulationMetrics
from .replay import WorkloadReplayer, replay
from .stragglers import (
    SpeculativeExecutionModel,
    StragglerImpact,
    StragglerInjectionStats,
    StragglerModel,
    straggler_impact,
    straggler_task_transform,
)
from .energy import (
    EnergyReport,
    PowerDownEvaluation,
    PowerDownPolicy,
    PowerModel,
    energy_from_metrics,
    evaluate_power_down,
)
from .tiered import (
    TieredClusterConfig,
    TieredComparison,
    TieredReplayResult,
    TieredReplayer,
    compare_tiered_vs_unified,
)
from .topology import (
    LocalityFractions,
    RackTopology,
    ShuffleProfile,
    locality_fractions,
    shuffle_cross_rack_bytes,
    workload_shuffle_profile,
)

__all__ = [
    "Event",
    "EventQueue",
    "Cluster",
    "ClusterConfig",
    "Node",
    "SimJob",
    "SimTask",
    "split_job",
    "Scheduler",
    "FifoScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "Hdfs",
    "HdfsConfig",
    "HdfsFile",
    "CachePolicy",
    "CacheStats",
    "NoCache",
    "UnlimitedCache",
    "LruCache",
    "LfuCache",
    "SizeThresholdCache",
    "JobOutcome",
    "SimulationMetrics",
    "WorkloadReplayer",
    "replay",
    # stragglers
    "StragglerModel",
    "SpeculativeExecutionModel",
    "StragglerInjectionStats",
    "straggler_task_transform",
    "StragglerImpact",
    "straggler_impact",
    # energy
    "PowerModel",
    "EnergyReport",
    "energy_from_metrics",
    "PowerDownPolicy",
    "PowerDownEvaluation",
    "evaluate_power_down",
    # tiered cluster
    "TieredClusterConfig",
    "TieredReplayer",
    "TieredReplayResult",
    "TieredComparison",
    "compare_tiered_vs_unified",
    # topology / locality / shuffle
    "RackTopology",
    "LocalityFractions",
    "locality_fractions",
    "shuffle_cross_rack_bytes",
    "ShuffleProfile",
    "workload_shuffle_profile",
]
