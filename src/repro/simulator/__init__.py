"""Discrete-event MapReduce cluster simulator: the replay substrate.

Provides the event engine, cluster/slot model, schedulers, an HDFS-like file
model, storage-cache policies, and the workload replayers used to evaluate
the paper's storage and scheduling recommendations:

* :class:`WorkloadReplayer` replays a materialized
  :class:`~repro.traces.trace.Trace` and retains per-job outcomes;
* :class:`StreamingReplayer` streams jobs from a chunked on-disk store (or
  any sorted job iterator) with bounded memory, keeping only mergeable
  metric accumulators — this is what lets multi-million-job production
  traces replay without materializing them;
* :class:`ShardedReplayer` splits a sorted store into per-time-window shards —
  ``mode="exact"`` threads one engine across the boundaries for bit-identical
  digests, ``mode="windowed"`` replays windows in parallel worker processes
  and merges the metrics;
* :class:`ScenarioSweep` fans a grid of (scheduler × cache × cluster)
  replays out over worker processes and merges the results into one
  comparison report.

Usage — replay a tiny two-job trace under FIFO with no cache::

    >>> from repro.simulator import WorkloadReplayer
    >>> from repro.traces import Job, Trace
    >>> trace = Trace([
    ...     Job(job_id="a", submit_time_s=0.0, duration_s=60.0,
    ...         input_bytes=1e9, shuffle_bytes=0.0, output_bytes=1e8,
    ...         map_task_seconds=120.0, reduce_task_seconds=0.0),
    ...     Job(job_id="b", submit_time_s=30.0, duration_s=60.0,
    ...         input_bytes=2e9, shuffle_bytes=5e8, output_bytes=1e8,
    ...         map_task_seconds=60.0, reduce_task_seconds=60.0),
    ... ], name="doctest")
    >>> metrics = WorkloadReplayer().replay(trace)
    >>> metrics.finished_jobs
    2
    >>> metrics.mean_wait_time()  # enough free slots: nobody queues
    0.0
    >>> metrics.horizon_s > 0.0
    True

The same jobs streamed through :class:`StreamingReplayer` yield bit-identical
accumulator summaries (see :mod:`repro.simulator.replay`); the per-job outcome
list is simply not retained.
"""

from .events import Event, EventQueue
from .cluster import Cluster, ClusterConfig, Node
from .tasks import SimJob, SimTask, split_job
from .scheduler import CapacityScheduler, FairScheduler, FifoScheduler, Scheduler
from .hdfs import Hdfs, HdfsConfig, HdfsFile
from .cache import (
    CachePolicy,
    CacheStats,
    LfuCache,
    LruCache,
    NoCache,
    SizeThresholdCache,
    UnlimitedCache,
)
from .metrics import (
    JobOutcome,
    MetricAccumulator,
    SimulationMetrics,
    UtilizationAccumulator,
)
from .replay import StreamingReplayer, WorkloadReplayer, replay, replay_store
from .legacy import legacy_replay_jobs
from .sharded import SHARD_MODES, ShardHandoff, ShardedReplayer
from .sweep import (
    Scenario,
    ScenarioOutcome,
    ScenarioSweep,
    SweepResult,
    expand_grid,
    load_sweep_spec,
)
from .stragglers import (
    SpeculativeExecutionModel,
    StragglerImpact,
    StragglerInjectionStats,
    StragglerModel,
    straggler_impact,
    straggler_task_transform,
)
from .energy import (
    EnergyReport,
    PowerDownEvaluation,
    PowerDownPolicy,
    PowerModel,
    energy_from_metrics,
    evaluate_power_down,
)
from .tiered import (
    TieredClusterConfig,
    TieredComparison,
    TieredReplayResult,
    TieredReplayer,
    compare_tiered_vs_unified,
)
from .topology import (
    LocalityFractions,
    RackTopology,
    ShuffleProfile,
    locality_fractions,
    shuffle_cross_rack_bytes,
    workload_shuffle_profile,
)

__all__ = [
    "Event",
    "EventQueue",
    "Cluster",
    "ClusterConfig",
    "Node",
    "SimJob",
    "SimTask",
    "split_job",
    "Scheduler",
    "FifoScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "Hdfs",
    "HdfsConfig",
    "HdfsFile",
    "CachePolicy",
    "CacheStats",
    "NoCache",
    "UnlimitedCache",
    "LruCache",
    "LfuCache",
    "SizeThresholdCache",
    "JobOutcome",
    "MetricAccumulator",
    "UtilizationAccumulator",
    "SimulationMetrics",
    "WorkloadReplayer",
    "StreamingReplayer",
    "replay",
    "replay_store",
    # sharded replay + the legacy differential reference
    "SHARD_MODES",
    "ShardHandoff",
    "ShardedReplayer",
    "legacy_replay_jobs",
    # scenario sweeps
    "Scenario",
    "ScenarioOutcome",
    "ScenarioSweep",
    "SweepResult",
    "expand_grid",
    "load_sweep_spec",
    # stragglers
    "StragglerModel",
    "SpeculativeExecutionModel",
    "StragglerInjectionStats",
    "straggler_task_transform",
    "StragglerImpact",
    "straggler_impact",
    # energy
    "PowerModel",
    "EnergyReport",
    "energy_from_metrics",
    "PowerDownPolicy",
    "PowerDownEvaluation",
    "evaluate_power_down",
    # tiered cluster
    "TieredClusterConfig",
    "TieredReplayer",
    "TieredReplayResult",
    "TieredComparison",
    "compare_tiered_vs_unified",
    # topology / locality / shuffle
    "RackTopology",
    "LocalityFractions",
    "locality_fractions",
    "shuffle_cross_rack_bytes",
    "ShuffleProfile",
    "workload_shuffle_profile",
]
