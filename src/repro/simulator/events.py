"""Discrete-event simulation engine.

A minimal, heap-based event loop shared by the MapReduce cluster simulator.
Events are ``(time, priority, sequence, callback)`` tuples; ties are broken by
priority then insertion order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventQueue", "Event"]


class Event:
    """A scheduled event.

    Attributes:
        time_s: simulation time at which the event fires.
        priority: tie-break priority (lower fires first).
        callback: zero-argument callable invoked when the event fires.
        cancelled: set via :meth:`cancel` to skip the callback.
    """

    __slots__ = ("time_s", "priority", "sequence", "callback", "cancelled")

    def __init__(self, time_s: float, priority: int, sequence: int, callback: Callable[[], None]):
        self.time_s = time_s
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_s, self.priority, self.sequence) < (other.time_s, other.priority, other.sequence)


class EventQueue:
    """A deterministic discrete-event queue.

    Typical usage::

        queue = EventQueue()
        queue.schedule(10.0, lambda: print("at t=10"))
        queue.run()
    """

    def __init__(self):
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, time_s: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time_s``.

        Raises:
            SimulationError: when scheduling in the past.
        """
        if time_s < self._now:
            raise SimulationError(
                "cannot schedule an event at %.3f, before current time %.3f" % (time_s, self._now)
            )
        event = Event(time_s, priority, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay_s: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` after a relative delay."""
        if delay_s < 0:
            raise SimulationError("delay must be non-negative, got %r" % (delay_s,))
        return self.schedule(self._now + delay_s, callback, priority)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_s
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until_s: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until_s`` is reached, or ``max_events``.

        ``until_s`` is inclusive: events at exactly that time still fire.
        """
        executed = 0
        while self._heap:
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_s is not None and next_event.time_s > until_s:
                self._now = until_s
                return
            if max_events is not None and executed >= max_events:
                return
            self.step()
            executed += 1
