"""repro: reproduction of "Interactive Analytical Processing in Big Data Systems:
A Cross-Industry Study of MapReduce Workloads" (Chen, Alspaugh, Katz — VLDB 2012).

The library has four layers (see DESIGN.md):

* :mod:`repro.traces` — job-level trace schema, I/O, and statistical models of
  the paper's seven workloads (FB-2009, FB-2010, CC-a..CC-e).
* :mod:`repro.synth` — synthesis primitives (distributions, arrival processes,
  file popularity) and the SWIM-style scaled-workload synthesizer.
* :mod:`repro.core` — the paper's characterization methodology: data access,
  temporal and compute pattern analysis, k-means job clustering, burstiness.
* :mod:`repro.simulator` — a discrete-event MapReduce cluster simulator used
  to replay workloads and evaluate storage-cache and scheduling policies.

Quickstart::

    import repro

    trace = repro.load_workload("FB-2009", scale=0.001, seed=1)
    report = repro.characterize(trace)
    print(report.render())
"""

from .errors import ReproError
from .traces import Job, Trace, load_workload, load_all_paper_workloads, PAPER_WORKLOAD_NAMES
from .core import WorkloadCharacterizer, characterize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Job",
    "Trace",
    "load_workload",
    "load_all_paper_workloads",
    "PAPER_WORKLOAD_NAMES",
    "WorkloadCharacterizer",
    "characterize",
]
