"""repro: reproduction of "Interactive Analytical Processing in Big Data Systems:
A Cross-Industry Study of MapReduce Workloads" (Chen, Alspaugh, Katz — VLDB 2012).

The library has five layers (see DESIGN.md):

* :mod:`repro.traces` — job-level trace schema, I/O, and statistical models of
  the paper's seven workloads (FB-2009, FB-2010, CC-a..CC-e).
* :mod:`repro.synth` — synthesis primitives (distributions, arrival processes,
  file popularity) and the SWIM-style scaled-workload synthesizer.
* :mod:`repro.core` — the paper's characterization methodology: data access,
  temporal and compute pattern analysis, k-means job clustering, burstiness.
* :mod:`repro.simulator` — a discrete-event MapReduce cluster simulator used
  to replay workloads and evaluate storage-cache and scheduling policies.
* :mod:`repro.engine` — the columnar trace engine: out-of-core chunked
  storage and parallel scan/aggregate operators for production-scale traces.

Quickstart::

    import repro

    trace = repro.load_workload("FB-2009", scale=0.001, seed=1)
    report = repro.characterize(trace)
    print(report.render())

Scaling to large traces
-----------------------

The paper's production traces span hundreds of thousands to millions of jobs;
a Python list of :class:`Job` objects stops being the right representation
long before that.  The :mod:`repro.engine` subsystem keeps every numeric
dimension as one contiguous NumPy column instead:

* ``trace.to_columnar()`` converts an in-memory trace to a
  :class:`~repro.engine.ColumnarTrace` whose Trace-compatible accessors
  (``dimension``, ``feature_matrix``, Table-1 reductions) run at array speed;
* :meth:`repro.engine.ChunkedTraceStore.write` spills any trace — or any lazy
  job iterator from :func:`repro.traces.iter_trace` — to a chunked ``.npz``
  on-disk store with per-chunk zone maps, so conversion and every later scan
  are bounded by chunk size, not trace size;
* :class:`repro.engine.Query` describes lazy ``scan → filter → project →
  group-by/aggregate → top-k/limit`` pipelines; ``execute`` streams them one
  chunk at a time, skipping chunks whose zone maps cannot match, and
  :class:`repro.engine.ParallelExecutor` fans chunk scans out over worker
  processes, merging exact partial aggregates and percentile sketches.

::

    from repro.engine import ChunkedTraceStore, Query, execute

    store = ChunkedTraceStore.write("fb2009.store", repro.traces.iter_trace("fb2009.csv.gz"))
    big = (Query().filter("input_bytes", ">", 1e9)
                  .aggregate(jobs=("count", "input_bytes"),
                             p99_duration=("p99", "duration_s")))
    print(execute(store, big).aggregates)

The same pipelines are scriptable via ``python -m repro engine convert|info|query``,
and ``examples/large_trace_engine.py`` walks a 1M-job trace end to end.
"""

from .errors import ReproError
from .traces import Job, Trace, load_workload, load_all_paper_workloads, PAPER_WORKLOAD_NAMES
from .core import WorkloadCharacterizer, characterize
from .engine import ChunkedTraceStore, ColumnarTrace, ParallelExecutor, Query, execute

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "Job",
    "Trace",
    "load_workload",
    "load_all_paper_workloads",
    "PAPER_WORKLOAD_NAMES",
    "WorkloadCharacterizer",
    "characterize",
    "ColumnarTrace",
    "ChunkedTraceStore",
    "Query",
    "execute",
    "ParallelExecutor",
]
