"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so callers
can distinguish library failures from programming errors with a single
``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "TraceFormatError",
    "SpecError",
    "AnalysisError",
    "ClusteringError",
    "SimulationError",
    "SchedulingError",
    "CacheError",
    "SynthesisError",
    "ScalingError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A job record violates the trace schema (bad types, negative sizes...)."""


class TraceFormatError(ReproError):
    """A trace file could not be parsed (bad header, malformed row, bad log line)."""


class SpecError(ReproError):
    """A workload specification is inconsistent or incomplete."""


class AnalysisError(ReproError):
    """A characterization step cannot run (e.g. empty trace, missing dimension)."""


class ClusteringError(AnalysisError):
    """k-means or the job-clustering pipeline failed (e.g. fewer points than k)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A scheduler was asked to do something impossible (e.g. negative slots)."""


class CacheError(SimulationError):
    """A cache policy was misconfigured (e.g. negative capacity)."""


class SynthesisError(ReproError):
    """Workload synthesis failed (bad distribution parameters, empty source)."""


class ScalingError(SynthesisError):
    """A workload scale-down request is invalid (e.g. scale factor <= 0)."""


class BenchmarkError(ReproError):
    """A benchmark harness step failed."""
