"""SWIM-style scale-down and replay (the paper's §7 stop-gap benchmark).

The paper's SWIM tool makes production workloads usable for benchmarking by
(1) sampling a scaled-down synthetic job stream from a trace and (2) replaying
it on a smaller cluster with pre-populated data.  This example runs that
pipeline against the simulated cluster:

1. generate the FB-2009 workload from its statistical description;
2. synthesize a 2,000-job, 4-hour workload scaled to a 20-node cluster;
3. replay it under the FIFO and fair schedulers;
4. compare small-job wait times, reproducing the paper's §6.2 argument that a
   single large job can head-of-line-block the many interactive small jobs.

Run with::

    python examples/scale_down_replay.py [n_jobs] [target_machines]
"""

from __future__ import annotations

import sys

import repro
from repro.simulator import ClusterConfig, FairScheduler, FifoScheduler, WorkloadReplayer
from repro.synth import SwimSynthesizer
from repro.units import GB, HOUR, format_bytes


def replay_with(scheduler, plan, machines):
    replayer = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=machines),
                                scheduler=scheduler)
    return replayer.replay(plan.trace)


def small_job_wait(metrics, threshold=10 * GB):
    waits = [outcome.wait_time_s for outcome in metrics.outcomes
             if outcome.total_bytes <= threshold and outcome.start_time_s is not None]
    return sum(waits) / max(1, len(waits))


def main() -> int:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    machines = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print("Generating the FB-2009 workload (scaled) ...")
    source = repro.load_workload("FB-2009", seed=3, scale=0.01)
    print("  source: %d jobs, %s moved on %d machines"
          % (len(source), format_bytes(source.bytes_moved()), source.machines))

    print("\nSynthesizing a %d-job, 4-hour workload for a %d-node cluster ..."
          % (n_jobs, machines))
    plan = SwimSynthesizer(source, seed=1).synthesize(
        n_jobs=n_jobs, horizon_s=4 * HOUR, target_machines=machines)
    print(plan.describe())

    print("\nReplaying under FIFO and fair scheduling ...")
    fifo = replay_with(FifoScheduler(), plan, machines)
    fair = replay_with(FairScheduler(), plan, machines)

    print("\n%-28s %12s %12s" % ("metric", "FIFO", "Fair"))
    print("%-28s %11.1fs %11.1fs" % ("mean small-job wait", small_job_wait(fifo), small_job_wait(fair)))
    print("%-28s %11.1fs %11.1fs" % ("median completion time",
                                     fifo.median_completion_time(), fair.median_completion_time()))
    print("%-28s %11.1f%% %11.1f%%" % ("mean cluster utilization",
                                       100 * fifo.mean_utilization(), 100 * fair.mean_utilization()))
    print("\nWith many small interactive jobs sharing the cluster with rare huge jobs, "
          "fair scheduling keeps small-job waits low — the behaviour the paper's "
          "performance/capacity tier split is designed to protect.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
