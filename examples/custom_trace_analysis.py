"""Characterize your own Hadoop cluster's history logs.

The paper closes by inviting cluster operators to analyze their own workloads
with the released tools.  This example shows that path end to end on synthetic
input: it writes a small Hadoop-history-style log, parses it with the library's
log reader, runs the characterization, registers the workload's statistical
description as a custom spec, and synthesizes a scaled copy — the workflow an
operator would follow to compare their cluster against the paper's workloads.

Run with::

    python examples/custom_trace_analysis.py [history_log_path]

If a path is given it must contain Hadoop-style ``Job JOBID="..." ...`` summary
lines (see ``repro.traces.hadoop_log``); otherwise a demo log is generated.
"""

from __future__ import annotations

import sys
import tempfile

import repro
from repro.core import characterize
from repro.synth import SwimSynthesizer
from repro.traces import format_job_line, load_workload, read_history_log
from repro.units import HOUR


def write_demo_log(path: str) -> None:
    """Write a demo history log derived from a scaled CC-b workload."""
    trace = load_workload("CC-b", seed=13, scale=0.05)
    with open(path, "w", encoding="utf-8") as handle:
        for job in trace:
            handle.write(format_job_line(job) + "\n")


def main() -> int:
    if len(sys.argv) > 1:
        log_path = sys.argv[1]
    else:
        log_path = tempfile.mktemp(suffix=".log", prefix="repro-demo-history-")
        print("No log supplied; writing a demo history log to %s" % log_path)
        write_demo_log(log_path)

    print("Parsing Hadoop history log %s ..." % log_path)
    trace = read_history_log(log_path, name="my-cluster", machines=50)
    print("  parsed %d jobs spanning %.1f hours"
          % (len(trace), trace.duration_s() / 3600.0))

    print("\nCharacterizing ...\n")
    report = characterize(trace, max_k=6)
    print(report.render())

    print("\nSynthesizing a 1-hour, 500-job replayable workload from the log ...")
    plan = SwimSynthesizer(trace, source_machines=50, seed=0).synthesize(
        n_jobs=500, horizon_s=1 * HOUR, target_machines=10)
    print(plan.describe())
    print("\nThe synthetic trace can now be replayed with repro.simulator.replay() "
          "or exported with repro.traces.write_trace() for use elsewhere.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
