"""Walkthrough: scaling trace analysis to 1M jobs with the columnar engine.

The paper's production traces span hundreds of thousands to millions of jobs.
This example generates a 1M-job synthetic trace, converts it to the chunked
on-disk columnar store, and answers the kinds of questions the
characterization pipeline asks — without ever holding the job list in memory
after conversion.

Run with::

    PYTHONPATH=src python examples/large_trace_engine.py [--jobs 1000000]

(Use ``--jobs 100000`` for a quicker spin.)
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore, ParallelExecutor, Query, execute
from repro.traces import Job
from repro.units import GB, format_bytes


def generate_jobs(n_jobs: int, seed: int = 7):
    """Yield synthetic jobs lazily — the full list never exists in memory."""
    rng = np.random.default_rng(seed)
    chunk = 100_000
    produced = 0
    clock = 0.0
    while produced < n_jobs:
        n = min(chunk, n_jobs - produced)
        # Poisson-ish arrivals, long-tailed sizes (the paper's headline shape).
        gaps = rng.exponential(2.0, size=n)
        submit = clock + np.cumsum(gaps)
        clock = float(submit[-1])
        duration = rng.lognormal(4.0, 1.8, size=n)
        input_b = rng.lognormal(17.0, 4.0, size=n)
        map_only = rng.random(n) < 0.35
        shuffle_b = np.where(map_only, 0.0, rng.lognormal(15.0, 4.0, size=n))
        output_b = rng.lognormal(14.0, 4.0, size=n)
        map_s = rng.lognormal(5.0, 1.5, size=n)
        reduce_s = np.where(map_only, 0.0, rng.lognormal(4.0, 1.5, size=n))
        frameworks = np.array(["hive", "pig", "oozie", "native"])[rng.integers(0, 4, size=n)]
        for i in range(n):
            yield Job(
                job_id="big_%08d" % (produced + i),
                submit_time_s=float(submit[i]),
                duration_s=float(duration[i]),
                input_bytes=float(input_b[i]),
                shuffle_bytes=float(shuffle_b[i]),
                output_bytes=float(output_b[i]),
                map_task_seconds=float(map_s[i]),
                reduce_task_seconds=float(reduce_s[i]),
                framework=str(frameworks[i]),
            )
        produced += n


def main():
    parser = argparse.ArgumentParser(description="columnar engine walkthrough")
    parser.add_argument("--jobs", type=int, default=1_000_000)
    parser.add_argument("--store", default="", help="store directory (default: temp dir)")
    args = parser.parse_args()

    store_dir = args.store or os.path.join(tempfile.mkdtemp(prefix="large_trace_"), "store")

    # 1. Convert: stream the generator straight into the chunked store.  At no
    #    point does a list of one million Job objects exist.
    print("converting %d synthetic jobs to %s ..." % (args.jobs, store_dir))
    start = time.perf_counter()
    store = ChunkedTraceStore.write(store_dir, generate_jobs(args.jobs))
    info = store.info()
    print("  wrote %d jobs, %d chunks, %s on disk in %.1f s\n"
          % (info["n_jobs"], info["n_chunks"],
             format_bytes(info["on_disk_bytes"]), time.perf_counter() - start))

    # 2. Table-1 style totals: one streaming aggregate pass.
    totals = execute(store, Query().aggregate(
        bytes_moved=("sum", "total_bytes"),
        task_seconds=("sum", "total_task_seconds")))
    print("bytes moved:        %s" % format_bytes(totals.aggregates["bytes_moved"]))
    print("task-seconds:       %.3g" % totals.aggregates["task_seconds"])

    # 3. The paper's headline observation (§4.1): most jobs touch < 1 GB.
    small = execute(store, Query().filter("input_bytes", "<=", float(GB)).count())
    print("jobs with <= 1 GB input: %.1f%%"
          % (100.0 * small.aggregates["count"] / info["n_jobs"]))

    # 4. Tail latency, via the mergeable log-histogram sketch.
    tail = execute(store, Query().aggregate(p50=("p50", "duration_s"),
                                            p99=("p99", "duration_s")))
    print("duration p50 / p99: %.0f s / %.0f s"
          % (tail.aggregates["p50"], tail.aggregates["p99"]))

    # 5. Group-by, fanned out over worker processes (merges exact partials).
    per_framework = ParallelExecutor().run(store, Query().group_by("framework").aggregate(
        n=("count", "duration_s"), bytes=("sum", "input_bytes")))
    print("\nper-framework:")
    for framework, aggregates in per_framework.groups.items():
        print("  %-8s %8d jobs  %s" % (framework, aggregates["n"],
                                       format_bytes(aggregates["bytes"])))

    # 6. Top-k with a zone-map-pruned filter: the 5 largest late-trace jobs.
    #    Chunks are time-sorted, so the submit-time filter skips most chunks.
    horizon = store.chunk_zone(store.n_chunks - 1, "submit_time_s")
    recent = (Query().filter("submit_time_s", ">=", horizon[0])
              .top("input_bytes", 5).project(["job_id", "input_bytes"]))
    top = execute(store, recent)
    print("\n5 largest jobs in the final chunk window "
          "(scanned %d/%d chunks, %d skipped by zone maps):"
          % (top.chunks_scanned, store.n_chunks, top.chunks_skipped))
    for row in top.row_dicts():
        print("  %-14s %s" % (row["job_id"], format_bytes(row["input_bytes"])))

    # 7. Round-trip guarantee: any window can be rematerialized as Job objects.
    first_jobs = execute(store, Query().limit(3))
    sample = next(iter(store.iter_jobs()))
    print("\nfirst job rematerialized: %s (submitted %.1f s)"
          % (sample.job_id, sample.submit_time_s))
    print("(limit-3 probe scanned %d of %d chunks)"
          % (first_jobs.chunks_scanned, store.n_chunks))


if __name__ == "__main__":
    main()
