"""Streaming replay + scenario sweep walkthrough.

Demonstrates the bounded-memory replay path end to end:

1. generate a paper workload and convert it to a chunked columnar store
   (the conversion itself streams — no full job list in memory);
2. replay the store through :class:`StreamingReplayer` and compare its
   accumulator metrics with a classic materialized replay (they match
   exactly — both paths share one event loop);
3. fan a (scheduler × cache) scenario grid out with :class:`ScenarioSweep`
   and print the comparison table, reproducing the shape of the paper's
   §4.2/§4.3 cache-policy and §6.2 scheduling arguments.

Run with::

    PYTHONPATH=src python examples/streaming_replay_sweep.py
"""

import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore, ParallelExecutor
from repro.simulator import (
    ScenarioSweep,
    StreamingReplayer,
    WorkloadReplayer,
    expand_grid,
)
from repro.traces import load_workload


def main():
    print("== 1. generate a workload and convert it to a chunked store ==")
    trace = load_workload("CC-e", seed=7, scale=0.3)
    store_dir = tempfile.mkdtemp(prefix="streaming_replay_")
    store = ChunkedTraceStore.write(os.path.join(store_dir, "cc-e.store"),
                                    trace, chunk_rows=1024)
    print("store: %d jobs in %d chunks (%.1f MB on disk)\n"
          % (store.n_jobs, store.n_chunks, store.info()["on_disk_bytes"] / 1e6))

    print("== 2. streamed replay == materialized replay ==")
    streamed = StreamingReplayer().replay_store(store)
    materialized = WorkloadReplayer().replay(trace)
    for key, value in streamed.summary().items():
        print("  %-20s streamed=%-12.4g materialized=%-12.4g match=%s"
              % (key, value, materialized.summary()[key],
                 value == materialized.summary()[key]))
    print("  per-job outcomes retained: streamed=%d materialized=%d\n"
          % (len(streamed.outcomes), len(materialized.outcomes)))

    print("== 3. scenario sweep over the store ==")
    scenarios = expand_grid({
        "schedulers": ["fifo", "fair",
                       {"scheduler": "capacity",
                        "scheduler_kwargs": {"interactive_share": 0.4}}],
        "caches": [{"cache": "none"},
                   {"cache": "lru", "cache_gb": 1.0},
                   {"cache": "size-threshold", "cache_gb": 1.0}],
    })
    sweep = ScenarioSweep(scenarios, executor=ParallelExecutor(processes=2))
    result = sweep.run(store.directory)
    print(result.render())

    shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
