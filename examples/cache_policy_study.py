"""Storage cache policy study (the paper's §4.2-4.3 design argument).

The paper observes that MapReduce file accesses are heavily skewed (Zipf-like,
Figure 2), that 90% of jobs read files of at most a few GB holding a small
fraction of stored bytes (Figures 3-4), and that 75% of re-accesses happen
within about six hours (Figure 5).  From this it argues for caching small,
recently used files.

This example replays a Cloudera customer workload on the cluster simulator
under five cache policies and prints the hit-rate comparison, showing that a
size-threshold admission policy with LRU eviction captures most of the
achievable hit rate at a small fraction of the capacity an unlimited cache
would need.

Run with::

    python examples/cache_policy_study.py [workload] [capacity_gb]
"""

from __future__ import annotations

import sys

import repro
from repro.simulator import (
    ClusterConfig,
    LfuCache,
    LruCache,
    NoCache,
    SizeThresholdCache,
    UnlimitedCache,
    WorkloadReplayer,
)
from repro.units import GB, format_bytes


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "CC-d"
    capacity_gb = float(sys.argv[2]) if len(sys.argv) > 2 else 512.0
    capacity = capacity_gb * GB

    print("Generating workload %s ..." % workload)
    trace = repro.load_workload(workload, seed=7)
    print("  %d jobs, %s moved" % (len(trace), format_bytes(trace.bytes_moved())))

    policies = {
        "no cache": NoCache(),
        "LRU (%.0f GB)" % capacity_gb: LruCache(capacity),
        "LFU (%.0f GB)" % capacity_gb: LfuCache(capacity),
        "size-threshold 4 GB + LRU (%.0f GB)" % capacity_gb: SizeThresholdCache(capacity, 4 * GB),
        "unlimited": UnlimitedCache(),
    }

    print("\nReplaying %s under each cache policy (first 5000 jobs) ...\n" % workload)
    print("%-40s %10s %14s %14s" % ("policy", "hit rate", "byte hit rate", "cache used"))
    results = {}
    for name, cache in policies.items():
        replayer = WorkloadReplayer(
            cluster_config=ClusterConfig(n_nodes=trace.machines or 100),
            cache=cache,
            max_simulated_jobs=5000,
        )
        metrics = replayer.replay(trace)
        stats = metrics.cache_stats
        results[name] = stats
        used = format_bytes(cache.used_bytes) if cache.used_bytes != float("inf") else "unbounded"
        print("%-40s %9.1f%% %13.1f%% %14s"
              % (name, 100 * stats.hit_rate, 100 * stats.byte_hit_rate, used))

    threshold_name = "size-threshold 4 GB + LRU (%.0f GB)" % capacity_gb
    achievable = results["unlimited"].hit_rate or 1.0
    print("\nThe size-threshold policy reaches %.0f%% of the unlimited cache's hit rate "
          "while storing only small files (paper §4.2: cache capacity growth can be "
          "decoupled from data growth)." % (100 * results[threshold_name].hit_rate / achievable))
    return 0


if __name__ == "__main__":
    sys.exit(main())
