"""Quickstart: generate a paper workload, characterize it, and print the report.

Run with::

    python examples/quickstart.py [workload] [scale]

The default generates the CC-e workload (a Hive-dominated retail analytics
cluster) at full scale and runs the complete characterization pipeline of the
paper — per-job data sizes (Figure 1), file access patterns (Figures 2-6),
temporal behaviour (Figures 7-9), job naming (Figure 10) and the k-means job
clustering (Table 2).
"""

from __future__ import annotations

import sys

import repro


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "CC-e"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else None

    print("Generating workload %s ..." % workload)
    trace = repro.load_workload(workload, seed=42, scale=scale)
    print("  %d jobs over %.1f days, %.1f TB moved\n"
          % (len(trace), trace.duration_s() / 86400.0, trace.bytes_moved() / 1024 ** 4))

    print("Characterizing (this runs every analysis in the paper) ...\n")
    report = repro.characterize(trace, max_k=8)
    print(report.render())

    print("\nKey shape checks against the paper:")
    if report.clustering is not None:
        print("  - small jobs form %.1f%% of the workload (paper: >92%%)"
              % (100 * report.clustering.small_job_fraction))
    if report.access is not None and report.access.input_ranks is not None \
            and report.access.input_ranks.slope is not None:
        print("  - file access Zipf slope %.2f (paper: about 5/6 = 0.83)"
              % report.access.input_ranks.slope)
    if report.burstiness is not None:
        print("  - peak-to-median hourly load %.0f:1 (paper range: 9:1 to 260:1)"
              % report.burstiness.peak_to_median)
    if report.correlations is not None:
        print("  - strongest hourly correlation: %s (paper: bytes vs task-time)"
              % report.correlations.strongest_pair())
    return 0


if __name__ == "__main__":
    sys.exit(main())
