"""Consolidation and energy study: multiplexing workloads and powering down idle nodes.

Run with::

    python examples/consolidation_and_energy.py

Section 5.2 of the paper makes two operational points about bursty workloads:

* multiplexing many workloads on one cluster smooths the load — Facebook's
  peak-to-median ratio fell from 31:1 to 9:1 as more organizations shared the
  cluster — but the combined workload *remains* bursty;
* because the cluster spends most hours far below peak, "mechanisms for
  conserving energy will be beneficial during periods of low utilization".

This example reproduces both: it consolidates three Cloudera-customer
workloads and reports the burstiness reduction, then replays one workload and
compares the energy of an always-on cluster against a power-down policy.
"""

from __future__ import annotations

import sys

from repro.core import consolidation_study
from repro.simulator import (
    ClusterConfig,
    PowerDownPolicy,
    PowerModel,
    WorkloadReplayer,
    energy_from_metrics,
    evaluate_power_down,
)
from repro.traces import load_workload


def main() -> int:
    print("Part 1 — consolidation (§5.2)\n")
    names = ("CC-a", "CC-b", "CC-e")
    traces = [load_workload(name, seed=11, scale=0.5) for name in names]
    study = consolidation_study(traces)
    print("%-14s %14s %14s" % ("workload", "peak:median", "p99:median"))
    for name, burstiness in study.source_burstiness.items():
        print("%-14s %11.0f:1 %14.1f" % (name, burstiness.peak_to_median, burstiness.p99_to_median))
    combined = study.consolidated_burstiness
    print("%-14s %11.0f:1 %14.1f" % ("consolidated", combined.peak_to_median, combined.p99_to_median))
    print("\n  -> multiplexing reduced the peak-to-median ratio %.1fx;"
          % study.peak_to_median_reduction)
    print("     the consolidated workload %s bursty (paper: it remains bursty).\n"
          % ("remains" if study.remains_bursty else "is no longer"))

    print("Part 2 — energy during low utilization (§5.2)\n")
    trace = load_workload("CC-e", seed=11, scale=1.0)
    config = ClusterConfig(n_nodes=60)
    metrics = WorkloadReplayer(cluster_config=config, max_simulated_jobs=4000).replay(trace)
    power = PowerModel(idle_node_watts=150.0, peak_node_watts=300.0)
    report = energy_from_metrics(metrics, config, power)
    evaluation = evaluate_power_down(metrics, config, power, PowerDownPolicy())

    print("  mean slot utilization           %6.1f %%" % (100 * report.mean_utilization))
    print("  energy, all nodes always on     %6.1f kWh" % report.energy_kwh)
    print("  energy, power-down policy       %6.1f kWh" % (evaluation.policy_joules / 3.6e6))
    print("  savings                         %6.1f %%" % (100 * evaluation.savings_fraction))
    print("  mean nodes powered on           %6.1f of %d" % (evaluation.mean_nodes_on, config.n_nodes))
    print("  energy a perfectly proportional cluster would use: %.1f kWh (gap %.0f%%)"
          % (report.proportional_joules / 3.6e6, 100 * report.proportionality_gap))
    return 0


if __name__ == "__main__":
    sys.exit(main())
