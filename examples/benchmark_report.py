"""Regenerate every table and figure of the paper in one run.

This drives the same harness as ``benchmarks/`` but prints the full plain-text
report (and optionally writes it to a file), which is how EXPERIMENTS.md was
produced.

Run with::

    python examples/benchmark_report.py [output_path] [scale]

``scale`` applies to the two Facebook workloads (default 0.01); the Cloudera
workloads are generated at full scale.
"""

from __future__ import annotations

import sys

from repro.bench import render_suite, run_suite


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else None
    fb_scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01

    print("Running the full benchmark suite (this takes several minutes) ...\n")
    results = run_suite(
        seed=2012,
        scale_overrides={"FB-2009": fb_scale, "FB-2010": fb_scale},
        include_ablations=True,
        include_simulation=True,
    )
    report = render_suite(results)
    print(report)
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print("\nWrote report to %s" % output_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
