"""Workload-suite selection and the anonymized-sharing pipeline.

Run with::

    python examples/workload_suite_and_sharing.py

Two of the paper's §7/§8 recommendations made concrete:

* **Workload suites.**  No single workload is representative; a TPC-style
  benchmark needs a small suite covering the behavior range.  This example
  condenses all seven paper workloads into feature vectors and greedily picks
  a three-workload suite by k-center coverage.

* **Sharing anonymized aggregates.**  The paper invites operators to share
  workload knowledge, but raw traces carry sensitive paths and names.  The
  example runs the full pipeline a site would use: anonymize the trace with a
  salted hash, aggregate it into decade histograms and hourly series, ship the
  JSON "offsite", and show the receiving side can still compare workloads.
"""

from __future__ import annotations

import sys

from repro.core import select_workload_suite, workload_features
from repro.traces import (
    AggregatedMetrics,
    Anonymizer,
    aggregate_trace,
    anonymize_trace,
    load_workload,
)

#: Scales chosen so the example runs in well under a minute.
SCALES = {"CC-a": 1.0, "CC-b": 0.3, "CC-c": 0.3, "CC-d": 0.3, "CC-e": 0.5,
          "FB-2009": 0.005, "FB-2010": 0.005}


def main() -> int:
    print("Generating the seven paper workloads (scaled down) ...\n")
    traces = {name: load_workload(name, seed=3, scale=scale) for name, scale in SCALES.items()}

    print("Part 1 — representative workload suite (§7)\n")
    features = [workload_features(trace) for trace in traces.values()]
    suite = select_workload_suite(features, suite_size=3)
    print("  selected suite: %s" % ", ".join(suite.selected))
    print("  coverage radius %.2f in normalized feature space\n" % suite.coverage_radius)
    print("  %-10s -> nearest representative" % "workload")
    for name, representative in sorted(suite.assignment.items()):
        print("  %-10s -> %s" % (name, representative))

    print("\nPart 2 — anonymize, aggregate, and ship offsite (§8)\n")
    site_trace = traces["CC-d"]
    anonymizer = Anonymizer(salt="site-secret-salt")
    anonymized = anonymize_trace(site_trace, anonymizer, hash_job_ids=True)
    aggregate = aggregate_trace(anonymized, workload_name="site-D")
    payload = aggregate.to_json()
    print("  on-site: anonymized %d jobs; aggregate payload is %.1f KB of JSON"
          % (len(anonymized), len(payload) / 1024.0))

    received = AggregatedMetrics.from_json(payload)
    print("  offsite: received workload %r with %d jobs, %.1f TB moved"
          % (received.workload, received.n_jobs, received.bytes_moved / 1024 ** 4))
    print("  offsite: median input size estimate %.0f MB, hourly peak-to-median %.0f:1"
          % (received.median_size("input_bytes") / 1024 ** 2,
             received.peak_to_median_task_seconds()))
    print("  offsite: top job-name first words: %s"
          % ", ".join(sorted(received.first_word_counts,
                             key=received.first_word_counts.get, reverse=True)[:5]))
    print("\n  No per-job records, paths, or raw names left the site; the offsite view")
    print("  is still enough to place the workload on every axis the paper compares.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
