"""Tiered-cluster study: should small interactive jobs get their own tier?

Run with::

    python examples/tiered_cluster_study.py [workload] [n_nodes]

Section 6.2 of the paper observes a small-big job dichotomy (>92% of jobs
touch less than 10 GB) and suggests splitting the cluster into a *performance
tier* for interactive jobs and a *capacity tier* for batch jobs.  This example
quantifies that recommendation on the replay simulator in three setups:

1. a unified FIFO cluster (the original Hadoop default);
2. a unified cluster with the two-pool :class:`CapacityScheduler` (a logical
   split);
3. a physically split performance + capacity cluster.

The numbers to look at are the mean wait time and median completion time of
the small jobs — the interactive latency the paper cares about.
"""

from __future__ import annotations

import sys

from repro.simulator import (
    CapacityScheduler,
    ClusterConfig,
    TieredClusterConfig,
    TieredReplayer,
    WorkloadReplayer,
)
from repro.traces import load_workload
from repro.units import GB

SMALL_JOB_THRESHOLD = 10 * GB
MAX_JOBS = 1500


def small_job_stats(metrics, threshold=SMALL_JOB_THRESHOLD):
    waits = [o.wait_time_s for o in metrics.outcomes
             if o.total_bytes <= threshold and o.start_time_s is not None]
    completions = [o.completion_time_s for o in metrics.outcomes
                   if o.total_bytes <= threshold and o.completion_time_s is not None]
    mean_wait = sum(waits) / len(waits) if waits else 0.0
    completions.sort()
    median_completion = completions[len(completions) // 2] if completions else 0.0
    return mean_wait, median_completion


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "CC-c"
    n_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    print("Generating %s and replaying the first %d jobs on %d nodes ...\n"
          % (workload, MAX_JOBS, n_nodes))
    trace = load_workload(workload, seed=7, scale=0.2)

    # 1. Unified FIFO cluster.
    fifo = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=n_nodes),
                            max_simulated_jobs=MAX_JOBS).replay(trace)
    fifo_wait, fifo_completion = small_job_stats(fifo)

    # 2. Unified cluster, two-pool capacity scheduler (logical split).
    config = ClusterConfig(n_nodes=n_nodes)
    capacity = WorkloadReplayer(
        cluster_config=config,
        scheduler=CapacityScheduler(config.total_map_slots, config.total_reduce_slots,
                                    interactive_share=0.4,
                                    small_job_threshold_bytes=SMALL_JOB_THRESHOLD),
        max_simulated_jobs=MAX_JOBS).replay(trace)
    cap_wait, cap_completion = small_job_stats(capacity)

    # 3. Physical performance/capacity split with the same total node count.
    tiered_config = TieredClusterConfig(
        performance=ClusterConfig(n_nodes=max(1, int(n_nodes * 0.4))),
        capacity=ClusterConfig(n_nodes=max(1, n_nodes - int(n_nodes * 0.4))),
        small_job_threshold_bytes=SMALL_JOB_THRESHOLD)
    tiered = TieredReplayer(tiered_config, max_simulated_jobs=MAX_JOBS).replay(trace)
    tier_wait = tiered.small_job_mean_wait()
    tier_completion = tiered.small_job_median_completion() if tiered.performance else 0.0

    print("%-38s %18s %26s" % ("setup", "small-job mean wait", "small-job median completion"))
    for label, wait, completion in (
        ("unified FIFO", fifo_wait, fifo_completion),
        ("unified + capacity scheduler", cap_wait, cap_completion),
        ("physical performance/capacity split", tier_wait, tier_completion),
    ):
        print("%-38s %15.1f s %23.1f s" % (label, wait, completion))

    print("\nPaper §6.2: \"poor management of a single large job potentially impacts")
    print("performance for a large number of small jobs\" — both the logical and the")
    print("physical split isolate the interactive jobs from that interference.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
