"""Interactive-query benchmark: secondary indexes vs. the scan path.

Run directly (not collected by pytest — the full workload is deliberately
large)::

    PYTHONPATH=src python benchmarks/bench_query.py            # 1M jobs
    PYTHONPATH=src python benchmarks/bench_query.py --smoke    # CI: tiny, equality only

Measures the interactive query classes the planner exists for, on a v3 store
of ``--jobs`` synthetic jobs (long-tailed sizes, a ~2000-name dictionary
column, submit-time-clustered phase labels):

1. **point_numeric**  — exact-value lookup on ``input_bytes`` (index-probe);
2. **point_string**   — exact count of one dict-encoded ``name`` value,
   answered from the inverted index's postings alone (index-count);
3. **top_k**          — 100 largest ``submit_time_s`` rows (index-topk);
4. **limit_clustered**— LIMIT 100 on a clustered phase label: early
   termination must touch < 10% of the chunks;
5. **range_agg**      — a wide-range sum, honest about the planner *keeping*
   the scan when the index proves nearly every chunk matches.

Every lane runs twice — through the planner and with the planner disabled
(the zone-map scan path) — and the results must be **bit-identical**.  The
full-size acceptance bars: point lookup and top-k >= 20x faster via the
index, the LIMIT lane touching < 10% of chunks.  ``--output`` (default
``BENCH_query.json`` at the repo root) records everything; ``--smoke`` runs
a small store and enforces only result equality.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore, Query, build_indexes, execute
from repro.traces import Job, Trace

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_query.json")

POINT_SPEEDUP_TARGET = 20.0
TOPK_SPEEDUP_TARGET = 20.0
LIMIT_CHUNK_FRACTION_TARGET = 0.10


def synthetic_jobs(n_jobs: int, seed: int = 2012):
    """Paper-like long-tailed jobs with indexable string structure."""
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 30 * 86400, size=n_jobs))
    duration = rng.lognormal(4.0, 1.8, size=n_jobs)
    input_b = rng.lognormal(17.0, 4.0, size=n_jobs)
    map_only = rng.random(n_jobs) < 0.35
    shuffle_b = np.where(map_only, 0.0, rng.lognormal(15.0, 4.0, size=n_jobs))
    output_b = rng.lognormal(14.0, 4.0, size=n_jobs)
    map_s = rng.lognormal(5.0, 1.5, size=n_jobs)
    reduce_s = np.where(map_only, 0.0, rng.lognormal(4.0, 1.5, size=n_jobs))
    frameworks = np.array(["hive", "pig", "oozie", "native"])[
        rng.integers(0, 4, size=n_jobs)]
    # recurring job names (~2000 distinct at 1M jobs, scaled down with the
    # trace so the first chunk stays under the v3 dictionary threshold and
    # the column is dict-encoded — hence inverted-indexable — at every size)
    n_names = max(16, min(2000, n_jobs // 50))
    names = rng.integers(0, n_names, size=n_jobs)
    # phase labels clustered in submit-time order: runs of ~20k consecutive
    # rows share one label, so each phase lives in a handful of chunks
    phase_rows = max(1, n_jobs // 50)
    jobs = []
    append = jobs.append
    for i in range(n_jobs):
        append(Job(
            job_id="bench_%07d" % i,
            submit_time_s=float(submit[i]),
            duration_s=float(duration[i]),
            input_bytes=float(input_b[i]),
            shuffle_bytes=float(shuffle_b[i]),
            output_bytes=float(output_b[i]),
            map_task_seconds=float(map_s[i]),
            reduce_task_seconds=float(reduce_s[i]),
            framework=str(frameworks[i]),
            name="q%04d" % names[i],
            workload="phase%04d" % (i // phase_rows),
        ))
    return jobs


def timed(fn, repeat=3):
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def results_identical(left, right):
    """Bit-identical comparison across access paths (no tolerance)."""
    if left.aggregates is not None or right.aggregates is not None:
        return left.aggregates == right.aggregates
    if left.groups is not None or right.groups is not None:
        return left.groups == right.groups
    return left.row_dicts() == right.row_dicts()


def run_benchmark(n_jobs: int, chunk_rows: int, output: str, smoke: bool,
                  keep_store: str = "") -> int:
    mode = "smoke" if smoke else "full"
    print("== query benchmark (%s): %d jobs, chunk_rows=%d ==" % (
        mode, n_jobs, chunk_rows))
    start = time.perf_counter()
    trace = Trace(synthetic_jobs(n_jobs), name="bench-query")
    print("generated job list in %.1f s" % (time.perf_counter() - start))

    store_dir = keep_store or tempfile.mkdtemp(prefix="bench_query_")
    write_s, store = timed(lambda: ChunkedTraceStore.write(
        os.path.join(store_dir, "store"), trace, chunk_rows=chunk_rows,
        format_version=3), repeat=1)
    print("wrote v3 store (%d chunks) in %.2f s" % (store.n_chunks, write_s))

    build_s, indexes = timed(lambda: build_indexes(store), repeat=1)
    indexes.save()
    index_bytes = int(sum(indexes.sizes().values()))
    store = ChunkedTraceStore(store.directory)
    print("built index sidecar (%.1f MB) in %.2f s\n"
          % (index_bytes / 1e6, build_s))

    point_value = trace.jobs[n_jobs // 3].input_bytes
    point_name = trace.jobs[n_jobs // 2].name
    limit_phase = trace.jobs[(n_jobs * 2) // 5].workload
    range_cut = trace.jobs[n_jobs // 10].submit_time_s

    lanes_spec = [
        ("point_numeric",
         Query().filter("input_bytes", "==", point_value)
                .project(["job_id", "input_bytes"])),
        ("point_string",
         Query().filter("name", "==", point_name).count()),
        ("top_k",
         Query().top("submit_time_s", 100)
                .project(["job_id", "submit_time_s"])),
        ("limit_clustered",
         Query().filter("workload", "==", limit_phase).limit(100)
                .project(["job_id", "workload"])),
        ("range_agg",
         Query().filter("submit_time_s", ">", range_cut)
                .aggregate(n=("count", "input_bytes"),
                           total=("sum", "input_bytes"))),
    ]

    failures = []
    lanes = {}
    repeat = 1 if smoke else 3
    for name, query in lanes_spec:
        index_s, via_index = timed(lambda q=query: execute(store, q),
                                   repeat=repeat)
        scan_s, via_scan = timed(
            lambda q=query: execute(store, q, use_planner=False),
            repeat=repeat)
        identical = results_identical(via_index, via_scan)
        if not identical:
            failures.append("%s: planner result differs from scan" % name)
        plan = via_index.plan
        lanes[name] = {
            "index_s": index_s,
            "scan_s": scan_s,
            "speedup": scan_s / index_s if index_s else float("inf"),
            "access_path": plan.access_path,
            "used_index": plan.used_index,
            "chunks_touched": via_index.chunks_scanned,
            "chunks_total": store.n_chunks,
            "rows_scanned": via_index.rows_scanned,
            "bit_identical": identical,
        }
        print("%-16s %-12s %9.4fs vs %9.4fs scan  (%6.1fx, %d/%d chunks, %s)"
              % (name, plan.access_path, index_s, scan_s,
                 lanes[name]["speedup"], via_index.chunks_scanned,
                 store.n_chunks,
                 "identical" if identical else "MISMATCH"))

    limit_fraction = (lanes["limit_clustered"]["chunks_touched"]
                      / float(store.n_chunks))
    bars = {
        "point_speedup": lanes["point_numeric"]["speedup"],
        "point_speedup_target": POINT_SPEEDUP_TARGET,
        "topk_speedup": lanes["top_k"]["speedup"],
        "topk_speedup_target": TOPK_SPEEDUP_TARGET,
        "limit_chunk_fraction": limit_fraction,
        "limit_chunk_fraction_target": LIMIT_CHUNK_FRACTION_TARGET,
    }
    if not smoke:
        if bars["point_speedup"] < POINT_SPEEDUP_TARGET:
            failures.append("point lookup speedup %.1fx < %.0fx target"
                            % (bars["point_speedup"], POINT_SPEEDUP_TARGET))
        if bars["topk_speedup"] < TOPK_SPEEDUP_TARGET:
            failures.append("top-k speedup %.1fx < %.0fx target"
                            % (bars["topk_speedup"], TOPK_SPEEDUP_TARGET))
        if limit_fraction >= LIMIT_CHUNK_FRACTION_TARGET:
            failures.append("LIMIT lane touched %.0f%% of chunks (target < %.0f%%)"
                            % (100 * limit_fraction,
                               100 * LIMIT_CHUNK_FRACTION_TARGET))

    payload = {
        "benchmark": "query",
        "mode": mode,
        "n_jobs": n_jobs,
        "chunk_rows": chunk_rows,
        "n_chunks": store.n_chunks,
        "index_build_s": build_s,
        "index_bytes": index_bytes,
        "lanes": lanes,
        "bars": bars,
        "all_lanes_bit_identical": all(l["bit_identical"]
                                       for l in lanes.values()),
        "failures": failures,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("\nwrote %s" % output)

    if not keep_store:
        shutil.rmtree(store_dir, ignore_errors=True)
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print("OK: all lanes bit-identical%s"
          % ("" if smoke else "; speedup and chunk-fraction bars met"))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="synthetic trace size (default 1M)")
    parser.add_argument("--chunk-rows", type=int, default=8192,
                        help="rows per chunk (default 8192: ~123 chunks at 1M)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the JSON report here "
                             "(default: BENCH_query.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 20k jobs, 1k-row chunks, result "
                             "equality only (no speedup bars)")
    parser.add_argument("--keep-store", default="",
                        help="write the store under this directory and keep it")
    args = parser.parse_args(argv)
    n_jobs = 20_000 if args.smoke else args.jobs
    chunk_rows = 1024 if args.smoke else args.chunk_rows
    return run_benchmark(n_jobs, chunk_rows, args.output, args.smoke,
                         keep_store=args.keep_store)


if __name__ == "__main__":
    sys.exit(main())
