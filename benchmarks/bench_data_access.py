"""Benchmarks for Figures 1-6: per-job data sizes and file-access patterns."""

from __future__ import annotations

import pytest

from repro.bench import figure1, figure2, figure3, figure4, figure5, figure6


def test_bench_figure1(benchmark, paper_traces):
    """Figure 1: per-job input/shuffle/output size CDFs for every workload."""
    result = benchmark(figure1, paper_traces)
    assert len(result.rows) == len(paper_traces)
    # Shape check: median sizes differ by several orders of magnitude across
    # workloads (paper: 6 / 8 / 4 orders for input / shuffle / output).
    spread_notes = [note for note in result.notes if "orders of magnitude" in note]
    input_spread = float(spread_notes[0].split("spreads ")[1].split(" orders")[0])
    assert input_spread >= 3.0


def test_bench_figure2(benchmark, access_traces):
    """Figure 2: file access frequency vs rank follows a Zipf-like line."""
    result = benchmark(figure2, access_traces)
    slopes = [float(row[4]) for row in result.rows if row[4] != "-"]
    assert slopes, "no fitted slopes"
    # Shape check: every fitted slope sits in a band around the paper's ~5/6.
    assert all(0.4 < slope < 1.4 for slope in slopes)


def test_bench_figure3(benchmark, access_traces):
    """Figure 3: jobs vs input file size and stored bytes vs input file size."""
    result = benchmark(figure3, access_traces)
    for row in result.rows:
        jobs_small = float(row[1].rstrip("%"))
        bytes_small = float(row[2].rstrip("%"))
        eighty_x = float(row[3])
        # Shape checks: the files most jobs access hold a far smaller share of
        # stored bytes, and 80% of accesses go to well under 20% of the bytes
        # (paper: an 80-1 to 80-8 rule).
        assert bytes_small <= jobs_small
        assert eighty_x < 20.0


def test_bench_figure4(benchmark, access_traces):
    """Figure 4: same as Figure 3 for output files."""
    output_traces = {
        name: trace for name, trace in access_traces.items()
        if any(job.output_path is not None for job in trace.jobs[:100])
    }
    result = benchmark(figure4, output_traces)
    assert len(result.rows) == len(output_traces)


def test_bench_figure5(benchmark, access_traces):
    """Figure 5: data re-access interval CDFs."""
    result = benchmark(figure5, access_traces)
    fractions = [float(row[1].rstrip("%")) for row in result.rows]
    # Shape check (paper: 75% of re-accesses within six hours): the bulk of
    # re-accesses is hours-scale for every workload, and most workloads clear
    # the paper's 75% mark.
    assert all(fraction > 40.0 for fraction in fractions)
    assert sum(fraction > 70.0 for fraction in fractions) >= len(fractions) // 2


def test_bench_figure6(benchmark, access_traces):
    """Figure 6: fraction of jobs re-accessing pre-existing data."""
    result = benchmark(figure6, access_traces)
    either = {row[0]: float(row[3].rstrip("%")) for row in result.rows}
    # Shape check (paper: up to 78% re-access for CC-c/d/e, lower for others).
    assert max(either.values()) > 60.0
    assert all(value <= 95.0 for value in either.values())
