"""Throughput benchmarks for the substrates themselves.

These are not paper figures; they track the cost of the two expensive building
blocks (trace generation and replay) so regressions in the substrates are
visible next to the experiment benchmarks.
"""

from __future__ import annotations

import pytest

from repro.simulator import ClusterConfig, FairScheduler, WorkloadReplayer
from repro.traces import generate_trace, get_spec


def test_bench_trace_generation(benchmark):
    """Generate a 0.1-scale CC-b workload (~2.3k jobs) from its spec."""
    spec = get_spec("CC-b")
    trace = benchmark(generate_trace, spec, 7, 0.1)
    assert len(trace) == sum(spec.scaled_counts(0.1))


def test_bench_replay_throughput(benchmark, cc_e_trace):
    """Replay 2000 CC-e jobs under the fair scheduler on a 100-node cluster."""

    def run():
        replayer = WorkloadReplayer(
            cluster_config=ClusterConfig(n_nodes=100),
            scheduler=FairScheduler(),
            max_simulated_jobs=2000,
        )
        return replayer.replay(cc_e_trace)

    metrics = benchmark.pedantic(run, iterations=1, rounds=1)
    assert metrics.finished_jobs == 2000
