"""Columnar engine micro-benchmark: Job-list path vs. columnar/chunked paths.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 1000000

The benchmark measures the analytical hot paths the paper's characterization
pipeline leans on, on a synthetic trace of ``--jobs`` jobs:

1. **table1**   — bytes-moved + total-task-seconds reduction (Table 1);
2. **filtered** — count/sum/mean over jobs with input > 1 GB (Figure-1 style
   conditional aggregate);
3. **p99**      — tail percentile of job duration (Figure 8 style).

Each is computed four ways: naive Python loop over the ``Job`` list, in-memory
:class:`ColumnarTrace`, serial scan of the chunked on-disk store, and the
chunk-parallel executor.  The acceptance bar for this subsystem is the
columnar aggregate path being >= 5x faster than the equivalent Job-list
computation at 1M jobs.

A final check runs two subprocesses against the on-disk store: one answering
a filtered aggregate through the streaming scan (peak RSS should stay near
the chunk size), one materializing the whole store in memory — demonstrating
the out-of-core path's bounded footprint.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore, ColumnarTrace, ParallelExecutor, Query, execute
from repro.traces import Job, Trace
from repro.units import GB


# ---------------------------------------------------------------------------
# Synthetic trace
# ---------------------------------------------------------------------------
def synthetic_jobs(n_jobs: int, seed: int = 2012):
    """Generate ``n_jobs`` jobs with paper-like long-tailed size distributions."""
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0, 30 * 86400, size=n_jobs))
    duration = rng.lognormal(4.0, 1.8, size=n_jobs)
    input_b = rng.lognormal(17.0, 4.0, size=n_jobs)
    map_only = rng.random(n_jobs) < 0.35
    shuffle_b = np.where(map_only, 0.0, rng.lognormal(15.0, 4.0, size=n_jobs))
    output_b = rng.lognormal(14.0, 4.0, size=n_jobs)
    map_s = rng.lognormal(5.0, 1.5, size=n_jobs)
    reduce_s = np.where(map_only, 0.0, rng.lognormal(4.0, 1.5, size=n_jobs))
    frameworks = np.array(["hive", "pig", "oozie", "native"])[
        rng.integers(0, 4, size=n_jobs)]
    jobs = []
    append = jobs.append
    for i in range(n_jobs):
        append(Job(
            job_id="bench_%07d" % i,
            submit_time_s=float(submit[i]),
            duration_s=float(duration[i]),
            input_bytes=float(input_b[i]),
            shuffle_bytes=float(shuffle_b[i]),
            output_bytes=float(output_b[i]),
            map_task_seconds=float(map_s[i]),
            reduce_task_seconds=float(reduce_s[i]),
            framework=str(frameworks[i]),
        ))
    return jobs


def timed(fn, repeat=1):
    """Best-of-``repeat`` wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# ---------------------------------------------------------------------------
# The three measured analyses, each in naive and engine form
# ---------------------------------------------------------------------------
def naive_table1(jobs):
    bytes_moved = 0.0
    task_seconds = 0.0
    for job in jobs:
        bytes_moved += job.total_bytes
        task_seconds += job.total_task_seconds
    return bytes_moved, task_seconds


def naive_filtered(jobs, threshold):
    count = 0
    total = 0.0
    duration_sum = 0.0
    for job in jobs:
        if job.input_bytes > threshold:
            count += 1
            total += job.input_bytes
            duration_sum += job.duration_s
    return count, total, (duration_sum / count if count else None)


def naive_p99(jobs):
    return float(np.percentile([job.duration_s for job in jobs], 99))


FILTERED_QUERY = (Query().filter("input_bytes", ">", float(GB))
                  .aggregate(n=("count", "input_bytes"),
                             total=("sum", "input_bytes"),
                             mean_duration=("mean", "duration_s")))
TABLE1_QUERY = Query().aggregate(bytes_moved=("sum", "total_bytes"),
                                 task_seconds=("sum", "total_task_seconds"))
P99_QUERY = Query().aggregate(p99=("p99", "duration_s"))


def run_benchmark(n_jobs: int, chunk_rows: int, processes: int, keep_store: str = ""):
    print("== columnar engine benchmark: %d jobs ==" % n_jobs)
    start = time.perf_counter()
    jobs = synthetic_jobs(n_jobs)
    trace = Trace(jobs, name="bench")
    print("generated job list in %.1f s" % (time.perf_counter() - start))

    convert_s, columnar = timed(lambda: ColumnarTrace.from_trace(trace))
    print("converted to columnar in %.2f s" % convert_s)

    store_dir = keep_store or tempfile.mkdtemp(prefix="bench_engine_")
    write_s, store = timed(lambda: ChunkedTraceStore.write(
        os.path.join(store_dir, "store"), columnar, chunk_rows=chunk_rows))
    disk_mb = store.info()["on_disk_bytes"] / 1e6
    print("wrote chunked store (%d chunks, %.1f MB) in %.2f s\n"
          % (store.n_chunks, disk_mb, write_s))

    rows = []
    speedups = {}

    def record(name, naive_fn, columnar_query, check=None):
        naive_s, naive_value = timed(naive_fn)
        col_s, col_result = timed(lambda: execute(columnar, columnar_query))
        store_s, store_result = timed(lambda: execute(store, columnar_query))
        par_s, par_result = timed(lambda: ParallelExecutor(processes=processes)
                                  .run(store, columnar_query))
        if check:
            check(naive_value, col_result.aggregates)
        _assert_aggs_close(col_result.aggregates, store_result.aggregates)
        _assert_aggs_close(col_result.aggregates, par_result.aggregates)
        speedups[name] = naive_s / col_s
        rows.append((name, naive_s, col_s, store_s, par_s, naive_s / col_s))

    record("table1", lambda: naive_table1(jobs), TABLE1_QUERY,
           check=lambda naive, agg: _assert_close(naive[0], agg["bytes_moved"]))
    record("filtered", lambda: naive_filtered(jobs, float(GB)), FILTERED_QUERY,
           check=lambda naive, agg: _assert_close(naive[1], agg["total"]))
    record("p99", lambda: naive_p99(jobs), P99_QUERY)

    header = "%-10s %12s %12s %12s %12s %10s" % (
        "analysis", "job-list s", "columnar s", "store s", "parallel s", "speedup")
    print(header)
    print("-" * len(header))
    for name, naive_s, col_s, store_s, par_s, speedup in rows:
        print("%-10s %12.4f %12.4f %12.4f %12.4f %9.1fx"
              % (name, naive_s, col_s, store_s, par_s, speedup))

    rss = measure_bounded_memory(os.path.join(store_dir, "store"))
    print("\npeak RSS answering the filtered aggregate from the store: %6.1f MB" % rss["scan"])
    print("peak RSS materializing the whole store in memory:          %6.1f MB" % rss["full"])

    if not keep_store:
        shutil.rmtree(store_dir, ignore_errors=True)

    worst = min(speedups.values())
    print("\nworst columnar-vs-job-list speedup: %.1fx (target >= 5x)" % worst)
    if worst < 5.0:
        print("FAIL: speedup target not met")
        return 1
    print("OK")
    return 0


def _assert_close(a, b, rel=1e-6):
    assert abs(a - b) <= rel * max(abs(a), abs(b)), (a, b)


def _assert_aggs_close(left, right):
    """Aggregates agree across paths (summation order differs per chunking)."""
    assert set(left) == set(right), (left, right)
    for key, value in left.items():
        if isinstance(value, float) and isinstance(right[key], float):
            _assert_close(value, right[key], rel=1e-9)
        else:
            assert value == right[key], (key, value, right[key])


# ---------------------------------------------------------------------------
# Bounded-memory demonstration (fresh subprocesses for clean RSS numbers)
# ---------------------------------------------------------------------------
# Peak RSS via /proc VmHWM: unlike getrusage's ru_maxrss, it resets at exec,
# so the child's number is not polluted by this (large) parent's footprint.
_RSS_HELPER = """
import json, resource

def peak_rss_mb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
"""

_SCAN_SNIPPET = _RSS_HELPER + """
import sys
from repro.engine import ChunkedTraceStore, Query, execute
store = ChunkedTraceStore(sys.argv[1])
query = (Query().filter("input_bytes", ">", 1e9)
         .aggregate(n=("count", "input_bytes"), s=("sum", "input_bytes")))
result = execute(store, query)
print(json.dumps({"rss_mb": peak_rss_mb(), "n": result.aggregates["n"]}))
"""

_FULL_SNIPPET = _RSS_HELPER + """
import sys
from repro.engine import ChunkedTraceStore
columnar = ChunkedTraceStore(sys.argv[1]).load_columnar()
print(json.dumps({"rss_mb": peak_rss_mb(), "n": len(columnar)}))
"""


def measure_bounded_memory(store_path: str):
    """Peak RSS of a streaming scan vs. a full in-memory materialization."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    results = {}
    for key, snippet in (("scan", _SCAN_SNIPPET), ("full", _FULL_SNIPPET)):
        output = subprocess.run([sys.executable, "-c", snippet, store_path],
                                capture_output=True, text=True, env=env, check=True)
        results[key] = json.loads(output.stdout)["rss_mb"]
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="synthetic trace size (default 1M)")
    parser.add_argument("--chunk-rows", type=int, default=65536)
    parser.add_argument("--processes", type=int, default=None,
                        help="workers for the parallel pass (default: cpu count)")
    parser.add_argument("--keep-store", default="",
                        help="write the store under this directory and keep it")
    args = parser.parse_args(argv)
    return run_benchmark(args.jobs, args.chunk_rows, args.processes or None,
                         keep_store=args.keep_store)


if __name__ == "__main__":
    sys.exit(main())
