"""Benchmarks for Table 1 (trace summaries) and Table 2 (k-means job types)."""

from __future__ import annotations

import pytest

from repro.bench import table1, table2
from benchmarks.conftest import BENCH_SCALES


def test_bench_table1(benchmark, paper_traces):
    """Table 1: summarize every workload trace."""
    result = benchmark(table1, paper_traces, BENCH_SCALES)
    assert len(result.rows) == len(paper_traces)
    # Shape check: the two Facebook workloads dominate the job counts even at
    # reduced scale factors relative to the Cloudera clusters of similar size.
    jobs = {row[0]: int(row[3]) for row in result.rows}
    assert jobs["FB-2009"] > jobs["CC-a"]


def test_bench_table2(benchmark, paper_traces):
    """Table 2: cluster jobs into types for every workload (bounded job counts)."""
    result = benchmark.pedantic(
        table2, args=(paper_traces,),
        kwargs={"max_k": 8, "seed": 0, "max_jobs_per_workload": 4000},
        iterations=1, rounds=1,
    )
    assert len(result.rows) >= len(paper_traces)
    # Shape check (paper: small jobs form >92% of every workload — allow some
    # slack for the clustering being run on a bounded subsample and for the
    # labelling heuristic splitting borderline clusters).
    percentages = [float(note.split("small-job fraction ")[1].split("%")[0])
                   for note in result.notes]
    assert all(percentage > 70.0 for percentage in percentages)
    assert sum(percentage > 90.0 for percentage in percentages) >= len(percentages) // 2
