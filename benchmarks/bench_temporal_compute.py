"""Benchmarks for Figures 7-10: temporal behaviour and compute patterns."""

from __future__ import annotations

import pytest

from repro.bench import figure7, figure8, figure9, figure10


def test_bench_figure7(benchmark, paper_traces):
    """Figure 7: weekly time series of submissions, I/O, task-time, utilization.

    The utilization column requires replaying a week on the simulator, so the
    benchmark bounds the number of simulated jobs per workload.
    """
    result = benchmark.pedantic(
        figure7, args=(paper_traces,),
        kwargs={"simulate_utilization": True, "max_simulated_jobs": 1500},
        iterations=1, rounds=1,
    )
    assert len(result.rows) == len(paper_traces)
    # Every workload contributes the three submission-side series.
    for name in paper_traces:
        assert "%s/jobs_per_hour" % name in result.series
        assert "%s/task_seconds_per_hour" % name in result.series


def test_bench_figure8(benchmark, paper_traces):
    """Figure 8: burstiness (percentile-to-median) with sine references."""
    result = benchmark(figure8, paper_traces)
    ratios = {row[0]: float(row[1].split(":")[0]) for row in result.rows}
    # Shape checks: every workload is far burstier than the sine references,
    # and the 2010 Facebook workload is less bursty than the 2009 one (the
    # paper attributes this to more organizations multiplexing on the cluster).
    assert ratios["sine + 2"] < 2.0
    workload_ratios = {name: value for name, value in ratios.items() if not name.startswith("sine")}
    assert min(workload_ratios.values()) > 3.0
    assert ratios["FB-2010"] < ratios["FB-2009"]


def test_bench_figure9(benchmark, paper_traces):
    """Figure 9: correlations between hourly jobs / bytes / task-time."""
    result = benchmark(figure9, paper_traces)
    average = result.rows[-1]
    assert average[0] == "average"
    jobs_bytes, jobs_compute, bytes_compute = (float(average[1]), float(average[2]),
                                               float(average[3]))
    # Shape check (paper averages 0.21 / 0.14 / 0.62): bytes vs compute is by
    # far the strongest correlation.
    assert bytes_compute > jobs_bytes
    assert bytes_compute > jobs_compute
    assert bytes_compute > 0.4


def test_bench_figure10(benchmark, named_traces):
    """Figure 10: job-name first-word mix weighted by jobs, bytes and task-time."""
    result = benchmark(figure10, named_traces)
    # Three weighting panels per named workload.
    assert len(result.rows) == 3 * len(named_traces)
    # Shape check: query-like frameworks contribute at least 20% of jobs
    # somewhere and the top words cover the majority of every workload.
    job_rows = [row for row in result.rows if row[1] == "jobs"]
    framework_shares = [float(row[3].rstrip("%")) for row in job_rows]
    assert max(framework_shares) >= 20.0
