"""Benchmarks for the extension ablations: tiering, stragglers, energy,
consolidation, workload evolution, and workload-suite selection.

Each benchmark regenerates one of the measurable versions of the paper's
qualitative recommendations (§5.2, §6.2, §7) and asserts the expected *shape*
of the result — who wins, in which direction, by roughly how much.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    consolidation_ablation,
    energy_ablation,
    evolution_experiment,
    straggler_ablation,
    tiered_cluster_ablation,
    workload_suite_experiment,
)


def test_bench_ablation_tiered(benchmark, cc_c_trace):
    """§6.2: the performance/capacity split must not hurt small-job wait times."""
    result = benchmark.pedantic(
        tiered_cluster_ablation, args=(cc_c_trace,),
        kwargs={"n_nodes": 60, "max_simulated_jobs": 1500},
        iterations=1, rounds=1,
    )
    waits = {row[0].split(",")[0].split(" ")[0]: float(row[1]) for row in result.rows}
    assert waits["tiered"] <= waits["unified"] + 1e-6


def test_bench_ablation_stragglers(benchmark, cc_c_trace):
    """§6.2: speculative execution helps large jobs more than single-task small jobs."""
    result = benchmark.pedantic(
        straggler_ablation, args=(cc_c_trace,),
        kwargs={"probability": 0.1, "slowdown": 5.0, "n_nodes": 60,
                "max_simulated_jobs": 1200, "seed": 0},
        iterations=1, rounds=1,
    )
    rows = {row[0]: row for row in result.rows}
    none_small = float(rows["none"][1].rstrip("x"))
    spec_small = float(rows["speculative execution"][1].rstrip("x"))
    none_large = float(rows["none"][2].rstrip("x"))
    spec_large = float(rows["speculative execution"][2].rstrip("x"))
    # Straggler injection slows jobs down; speculation never makes things worse.
    assert none_small >= 1.0 and none_large >= 1.0
    assert spec_small <= none_small + 0.05
    assert spec_large <= none_large + 0.05
    # Speculation rescues some stragglers only when mitigation is enabled.
    assert int(rows["none"][3]) == 0
    assert int(rows["speculative execution"][3]) > 0


def test_bench_ablation_energy(benchmark, cc_e_trace):
    """§5.2: a bursty, low-median workload leaves headroom for power-down savings."""
    result = benchmark.pedantic(
        energy_ablation, args=(cc_e_trace,),
        kwargs={"n_nodes": 60, "max_simulated_jobs": 3000},
        iterations=1, rounds=1,
    )
    rows = {row[0]: row for row in result.rows}
    always_on_kwh = float(rows["always on"][1])
    power_down_kwh = float(rows["power-down"][1])
    savings = float(rows["power-down"][2].rstrip("%"))
    assert power_down_kwh <= always_on_kwh
    assert savings >= 10.0  # bursty workloads spend most hours far below peak


def test_bench_ablation_consolidation(benchmark, paper_traces):
    """§5.2: multiplexing workloads reduces (but does not remove) burstiness."""
    result = benchmark.pedantic(
        consolidation_ablation, args=(paper_traces,), iterations=1, rounds=1,
    )
    ratios = {row[0]: float(row[1].split(":")[0]) for row in result.rows}
    consolidated = ratios.pop("consolidated")
    assert consolidated <= max(ratios.values())
    assert consolidated > 1.0  # the consolidated workload remains bursty


def test_bench_evolution(benchmark, paper_traces):
    """§4.1: FB input/shuffle medians grow while the output median shrinks."""
    result = benchmark.pedantic(
        evolution_experiment, args=(paper_traces["FB-2009"], paper_traces["FB-2010"]),
        iterations=1, rounds=1,
    )
    shifts = {row[0]: float(row[3]) for row in result.rows}
    assert shifts["input_bytes"] > 0
    assert shifts["shuffle_bytes"] > 0
    assert shifts["output_bytes"] < 0


def test_bench_workload_suite(benchmark, paper_traces):
    """§7: a small suite of representative workloads covers all seven."""
    result = benchmark.pedantic(
        workload_suite_experiment, args=(paper_traces,), kwargs={"suite_size": 3},
        iterations=1, rounds=1,
    )
    assert len(result.rows) == len(paper_traces)
    representatives = {row[1] for row in result.rows}
    assert 1 <= len(representatives) <= 3
    # Every workload is assigned to a representative that is itself a workload.
    assert representatives <= set(paper_traces)
