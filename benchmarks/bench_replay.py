"""Replay engine benchmark: legacy loop vs vectorized engine vs sharding.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_replay.py --jobs 1000000

The benchmark writes a synthetic interactive-heavy trace of ``--jobs`` jobs
straight to a chunked columnar store (the writer consumes a generator, so
this parent process never materializes the job list), then replays it in
fresh subprocesses — one lane per engine path, so peak-RSS numbers are clean:

1. **legacy**          — the pre-vectorization event loop
   (:func:`~repro.simulator.legacy.legacy_replay_jobs`), one closure-backed
   event per task transition; the ground-truth lane and the old cost.
2. **streamed**        — the vectorized :class:`StreamingReplayer`: column-fed
   job preparation, tuple-heap completions grouped per (job, stage, instant),
   and bisect bulk admission under full saturation.
3. **sharded-exact**   — :class:`ShardedReplayer` threading one engine across
   time-window boundaries; must cost about the same as streamed and digest
   identically.
4. **sharded-windowed**— :class:`ShardedReplayer` replaying windows on
   parallel worker processes (the throughput lane; cross-boundary contention
   is approximated, so only conservation laws are checked).
5. **materialized**    — store fully converted to an in-memory ``Trace`` and
   replayed by :class:`WorkloadReplayer` with per-job outcomes retained (the
   peak-RSS yardstick for the streamed lane).

Lanes 1/2/3/5 must produce **bit-identical** metric digests
(:meth:`SimulationMetrics.digest`: counts, float sums in fold order,
extremes, sketch bins, hourly utilization bins).  At full scale the streamed
lane must beat the committed pre-vectorization baseline (160.1 s for 1M
jobs) by at least 3x, and the streamed peak RSS must stay at most one third
of the materialized peak RSS.

``--output`` (default: ``BENCH_replay.json`` at the repo root) records the
measured numbers as JSON so the perf trajectory is tracked across PRs;
``--smoke`` runs a small trace with digest equality (including the sharded
lane) enforced but the RSS and speed bars only reported.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore
from repro.traces import Job

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_replay.json")

# Committed wall-clock of the pre-vectorization streamed lane at 1M jobs
# (BENCH_replay.json as of PR 6); the vectorized engine's acceptance bar is
# at least a 3x win over this on a full-scale run.
BASELINE_WALL_S = 160.1
SPEEDUP_BAR = 3.0
DIGEST_LANES = ("legacy", "streamed", "sharded-exact", "materialized")


# ---------------------------------------------------------------------------
# Synthetic trace: interactive-heavy, like the paper's production workloads
# ---------------------------------------------------------------------------
def synthetic_replay_jobs(n_jobs: int, horizon_days: float = 30.0, seed: int = 2012):
    """Yield ``n_jobs`` jobs lazily, sorted by submission time.

    The task-time mix is 80% interactive (single-task), 19% medium and 1%
    long batch jobs, matching the small-jobs-dominate observation (§6.2)
    while keeping the discrete-event count tractable at millions of jobs.
    """
    rng = np.random.default_rng(seed)
    horizon_s = horizon_days * 86400.0
    gaps = rng.exponential(horizon_s / n_jobs, size=n_jobs)
    submits = np.cumsum(gaps)
    kind = rng.random(n_jobs)
    map_s = np.where(kind < 0.80, rng.uniform(5.0, 45.0, size=n_jobs),
                     np.where(kind < 0.99, rng.uniform(60.0, 600.0, size=n_jobs),
                              rng.uniform(600.0, 5000.0, size=n_jobs)))
    reduce_s = np.where(rng.random(n_jobs) < 0.4, map_s * 0.3, 0.0)
    input_b = rng.lognormal(17.0, 3.0, size=n_jobs)
    output_b = rng.lognormal(14.0, 3.0, size=n_jobs)
    for index in range(n_jobs):
        yield Job(
            job_id="replay_%07d" % index,
            submit_time_s=float(submits[index]),
            duration_s=float(map_s[index] + reduce_s[index]),
            input_bytes=float(input_b[index]),
            shuffle_bytes=float(reduce_s[index] and input_b[index] * 0.3),
            output_bytes=float(output_b[index]),
            map_task_seconds=float(map_s[index]),
            reduce_task_seconds=float(reduce_s[index]),
        )


# ---------------------------------------------------------------------------
# Replay children (fresh subprocesses for clean VmHWM peak-RSS numbers)
# ---------------------------------------------------------------------------
_CHILD_SNIPPET = """
import json, resource, sys, time

def peak_rss_mb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

store_path, lane, shards = sys.argv[1], sys.argv[2], int(sys.argv[3])
from repro.engine import ChunkedTraceStore
from repro.simulator import (ShardedReplayer, StreamingReplayer,
                             WorkloadReplayer, legacy_replay_jobs)

start = time.perf_counter()
if lane == "legacy":
    store = ChunkedTraceStore(store_path)
    metrics = legacy_replay_jobs(StreamingReplayer(), store.iter_jobs())
elif lane == "streamed":
    metrics = StreamingReplayer().replay_store(store_path)
elif lane == "sharded-exact":
    metrics = ShardedReplayer(shards=shards,
                              mode="exact").replay_store(store_path)
elif lane == "sharded-windowed":
    metrics = ShardedReplayer(shards=shards,
                              mode="windowed").replay_store(store_path)
elif lane == "materialized":
    trace = ChunkedTraceStore(store_path).to_trace()
    metrics = WorkloadReplayer().replay(trace)
else:
    raise SystemExit("unknown lane %r" % lane)
wall = time.perf_counter() - start
print(json.dumps({
    "summary": metrics.summary(),
    "digest": metrics.digest(),
    "wall_s": wall,
    "rss_mb": peak_rss_mb(),
}))
"""


def _run_child(store_path: str, lane: str, shards: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SNIPPET, store_path, lane, str(shards)],
        capture_output=True, text=True, env=env)
    if output.returncode != 0:
        raise RuntimeError("replay child %r failed:\n%s" % (lane, output.stderr))
    return json.loads(output.stdout)


# ---------------------------------------------------------------------------
def run_benchmark(n_jobs: int, chunk_rows: int, shards: int,
                  keep_store: str = "", enforce_bars: bool = True,
                  output: str = DEFAULT_OUTPUT) -> int:
    print("== replay engine benchmark: %d jobs, %d shards ==" % (n_jobs, shards))
    store_dir = keep_store or tempfile.mkdtemp(prefix="bench_replay_")
    store_path = os.path.join(store_dir, "store")

    start = time.perf_counter()
    store = ChunkedTraceStore.write(store_path, synthetic_replay_jobs(n_jobs),
                                    chunk_rows=chunk_rows, name="bench-replay")
    disk_mb = store.info()["on_disk_bytes"] / 1e6
    print("wrote chunked store (%d chunks, %.1f MB) in %.1f s\n"
          % (store.n_chunks, disk_mb, time.perf_counter() - start))

    lanes = ("legacy", "streamed", "sharded-exact", "sharded-windowed",
             "materialized")
    results = {}
    for lane in lanes:
        print("replaying %s..." % lane)
        results[lane] = _run_child(store_path, lane, shards)

    header = "%-18s %12s %12s" % ("lane", "wall s", "peak RSS MB")
    print("\n" + header)
    print("-" * len(header))
    for lane in lanes:
        print("%-18s %12.1f %12.1f" % (lane, results[lane]["wall_s"],
                                       results[lane]["rss_mb"]))

    failures = []
    reference = results["legacy"]["digest"]
    for lane in DIGEST_LANES[1:]:
        if results[lane]["digest"] != reference:
            keys = [key for key in reference
                    if results[lane]["digest"].get(key) != reference[key]]
            failures.append("digest mismatch legacy vs %s on keys %s"
                            % (lane, keys))
    digests_identical = not failures

    windowed = results["sharded-windowed"]["summary"]
    serial = results["streamed"]["summary"]
    for key in ("jobs", "finished_jobs"):
        if windowed[key] != serial[key]:
            failures.append("windowed lane lost jobs: %s %r != %r"
                            % (key, windowed[key], serial[key]))

    legacy_wall = results["legacy"]["wall_s"]
    streamed_wall = results["streamed"]["wall_s"]
    speedup_measured = legacy_wall / streamed_wall if streamed_wall else float("inf")
    speedup_committed = BASELINE_WALL_S / streamed_wall if streamed_wall else float("inf")
    rss_ratio = (results["streamed"]["rss_mb"] / results["materialized"]["rss_mb"]
                 if results["materialized"]["rss_mb"] else float("inf"))
    print("\nvectorized vs legacy (this run):   %.2fx" % speedup_measured)
    if n_jobs >= 1_000_000:
        print("vectorized vs committed baseline:  %.2fx (bar >= %.1fx)"
              % (speedup_committed, SPEEDUP_BAR))
    print("streamed/materialized peak-RSS ratio: %.3f (target <= 1/3)" % rss_ratio)
    print("digests bit-identical across engines: %s" % digests_identical)

    if enforce_bars:
        if speedup_measured < SPEEDUP_BAR:
            failures.append("vectorized speedup %.2fx below the %.1fx bar "
                            "(legacy %.1f s, streamed %.1f s)"
                            % (speedup_measured, SPEEDUP_BAR, legacy_wall,
                               streamed_wall))
        if n_jobs >= 1_000_000 and speedup_committed < SPEEDUP_BAR:
            failures.append("streamed wall %.1f s misses the committed "
                            "baseline bar (%.1f s / %.1f)"
                            % (streamed_wall, BASELINE_WALL_S, SPEEDUP_BAR))
        if rss_ratio > 1.0 / 3.0:
            failures.append("peak RSS ratio %.3f exceeds 1/3" % rss_ratio)

    if output:
        payload = {
            "benchmark": "replay",
            "n_jobs": n_jobs,
            "chunk_rows": chunk_rows,
            "shards": shards,
            "store_disk_mb": disk_mb,
            "lanes": {lane: {"wall_s": results[lane]["wall_s"],
                             "rss_mb": results[lane]["rss_mb"]}
                      for lane in lanes},
            "speedup_vectorized_vs_legacy": speedup_measured,
            "speedup_vectorized_vs_committed_baseline": speedup_committed,
            "committed_baseline_wall_s": BASELINE_WALL_S,
            "rss_ratio_streamed_vs_materialized": rss_ratio,
            "digests_bit_identical": digests_identical,
            "failures": failures,
        }
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print("wrote results JSON to %s" % output)

    if not keep_store:
        shutil.rmtree(store_dir, ignore_errors=True)

    if failures:
        print("\nFAIL:\n" + "\n".join(failures))
        return 1
    print("OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="synthetic trace size (default 1M)")
    parser.add_argument("--chunk-rows", type=int, default=65536,
                        help="rows per on-disk chunk")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for the sharded lanes")
    parser.add_argument("--keep-store", default="",
                        help="write the store here and keep it")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the measured numbers as JSON here "
                             "(default: BENCH_replay.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 50k jobs, small chunks; digest "
                             "equality (sharded lane included) enforced, "
                             "RSS/speed bars reported only")
    parser.add_argument("--skip-rss-check", action="store_true",
                        help="report but do not enforce the RSS and speedup "
                             "bars (for small --jobs runs where interpreter "
                             "baseline and warmup dominate; digest equality "
                             "is always enforced)")
    args = parser.parse_args(argv)
    n_jobs = 50_000 if args.smoke else args.jobs
    chunk_rows = min(args.chunk_rows, 8192) if args.smoke else args.chunk_rows
    return run_benchmark(n_jobs, chunk_rows, args.shards,
                         keep_store=args.keep_store,
                         enforce_bars=not (args.smoke or args.skip_rss_check),
                         output=args.output)


if __name__ == "__main__":
    sys.exit(main())
