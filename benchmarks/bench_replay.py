"""Streaming replay benchmark: store-streamed vs. materialized, at 1M jobs.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_replay.py --jobs 1000000

The benchmark writes a synthetic interactive-heavy trace of ``--jobs`` jobs
straight to a chunked columnar store (the writer consumes a generator, so
this parent process never materializes the job list), then replays it twice
in fresh subprocesses so peak-RSS numbers are clean:

1. **streamed**     — :class:`StreamingReplayer` pulling jobs chunk by chunk
   from the store with bounded submission look-ahead, metrics kept only as
   mergeable accumulators;
2. **materialized** — the store fully converted to an in-memory job-list
   :class:`Trace` and replayed by the classic :class:`WorkloadReplayer`
   (per-job outcomes and utilization samples retained, as before the
   streaming refactor).

Both children print a metrics digest: the accumulator summary, exact
byte-level SHA-256 hashes of the wait/completion percentile-sketch bins, and
a hash of the hourly utilization column.  The digests must match **exactly**
(the two paths share one event loop, so every float folds in the same
order), and the streamed peak RSS must be at most one third of the
materialized peak RSS — that pair of checks is this subsystem's acceptance
bar.

``--output`` (default: ``BENCH_replay.json`` at the repo root, the same
convention as ``BENCH_characterize.json``) records the measured numbers as
JSON so the perf trajectory is tracked across PRs; ``--smoke`` runs a small
trace with the RSS bar reported but not enforced (metric equality always is).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore
from repro.traces import Job

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_replay.json")


# ---------------------------------------------------------------------------
# Synthetic trace: interactive-heavy, like the paper's production workloads
# ---------------------------------------------------------------------------
def synthetic_replay_jobs(n_jobs: int, horizon_days: float = 30.0, seed: int = 2012):
    """Yield ``n_jobs`` jobs lazily, sorted by submission time.

    The task-time mix is 80% interactive (single-task), 19% medium and 1%
    long batch jobs, matching the small-jobs-dominate observation (§6.2)
    while keeping the discrete-event count tractable at millions of jobs.
    """
    rng = np.random.default_rng(seed)
    horizon_s = horizon_days * 86400.0
    gaps = rng.exponential(horizon_s / n_jobs, size=n_jobs)
    submits = np.cumsum(gaps)
    kind = rng.random(n_jobs)
    map_s = np.where(kind < 0.80, rng.uniform(5.0, 45.0, size=n_jobs),
                     np.where(kind < 0.99, rng.uniform(60.0, 600.0, size=n_jobs),
                              rng.uniform(600.0, 5000.0, size=n_jobs)))
    reduce_s = np.where(rng.random(n_jobs) < 0.4, map_s * 0.3, 0.0)
    input_b = rng.lognormal(17.0, 3.0, size=n_jobs)
    output_b = rng.lognormal(14.0, 3.0, size=n_jobs)
    for index in range(n_jobs):
        yield Job(
            job_id="replay_%07d" % index,
            submit_time_s=float(submits[index]),
            duration_s=float(map_s[index] + reduce_s[index]),
            input_bytes=float(input_b[index]),
            shuffle_bytes=float(reduce_s[index] and input_b[index] * 0.3),
            output_bytes=float(output_b[index]),
            map_task_seconds=float(map_s[index]),
            reduce_task_seconds=float(reduce_s[index]),
        )


# ---------------------------------------------------------------------------
# Replay children (fresh subprocesses for clean VmHWM peak-RSS numbers)
# ---------------------------------------------------------------------------
_RSS_HELPER = """
import hashlib, json, resource, time

def peak_rss_mb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

def sketch_hash(sketch):
    digest = hashlib.sha256()
    digest.update(sketch.counts.tobytes())
    digest.update(str(sketch.zero_count).encode())
    digest.update(str(sketch.n).encode())
    digest.update(repr(sketch.low).encode())
    digest.update(repr(sketch.high).encode())
    return digest.hexdigest()

def digest(metrics, wall_s):
    import numpy as np
    hourly = metrics.hourly_active_slots()
    return {
        "summary": metrics.summary(),
        "wait_sketch": sketch_hash(metrics.wait.sketch),
        "completion_sketch": sketch_hash(metrics.completion.sketch),
        "hourly_hash": hashlib.sha256(hourly.tobytes()).hexdigest(),
        "busy_slot_seconds": repr(metrics.utilization.busy_slot_seconds),
        "wall_s": wall_s,
        "rss_mb": peak_rss_mb(),
    }
"""

_STREAM_SNIPPET = _RSS_HELPER + """
import sys
from repro.simulator import StreamingReplayer
start = time.perf_counter()
metrics = StreamingReplayer().replay_store(sys.argv[1])
print(json.dumps(digest(metrics, time.perf_counter() - start)))
"""

_FULL_SNIPPET = _RSS_HELPER + """
import sys
from repro.engine import ChunkedTraceStore
from repro.simulator import WorkloadReplayer
start = time.perf_counter()
trace = ChunkedTraceStore(sys.argv[1]).to_trace()
metrics = WorkloadReplayer().replay(trace)
print(json.dumps(digest(metrics, time.perf_counter() - start)))
"""


def _run_child(snippet: str, store_path: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run([sys.executable, "-c", snippet, store_path],
                            capture_output=True, text=True, env=env)
    if output.returncode != 0:
        raise RuntimeError("replay child failed:\n%s" % output.stderr)
    return json.loads(output.stdout)


# ---------------------------------------------------------------------------
def run_benchmark(n_jobs: int, chunk_rows: int, keep_store: str = "",
                  check_rss: bool = True, output: str = DEFAULT_OUTPUT) -> int:
    print("== streaming replay benchmark: %d jobs ==" % n_jobs)
    store_dir = keep_store or tempfile.mkdtemp(prefix="bench_replay_")
    store_path = os.path.join(store_dir, "store")

    start = time.perf_counter()
    store = ChunkedTraceStore.write(store_path, synthetic_replay_jobs(n_jobs),
                                    chunk_rows=chunk_rows, name="bench-replay")
    disk_mb = store.info()["on_disk_bytes"] / 1e6
    print("wrote chunked store (%d chunks, %.1f MB) in %.1f s\n"
          % (store.n_chunks, disk_mb, time.perf_counter() - start))

    print("replaying streamed (store -> StreamingReplayer)...")
    streamed = _run_child(_STREAM_SNIPPET, store_path)
    print("replaying materialized (store -> Trace -> WorkloadReplayer)...")
    full = _run_child(_FULL_SNIPPET, store_path)

    header = "%-14s %12s %12s" % ("path", "wall s", "peak RSS MB")
    print("\n" + header)
    print("-" * len(header))
    for name, result in (("streamed", streamed), ("materialized", full)):
        print("%-14s %12.1f %12.1f" % (name, result["wall_s"], result["rss_mb"]))

    failures = []
    for key in ("summary", "wait_sketch", "completion_sketch",
                "hourly_hash", "busy_slot_seconds"):
        if streamed[key] != full[key]:
            failures.append("metrics mismatch on %r:\n  streamed:     %r\n"
                            "  materialized: %r" % (key, streamed[key], full[key]))
    ratio = streamed["rss_mb"] / full["rss_mb"] if full["rss_mb"] else float("inf")
    print("\nstreamed/materialized peak-RSS ratio: %.3f (target <= 1/3)" % ratio)
    print("percentile sketches bit-equal: %s" % (
        streamed["wait_sketch"] == full["wait_sketch"]
        and streamed["completion_sketch"] == full["completion_sketch"]))
    if check_rss and ratio > 1.0 / 3.0:
        failures.append("peak RSS ratio %.3f exceeds 1/3" % ratio)

    if output:
        payload = {
            "benchmark": "replay",
            "n_jobs": n_jobs,
            "chunk_rows": chunk_rows,
            "store_disk_mb": disk_mb,
            "paths": {
                "streamed": {"wall_s": streamed["wall_s"],
                             "rss_mb": streamed["rss_mb"]},
                "materialized": {"wall_s": full["wall_s"],
                                 "rss_mb": full["rss_mb"]},
            },
            "rss_ratio_streamed_vs_materialized": ratio,
            "metrics_bit_identical": not any("mismatch" in failure
                                             for failure in failures),
            "failures": failures,
        }
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print("wrote results JSON to %s" % output)

    if not keep_store:
        shutil.rmtree(store_dir, ignore_errors=True)

    if failures:
        print("\nFAIL:\n" + "\n".join(failures))
        return 1
    print("OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="synthetic trace size (default 1M)")
    parser.add_argument("--chunk-rows", type=int, default=65536,
                        help="rows per on-disk chunk")
    parser.add_argument("--keep-store", default="",
                        help="write the store here and keep it")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the measured numbers as JSON here "
                             "(default: BENCH_replay.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 50k jobs, small chunks, no RSS bar "
                             "(metric equality still enforced)")
    parser.add_argument("--skip-rss-check", action="store_true",
                        help="report but do not enforce the 1/3 peak-RSS bar "
                             "(for small --jobs smokes where the interpreter "
                             "baseline dominates; metric equality is always "
                             "enforced)")
    args = parser.parse_args(argv)
    n_jobs = 50_000 if args.smoke else args.jobs
    chunk_rows = min(args.chunk_rows, 8192) if args.smoke else args.chunk_rows
    return run_benchmark(n_jobs, chunk_rows, keep_store=args.keep_store,
                         check_rss=not (args.smoke or args.skip_rss_check),
                         output=args.output)


if __name__ == "__main__":
    sys.exit(main())
