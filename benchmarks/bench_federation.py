"""Federated multi-store comparison benchmark: the seven-cluster study at scale.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_federation.py --jobs 1000000

The benchmark writes **seven** synthetic clusters shaped after the paper's
§7 roster — five Cloudera customers (``CC-a`` … ``CC-e``) plus the Facebook
deployment as two epochs (``FB@2009``, ``FB@2010``, which also exercises the
§4.1 epoch-drift chain) — each with ``--jobs`` jobs, as format-v3 stores in
one catalog directory.  It then runs the full federated comparison
(:func:`repro.core.federation.compare_catalog`: per-member profile scans →
§7 pairwise distances + representative-suite selection → §4.1 drift chains)
along three lanes:

1. **serial**    — the members profiled one after another in this process;
2. **parallel**  — the same comparison with member scans fanned over
   ``--processes`` worker processes (default: up to 4);
3. **resumed**   — the comparison re-run after appending a tail to one
   member, resuming every member's profile from per-member checkpoints
   (``checkpoint_dir=``) so only the appended chunks are folded.

Enforced (the cross-store equivalence contract, always — even ``--smoke``):

* the serial and parallel reports are **bit-identical** (the parallel path
  runs the identical per-member fold, so every distance, feature, suite pick
  and drift row must match exactly);
* the resumed report is **bit-identical** to a cold rescan of the grown
  catalog.

Enforced unless ``--smoke``/``--skip-speed-check``:

* the parallel federated wall is at least ``--min-parallel-speedup``
  (default 1.6×) faster than the serial walk — only when ``--processes`` is
  at least 2 (on a single-core machine the executor degrades to the serial
  walk, so there is nothing to measure, only equivalence to enforce);
* the resumed comparison finishes below ``--max-resume-ratio`` (default
  0.5×) of the cold-rescan wall after appending ``5%`` to one member.

``--output`` (default ``BENCH_federation.json`` at the repo root, tracked
across PRs) records every wall clock, the member roster, the suite the
greedy k-center picked, and the failure list — also uploaded as a CI
artifact by the ``bench-federation-smoke`` job.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.federation import compare_catalog
from repro.engine import ChunkedTraceStore, ParallelExecutor
from repro.engine.catalog import StoreCatalog
from repro.traces import Job

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_federation.json")

#: The §7 roster: (member name, seed, per-cluster shape).  FB appears as two
#: epochs of one cluster so the drift chain has a consecutive pair; the 2010
#: epoch shifts the byte distributions up and adds Hive-style names, echoing
#: the §4.1 observations.
CLUSTER_ROSTER = [
    ("CC-a", 101, dict(input_mu=14.0, input_sigma=2.5, reduce_p=0.25,
                       query_p=0.30, horizon_days=20.0)),
    ("CC-b", 102, dict(input_mu=16.0, input_sigma=3.2, reduce_p=0.45,
                       query_p=0.55, horizon_days=30.0)),
    ("CC-c", 103, dict(input_mu=17.5, input_sigma=3.0, reduce_p=0.35,
                       query_p=0.40, horizon_days=30.0)),
    ("CC-d", 104, dict(input_mu=15.0, input_sigma=2.2, reduce_p=0.30,
                       query_p=0.70, horizon_days=25.0)),
    ("CC-e", 105, dict(input_mu=18.0, input_sigma=3.5, reduce_p=0.50,
                       query_p=0.35, horizon_days=30.0)),
    ("FB@2009", 109, dict(input_mu=15.5, input_sigma=2.8, reduce_p=0.35,
                          query_p=0.10, horizon_days=30.0)),
    ("FB@2010", 110, dict(input_mu=16.5, input_sigma=3.1, reduce_p=0.40,
                          query_p=0.60, horizon_days=30.0)),
]


def synthetic_cluster_jobs(n_jobs: int, seed: int, input_mu: float,
                           input_sigma: float, reduce_p: float, query_p: float,
                           horizon_days: float):
    """Yield one cluster's jobs lazily, sorted by submission time.

    The shape knobs steer exactly the quantities the §7 features read: byte
    distributions (``input_mu``/``input_sigma``), the map-only fraction
    (``reduce_p``), the framework share (``query_p`` drives the query-like
    name mix), and burstiness/diurnality (a daily sinusoid on the arrival
    rate over ``horizon_days``).
    """
    rng = np.random.default_rng(seed)
    horizon_s = horizon_days * 86400.0
    # Diurnal arrivals: thin a uniform candidate stream with a daily sinusoid.
    submits = np.sort(rng.uniform(0.0, horizon_s, size=n_jobs))
    phase = 2.0 * np.pi * (submits % 86400.0) / 86400.0
    keep_p = 0.55 + 0.45 * np.sin(phase)
    jitter = rng.random(n_jobs)
    # Jobs "rejected" by the sinusoid are re-timed into the next burst hour
    # rather than dropped, keeping the job count exact.
    submits = np.where(jitter < keep_p, submits,
                       (submits // 86400.0) * 86400.0
                       + rng.uniform(30000.0, 40000.0, size=n_jobs))
    submits = np.sort(submits)
    kind = rng.random(n_jobs)
    map_s = np.where(kind < 0.80, rng.uniform(5.0, 45.0, size=n_jobs),
                     np.where(kind < 0.99, rng.uniform(60.0, 600.0, size=n_jobs),
                              rng.uniform(600.0, 5000.0, size=n_jobs)))
    has_reduce = rng.random(n_jobs) < reduce_p
    reduce_s = np.where(has_reduce, map_s * 0.3, 0.0)
    input_b = rng.lognormal(input_mu, input_sigma, size=n_jobs)
    shuffle_b = np.where(has_reduce, input_b * 0.3, 0.0)
    output_b = rng.lognormal(input_mu - 3.0, input_sigma, size=n_jobs)
    query_words = np.array(["insert", "select", "from", "piglatin"])
    other_words = np.array(["oozie", "ad", "distcp", "data"])
    is_query = rng.random(n_jobs) < query_p
    query_ids = rng.integers(0, query_words.size, size=n_jobs)
    other_ids = rng.integers(0, other_words.size, size=n_jobs)
    for index in range(n_jobs):
        word = (query_words[query_ids[index]] if is_query[index]
                else other_words[other_ids[index]])
        yield Job(
            job_id="fed_%07d" % index,
            submit_time_s=float(submits[index]),
            duration_s=float(map_s[index] + reduce_s[index]),
            input_bytes=float(input_b[index]),
            shuffle_bytes=float(shuffle_b[index]),
            output_bytes=float(output_b[index]),
            map_task_seconds=float(map_s[index]),
            reduce_task_seconds=float(reduce_s[index]),
            name="%s job %d" % (word, index % 97),
        )


def _report_digest(report) -> str:
    """Canonical JSON of a report: the unit of bit-identity checks."""
    return json.dumps(report.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def _compare(catalog_dir: str, processes: int = 0, checkpoint_dir: str = "",
             suite_size: int = 3):
    executor = ParallelExecutor(processes=processes) if processes else None
    start = time.perf_counter()
    report = compare_catalog(StoreCatalog(catalog_dir), suite_size=suite_size,
                             executor=executor,
                             checkpoint_dir=checkpoint_dir or None)
    return report, time.perf_counter() - start


def run_benchmark(n_jobs: int, chunk_rows: int, processes: int,
                  keep_store: str = "", output: str = DEFAULT_OUTPUT,
                  check_speed: bool = True, min_parallel_speedup: float = 1.6,
                  max_resume_ratio: float = 0.5,
                  append_fraction: float = 0.05) -> int:
    print("== federated comparison benchmark: %d members x %d jobs =="
          % (len(CLUSTER_ROSTER), n_jobs))
    work_dir = keep_store or tempfile.mkdtemp(prefix="bench_federation_")
    catalog_dir = os.path.join(work_dir, "catalog")
    os.makedirs(catalog_dir, exist_ok=True)
    failures = []

    total_mb = 0.0
    build_start = time.perf_counter()
    for name, seed, shape in CLUSTER_ROSTER:
        store_path = os.path.join(catalog_dir, name)
        if os.path.isdir(store_path):
            store = ChunkedTraceStore(store_path)
        else:
            start = time.perf_counter()
            store = ChunkedTraceStore.write(
                store_path, synthetic_cluster_jobs(n_jobs, seed, **shape),
                chunk_rows=chunk_rows, name=name.split("@")[0],
                format_version=3)
            print("wrote %-8s (%3d chunks, %7.1f MB) in %6.1f s"
                  % (name, store.n_chunks,
                     store.info()["on_disk_bytes"] / 1e6,
                     time.perf_counter() - start))
        total_mb += store.info()["on_disk_bytes"] / 1e6
    build_s = time.perf_counter() - build_start
    print("catalog: %d stores, %.1f MB on disk (built in %.1f s)\n"
          % (len(CLUSTER_ROSTER), total_mb, build_s))

    print("federated comparison, serial member walk...")
    serial_report, serial_s = _compare(catalog_dir)
    print("federated comparison, %d worker processes..." % processes)
    parallel_report, parallel_s = _compare(catalog_dir, processes=processes)

    serial_digest = _report_digest(serial_report)
    if _report_digest(parallel_report) != serial_digest:
        failures.append("parallel federated report is not bit-identical to "
                        "the serial report")

    # Resumed lane: checkpoint every member, append a tail to one, re-compare.
    checkpoint_dir = os.path.join(work_dir, "checkpoints")
    print("federated comparison, writing per-member checkpoints...")
    _, checkpoint_s = _compare(catalog_dir, checkpoint_dir=checkpoint_dir)
    appended = int(n_jobs * append_fraction)
    target_name, target_seed, target_shape = CLUSTER_ROSTER[-1]
    grown = ChunkedTraceStore.open_append(
        os.path.join(catalog_dir, target_name)).append(
        itertools.islice(
            synthetic_cluster_jobs(n_jobs + appended, target_seed + 1,
                                   **target_shape), n_jobs, None))
    print("appended %d jobs to %s (%d chunks now)"
          % (appended, target_name, grown.n_chunks))
    print("federated comparison, cold rescan of the grown catalog...")
    cold_report, cold_s = _compare(catalog_dir)
    print("federated comparison, resumed from per-member checkpoints...")
    resumed_report, resumed_s = _compare(catalog_dir,
                                         checkpoint_dir=checkpoint_dir)

    if _report_digest(resumed_report) != _report_digest(cold_report):
        failures.append("resumed federated report is not bit-identical to "
                        "the cold rescan")
    resumed_members = sorted(
        name for name, profile in resumed_report.profiles.items()
        if profile.resume is not None and profile.resume.get("resumed"))
    if not resumed_members:
        failures.append("no member profile resumed from its checkpoint")

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    resume_ratio = resumed_s / cold_s if cold_s else float("inf")
    header = "%-22s %12s" % ("lane", "wall s")
    print("\n" + header)
    print("-" * len(header))
    for name, wall in (("serial", serial_s),
                       ("parallel-p%d" % processes, parallel_s),
                       ("checkpoint", checkpoint_s),
                       ("cold-rescan", cold_s),
                       ("resumed", resumed_s)):
        print("%-22s %12.1f" % (name, wall))
    print("\nparallel speedup vs serial: %.2fx (target >= %.1fx)"
          % (speedup, min_parallel_speedup))
    print("resumed/cold wall ratio after appending %d%% to one member: "
          "%.3f (target < %.2f)"
          % (round(append_fraction * 100), resume_ratio, max_resume_ratio))
    print("members resumed from checkpoints: %s" % ", ".join(resumed_members))
    print("suite (k=3): %s" % ", ".join(serial_report.suite.selected))
    cores = os.cpu_count() or 1
    if (check_speed and processes >= 2 and cores >= 2
            and speedup < min_parallel_speedup):
        failures.append("parallel federated speedup %.2fx below %.1fx"
                        % (speedup, min_parallel_speedup))
    elif check_speed and (processes < 2 or cores < 2):
        print("(parallel speedup bar skipped: %d worker(s) on %d core(s))"
              % (processes, cores))
    if check_speed and resume_ratio >= max_resume_ratio:
        failures.append("resumed/cold wall ratio %.3f not below %.2f"
                        % (resume_ratio, max_resume_ratio))

    payload = {
        "benchmark": "federation",
        "members": [name for name, _, _ in CLUSTER_ROSTER],
        "n_jobs_per_member": n_jobs,
        "chunk_rows": chunk_rows,
        "catalog_disk_mb": total_mb,
        "build_wall_s": build_s,
        "processes": processes,
        "lanes": {
            "serial": {"wall_s": serial_s},
            "parallel": {"wall_s": parallel_s},
            "checkpoint": {"wall_s": checkpoint_s},
            "cold_rescan": {"wall_s": cold_s},
            "resumed": {"wall_s": resumed_s},
        },
        "parallel_speedup_vs_serial": speedup,
        "resume_ratio_vs_cold": resume_ratio,
        "resumed_members": resumed_members,
        "parallel_bit_identical": _report_digest(parallel_report) == serial_digest,
        "suite_selected": list(serial_report.suite.selected),
        "drift_clusters": sorted(cold_report.drift),
        "failures": failures,
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print("wrote results JSON to %s" % output)

    if not keep_store:
        shutil.rmtree(work_dir, ignore_errors=True)

    if failures:
        print("\nFAIL:\n" + "\n".join(failures))
        return 1
    print("OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="jobs per member store (default 1M; 7 members)")
    parser.add_argument("--chunk-rows", type=int, default=65536,
                        help="rows per on-disk chunk")
    parser.add_argument("--processes", type=int,
                        default=min(4, os.cpu_count() or 1), metavar="N",
                        help="worker processes for the parallel lane")
    parser.add_argument("--keep-store", default="",
                        help="write the catalog here and keep it")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the measured numbers as JSON here "
                             "(default: BENCH_federation.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 5k jobs per member, small chunks, no "
                             "wall-clock bars (bit-identity always enforced)")
    parser.add_argument("--skip-speed-check", action="store_true",
                        help="report but do not enforce the wall-clock bars")
    parser.add_argument("--min-parallel-speedup", type=float, default=1.6,
                        help="required parallel-vs-serial federated speedup")
    parser.add_argument("--max-resume-ratio", type=float, default=0.5,
                        help="required resumed/cold wall-clock ratio bound")
    args = parser.parse_args(argv)
    n_jobs = 5_000 if args.smoke else args.jobs
    chunk_rows = min(args.chunk_rows, 2048) if args.smoke else args.chunk_rows
    check_speed = not (args.smoke or args.skip_speed_check)
    return run_benchmark(n_jobs, chunk_rows, processes=args.processes,
                         keep_store=args.keep_store, output=args.output,
                         check_speed=check_speed,
                         min_parallel_speedup=args.min_parallel_speedup,
                         max_resume_ratio=args.max_resume_ratio)


if __name__ == "__main__":
    sys.exit(main())
