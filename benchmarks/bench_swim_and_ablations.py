"""Benchmarks for the SWIM synthesis/replay pipeline (§7) and the ablations."""

from __future__ import annotations

import pytest

from repro.bench import (
    burstiness_metric_ablation,
    cache_policy_ablation,
    k_selection_ablation,
    swim_replay,
)
from repro.units import GB


def test_bench_swim_replay(benchmark, fb2009_trace):
    """Section 7: synthesize a scaled FB-2009 workload and replay it."""
    result = benchmark.pedantic(
        swim_replay, args=(fb2009_trace,),
        kwargs={"n_jobs": 1500, "horizon_s": 4 * 3600.0, "target_machines": 20, "seed": 0},
        iterations=1, rounds=1,
    )
    values = dict((row[0], row[1]) for row in result.rows)
    assert int(values["finished jobs"]) == 1500
    # Shape check: the synthetic workload preserves the dominance of small jobs.
    source_share = float(values["small-job share (source)"].rstrip("%"))
    synth_share = float(values["small-job share (synthetic)"].rstrip("%"))
    assert abs(source_share - synth_share) < 10.0


def test_bench_ablation_cache(benchmark, cc_c_trace):
    """Cache-policy ablation (§4.2-4.3): size-threshold admission vs baselines."""
    result = benchmark.pedantic(
        cache_policy_ablation, args=(cc_c_trace,),
        kwargs={"cache_capacity_bytes": 512 * GB, "max_simulated_jobs": 3000, "n_nodes": 100},
        iterations=1, rounds=1,
    )
    rates = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
    # Shape checks: caching beats no caching, the unlimited cache upper-bounds
    # every policy, and the paper's size-threshold policy captures most of the
    # achievable hits with bounded capacity.
    assert rates["no-cache"] == 0.0
    assert rates["unlimited"] >= rates["size-threshold+lru"]
    assert rates["size-threshold+lru"] > 0.5 * rates["unlimited"]
    assert rates["size-threshold+lru"] > 0.0


def test_bench_ablation_burstiness(benchmark, cc_c_trace):
    """Burstiness-metric ablation (§5.2): median vs mean normalization."""
    result = benchmark(burstiness_metric_ablation, cc_c_trace)
    rows = {row[0]: row for row in result.rows}
    outlier_row = rows["constant + single outlier"]
    # The median-normalized ratio reports the outlier at full magnitude while
    # the mean-normalized ratio understates it.
    assert float(outlier_row[1]) > float(outlier_row[2])


def test_bench_ablation_kselect(benchmark, cc_e_trace):
    """k-selection ablation (§6.2): the small-jobs conclusion is threshold-insensitive."""
    result = benchmark.pedantic(
        k_selection_ablation, args=(cc_e_trace,),
        kwargs={"max_k": 8, "seed": 0, "max_jobs": 4000},
        iterations=1, rounds=1,
    )
    fractions = [float(row[2].rstrip("%")) for row in result.rows]
    assert all(fraction > 80.0 for fraction in fractions)
