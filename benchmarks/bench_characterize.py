"""Out-of-core characterization benchmark: shared scan vs. per-analysis vs. materialized.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_characterize.py --jobs 1000000

The benchmark writes a synthetic FB-2010-shaped trace of ``--jobs`` jobs
(with hashed file paths and framework-style job names, so every figure
pipeline has data) to chunked columnar stores in **both** on-disk formats,
then reproduces **Table 1, Figures 1-10 and Table 2** in fresh subprocesses
(for clean peak-RSS numbers) along four paths:

1. **per-analysis**  — every experiment issues its own streaming scans over
   the legacy compressed v1 store (the pre-shared-scan behaviour: the store
   is re-opened and re-decompressed once per analysis);
2. **shared**        — one :class:`ScanPipeline` decodes the mmap-backed v2
   store exactly once for the whole suite;
3. **shared-pN**     — the same shared scan fanned over ``--processes N``
   worker processes (skipped unless ``--processes`` is given);
4. **materialized**  — the store is fully converted to an in-memory job-list
   :class:`Trace` first (the historical analysis path).

The parent process then checks the acceptance contract of the shared-scan
pipeline:

* **every** experiment's table rows are identical between the shared scan
  (serial and parallel) and the per-analysis streaming path;
* against the materialized path the rows are identical except Figure 1,
  whose store-side medians are sketch-backed (agree within histogram-bin
  resolution, ≤ 15% relative; below-1GB fractions within 2 points; the
  map-only fraction exact);
* the shared scan's peak RSS is at most **one third** of the materialized
  peak RSS, and its wall clock at least ``--min-speedup`` (default 2.5×)
  faster than the per-analysis path (both bars skipped with ``--smoke``,
  where interpreter baseline and fixed costs dominate).

A calibration note on the speedup bar: the per-analysis baseline here is
**this repo's current code** with scan sharing disabled — it already uses the
vectorized consumer folds, so it is a far stronger baseline than the
pre-pipeline (PR 3) per-analysis path, which measured 13.8 s on this trace
and machine against ~3.5 s for the shared scan (≈4×).  The enforced bar is
set with headroom below the measured ~2.8–3× against the strong baseline
because both children share ~2 s of fixed non-scan cost (the Figure-7
utilization replay, Table-2 clustering, report rendering) that compresses
the ratio, and single-core container timings jitter by ±20%.

**Incremental lane** (the checkpointed-ingest contract): a second v2 store is
seeded with the first 90% of the jobs and characterized once with
``checkpoint_to=`` (the "yesterday" run); the remaining 10% are then
*appended* via the store appender, and the suite is re-run twice in fresh
subprocesses — a **cold full rescan** and an **incremental resume** from the
checkpoint (both without the replay-simulated Figure-7 utilization column, so
the comparison measures the scan pipeline, not the simulator).  Enforced:
every experiment's rows **bit-identical** between the two (the resumable
consumers restore exact states — sketch bins, path statistics, per-hour
aggregates — and the non-resumable Table-2 sample re-gathers either way), and
the incremental wall clock below ``--max-incremental-ratio`` (default 0.35×)
of the cold rescan.  ``--incremental-only`` runs just this lane (the CI docs
job uses it with ``--smoke``).

**Format lane** (the v3 decode contract): the same trace is also written as
a format-v3 store (compressed blocks + dictionary strings), and the full
shared-scan suite is re-run in fresh subprocesses once per format (v1, v2,
v3).  Enforced: every experiment's rows **bit-identical** across all three
formats, the v3 store at most **1.3x** the v1 (.npz) footprint, and the v3
shared-scan wall clock at most **1.2x** the v2 (mmap) wall clock — the
code-native dictionary fold is what keeps compressed storage from costing
scan time.  The wall bar shares the ``--smoke``/``--skip-speed-check``
gating of the speedup bar; the disk bar and row equality always hold.

``--output`` (default: ``BENCH_characterize.json`` at the repo root, so the
perf trajectory is tracked across PRs) writes the measured numbers as JSON —
also uploaded as a CI artifact by the ``bench-characterize-smoke`` job.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine import ChunkedTraceStore
from repro.traces import Job

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_characterize.json")


# ---------------------------------------------------------------------------
# Synthetic trace: FB-2010 shaped, with paths and names for the full suite
# ---------------------------------------------------------------------------
def synthetic_characterize_jobs(n_jobs: int, horizon_days: float = 30.0, seed: int = 2012):
    """Yield ``n_jobs`` jobs lazily, sorted by submission time.

    Small jobs dominate (§6.2), byte sizes are log-normal across many orders
    of magnitude (§4.1), input paths are drawn Zipf-ish from a bounded pool so
    the Figure 2-6 access analyses see realistic reuse, and names follow the
    framework vocabulary of §6.1.
    """
    rng = np.random.default_rng(seed)
    horizon_s = horizon_days * 86400.0
    submits = np.cumsum(rng.exponential(horizon_s / n_jobs, size=n_jobs))
    kind = rng.random(n_jobs)
    map_s = np.where(kind < 0.80, rng.uniform(5.0, 45.0, size=n_jobs),
                     np.where(kind < 0.99, rng.uniform(60.0, 600.0, size=n_jobs),
                              rng.uniform(600.0, 5000.0, size=n_jobs)))
    has_reduce = rng.random(n_jobs) < 0.4
    reduce_s = np.where(has_reduce, map_s * 0.3, 0.0)
    input_b = rng.lognormal(17.0, 3.0, size=n_jobs)
    shuffle_b = np.where(has_reduce, input_b * 0.3, 0.0)
    output_b = rng.lognormal(14.0, 3.0, size=n_jobs)
    # Zipf-ish path reuse over a pool that grows with the trace.
    n_paths = max(64, n_jobs // 20)
    path_ids = (np.minimum(rng.pareto(0.9, size=n_jobs) * 8.0, n_paths - 1)).astype(int)
    out_ids = rng.integers(0, n_paths, size=n_jobs)
    words = np.array(["insert", "select", "from", "piglatin", "oozie", "ad", "distcp"])
    word_ids = rng.choice(words.size, size=n_jobs,
                          p=[0.35, 0.2, 0.1, 0.15, 0.1, 0.07, 0.03])
    for index in range(n_jobs):
        yield Job(
            job_id="char_%07d" % index,
            submit_time_s=float(submits[index]),
            duration_s=float(map_s[index] + reduce_s[index]),
            input_bytes=float(input_b[index]),
            shuffle_bytes=float(shuffle_b[index]),
            output_bytes=float(output_b[index]),
            map_task_seconds=float(map_s[index]),
            reduce_task_seconds=float(reduce_s[index]),
            name="%s job %d" % (words[word_ids[index]], index % 97),
            input_path="/data/%05d" % path_ids[index],
            output_path="/out/%05d" % out_ids[index],
        )


# ---------------------------------------------------------------------------
# Suite children (fresh subprocesses for clean VmHWM peak-RSS numbers)
# ---------------------------------------------------------------------------
_CHILD_SNIPPET = """
import json, resource, sys, time

def peak_rss_mb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

from repro.engine import ChunkedTraceStore
from repro.bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, run_suite
from repro.core.datasizes import analyze_data_sizes
from repro.core.sharedscan import run_characterization_scan

store_path, mode, processes = sys.argv[1], sys.argv[2], int(sys.argv[3])
checkpoint_path = sys.argv[4] if len(sys.argv) > 4 else ""
start = time.perf_counter()
store = ChunkedTraceStore(store_path)
if mode in ("checkpoint", "cold", "incremental"):
    # The incremental lane: one explicit shared scan (optionally resumed
    # from / saved to a checkpoint), its bundle handed to the suite.  No
    # simulated Figure-7 utilization, so the lane times the scan pipeline.
    bundle = run_characterization_scan(
        store, experiments=list(CHARACTERIZATION_EXPERIMENT_IDS), seed=0,
        resume_from=(checkpoint_path if mode == "incremental" else None),
        checkpoint_to=(checkpoint_path if mode == "checkpoint" else None))
    results = run_suite(traces={store.name: store},
                        experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                        include_ablations=False, include_simulation=False,
                        analyses={store.name: bundle})
    payload = {
        "rows": {result.experiment_id: result.rows for result in results},
        "wall_s": time.perf_counter() - start,
        "resume": bundle.resume,
    }
else:
    source = store.to_trace() if mode == "materialized" else store
    results = run_suite(traces={store.name: source},
                        experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                        include_ablations=False, include_simulation=True,
                        shared_scan=(mode != "per-analysis"),
                        processes=processes or None)
    payload = {
        "rows": {result.experiment_id: result.rows for result in results},
        "wall_s": time.perf_counter() - start,
    }
    if mode in ("per-analysis", "materialized"):
        sizes = analyze_data_sizes(source)
        payload["figure1_medians"] = sizes.medians
        payload["figure1_below_gb"] = sizes.fraction_below_gb
        payload["map_only_fraction"] = sizes.map_only_fraction
payload["rss_mb"] = peak_rss_mb()
print(json.dumps(payload))
"""


def _run_child(store_path: str, mode: str, processes: int = 0,
               checkpoint_path: str = "") -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run([sys.executable, "-c", _CHILD_SNIPPET, store_path, mode,
                             str(processes), checkpoint_path],
                            capture_output=True, text=True, env=env)
    if output.returncode != 0:
        raise RuntimeError("characterize child (%s) failed:\n%s" % (mode, output.stderr))
    return json.loads(output.stdout)


# ---------------------------------------------------------------------------
def _check_shared_equals_streamed(shared: dict, streamed: dict, label: str) -> list:
    """The shared scan must match the per-analysis streaming rows exactly."""
    failures = []
    for experiment_id, streamed_rows in streamed["rows"].items():
        shared_rows = shared["rows"].get(experiment_id)
        if shared_rows != streamed_rows:
            failures.append("%s rows mismatch on %r:\n  shared:       %r\n"
                            "  per-analysis: %r"
                            % (label, experiment_id, shared_rows, streamed_rows))
    return failures


def _check_equivalence(streamed: dict, full: dict) -> list:
    failures = []
    for experiment_id, full_rows in full["rows"].items():
        streamed_rows = streamed["rows"].get(experiment_id)
        if experiment_id == "figure1":
            continue  # sketch-backed medians checked numerically below
        if streamed_rows != full_rows:
            failures.append("rows mismatch on %r:\n  streamed:     %r\n"
                            "  materialized: %r" % (experiment_id, streamed_rows, full_rows))
    for dimension, exact in full["figure1_medians"].items():
        approx = streamed["figure1_medians"][dimension]
        if exact > 0 and abs(approx - exact) / exact > 0.15:
            failures.append("figure1 %s median drifts beyond bin resolution: "
                            "exact %.4g vs sketch %.4g" % (dimension, exact, approx))
    for dimension, exact in full["figure1_below_gb"].items():
        approx = streamed["figure1_below_gb"][dimension]
        if abs(approx - exact) > 0.02:
            failures.append("figure1 %s below-1GB fraction drifts: exact %.4f vs "
                            "sketch %.4f" % (dimension, exact, approx))
    if streamed["map_only_fraction"] != full["map_only_fraction"]:
        failures.append("map-only fraction not exact: %r vs %r"
                        % (streamed["map_only_fraction"], full["map_only_fraction"]))
    return failures


def _run_incremental_lane(n_jobs: int, chunk_rows: int, store_dir: str,
                          check_ratio: bool, max_ratio: float,
                          append_fraction: float = 0.1):
    """The checkpointed-ingest lane: seed 90%, checkpoint, append 10%, resume.

    Returns ``(failures, payload)``.  Every experiment's rows must be
    bit-identical between the cold full rescan and the incremental resume of
    the grown store; the resume must finish in under ``max_ratio`` of the
    cold wall clock (when ``check_ratio``).
    """
    inc_path = os.path.join(store_dir, "store-incremental")
    checkpoint_path = os.path.join(store_dir, "incremental.ck.json")
    base_jobs = int(n_jobs * (1.0 - append_fraction))
    print("\n== incremental lane: append %d%% of chunks, resume from checkpoint =="
          % round(append_fraction * 100))

    start = time.perf_counter()
    # One deterministic generator sliced twice: the seeded prefix and the
    # appended tail are exactly the full trace's jobs.
    base_store = ChunkedTraceStore.write(
        inc_path, itertools.islice(synthetic_characterize_jobs(n_jobs), base_jobs),
        chunk_rows=chunk_rows, name="FB-2010")
    print("wrote incremental base  (%d chunks, %d jobs) in %.1f s"
          % (base_store.n_chunks, base_store.n_jobs, time.perf_counter() - start))

    print("characterizing base store + saving checkpoint...")
    baseline = _run_child(inc_path, "checkpoint", checkpoint_path=checkpoint_path)

    start = time.perf_counter()
    grown = ChunkedTraceStore.open_append(inc_path).append(
        itertools.islice(synthetic_characterize_jobs(n_jobs), base_jobs, None))
    append_s = time.perf_counter() - start
    print("appended %d jobs in %d chunks in %.1f s (sorted=%s)"
          % (grown.n_jobs - base_jobs, grown.n_chunks - base_store.n_chunks,
             append_s, grown.sorted_by_submit_time))

    print("characterizing grown store cold (full rescan)...")
    cold = _run_child(inc_path, "cold")
    print("characterizing grown store incrementally (resume from checkpoint)...")
    incremental = _run_child(inc_path, "incremental", checkpoint_path=checkpoint_path)

    failures = []
    for experiment_id, cold_rows in cold["rows"].items():
        resumed_rows = incremental["rows"].get(experiment_id)
        if resumed_rows != cold_rows:
            failures.append("incremental rows mismatch on %r:\n  cold:        %r\n"
                            "  incremental: %r"
                            % (experiment_id, cold_rows, resumed_rows))
    resume = incremental.get("resume") or {}
    if not resume.get("resumed"):
        failures.append("incremental child resumed no consumers: %r" % (resume,))

    ratio = (incremental["wall_s"] / cold["wall_s"]
             if cold["wall_s"] else float("inf"))
    header = "%-14s %12s %12s" % ("lane", "wall s", "peak RSS MB")
    print("\n" + header)
    print("-" * len(header))
    for name, result in (("checkpoint", baseline), ("cold-rescan", cold),
                         ("incremental", incremental)):
        print("%-14s %12.1f %12.1f" % (name, result["wall_s"], result["rss_mb"]))
    print("\nincremental/cold wall ratio after appending %d%% of chunks: "
          "%.3f (target < %.2f)" % (round(append_fraction * 100), ratio, max_ratio))
    print("resumed: %s" % ", ".join(resume.get("resumed", [])))
    print("full rescan: %s" % ", ".join(sorted(resume.get("rescanned", {}))))
    if check_ratio and ratio >= max_ratio:
        failures.append("incremental/cold wall ratio %.3f not below %.2f"
                        % (ratio, max_ratio))

    payload = {
        "append_fraction": append_fraction,
        "base_jobs": base_jobs,
        "appended_jobs": n_jobs - base_jobs,
        "append_wall_s": append_s,
        "lanes": {
            "checkpoint": {"wall_s": baseline["wall_s"], "rss_mb": baseline["rss_mb"]},
            "cold_rescan": {"wall_s": cold["wall_s"], "rss_mb": cold["rss_mb"]},
            "incremental": {"wall_s": incremental["wall_s"],
                            "rss_mb": incremental["rss_mb"]},
        },
        "ratio_incremental_vs_cold": ratio,
        "resumed": resume.get("resumed", []),
        "rescanned": resume.get("rescanned", {}),
    }
    return failures, payload


def run_benchmark(n_jobs: int, chunk_rows: int, keep_store: str = "",
                  check_rss: bool = True, check_speedup: bool = True,
                  min_speedup: float = 2.5, processes: int = 0,
                  output: str = DEFAULT_OUTPUT,
                  check_incremental: bool = True,
                  max_incremental_ratio: float = 0.35,
                  incremental_only: bool = False) -> int:
    print("== out-of-core characterization benchmark: %d jobs ==" % n_jobs)
    store_dir = keep_store or tempfile.mkdtemp(prefix="bench_characterize_")
    failures = []
    payload = {
        "benchmark": "characterize",
        "n_jobs": n_jobs,
        "chunk_rows": chunk_rows,
    }

    if not incremental_only:
        v1_path = os.path.join(store_dir, "store-v1")
        v2_path = os.path.join(store_dir, "store-v2")

        start = time.perf_counter()
        v1_store = ChunkedTraceStore.write(v1_path, synthetic_characterize_jobs(n_jobs),
                                           chunk_rows=chunk_rows, name="FB-2010",
                                           format_version=1)
        v1_mb = v1_store.info()["on_disk_bytes"] / 1e6
        print("wrote v1 (.npz) store   (%d chunks, %7.1f MB) in %.1f s"
              % (v1_store.n_chunks, v1_mb, time.perf_counter() - start))
        start = time.perf_counter()
        # Re-run the deterministic generator rather than materializing the v1
        # store: identical jobs, chunk-bounded memory during setup.
        v2_store = ChunkedTraceStore.write(v2_path, synthetic_characterize_jobs(n_jobs),
                                           chunk_rows=chunk_rows, name="FB-2010",
                                           format_version=2)
        v2_mb = v2_store.info()["on_disk_bytes"] / 1e6
        print("wrote v2 (.npy) store   (%d chunks, %7.1f MB) in %.1f s"
              % (v2_store.n_chunks, v2_mb, time.perf_counter() - start))
        start = time.perf_counter()
        v3_path = os.path.join(store_dir, "store-v3")
        v3_store = ChunkedTraceStore.write(v3_path, synthetic_characterize_jobs(n_jobs),
                                           chunk_rows=chunk_rows, name="FB-2010",
                                           format_version=3)
        v3_mb = v3_store.info()["on_disk_bytes"] / 1e6
        print("wrote v3 (block) store  (%d chunks, %7.1f MB) in %.1f s\n"
              % (v3_store.n_chunks, v3_mb, time.perf_counter() - start))

        print("characterizing per-analysis (one scan per experiment, v1 store)...")
        streamed = _run_child(v1_path, "per-analysis")
        print("characterizing shared scan (one decoded pass, v2 store)...")
        shared = _run_child(v2_path, "shared")
        shared_parallel = None
        if processes:
            print("characterizing shared scan with %d worker processes..." % processes)
            shared_parallel = _run_child(v2_path, "shared", processes=processes)
        print("characterizing materialized (store -> Trace -> suite)...")
        full = _run_child(v1_path, "materialized")
        print("format decode lanes: shared scan on the v1 and v3 stores...")
        shared_v1 = _run_child(v1_path, "shared")
        shared_v3 = _run_child(v3_path, "shared")

        named = [("per-analysis", streamed), ("shared", shared)]
        if shared_parallel is not None:
            named.append(("shared-p%d" % processes, shared_parallel))
        named.append(("materialized", full))
        named.append(("shared-v1", shared_v1))
        named.append(("shared-v3", shared_v3))
        header = "%-14s %12s %12s" % ("path", "wall s", "peak RSS MB")
        print("\n" + header)
        print("-" * len(header))
        for name, result in named:
            print("%-14s %12.1f %12.1f" % (name, result["wall_s"], result["rss_mb"]))

        failures += _check_shared_equals_streamed(shared, streamed, "shared")
        if shared_parallel is not None:
            failures += _check_shared_equals_streamed(shared_parallel, shared,
                                                      "shared-p%d" % processes)
        failures += _check_equivalence(streamed, full)
        # The v3 decode contract: every characterization row identical no
        # matter which on-disk format fed the shared scan.
        failures += _check_shared_equals_streamed(shared_v1, shared, "shared-v1")
        failures += _check_shared_equals_streamed(shared_v3, shared, "shared-v3")

        ratio = shared["rss_mb"] / full["rss_mb"] if full["rss_mb"] else float("inf")
        speedup = streamed["wall_s"] / shared["wall_s"] if shared["wall_s"] else float("inf")
        disk_ratio = v3_mb / v1_mb if v1_mb else float("inf")
        wall_ratio = (shared_v3["wall_s"] / shared["wall_s"]
                      if shared["wall_s"] else float("inf"))
        print("\nshared/materialized peak-RSS ratio:  %.3f (target <= 1/3)" % ratio)
        print("shared-scan speedup vs per-analysis: %.2fx (target >= %.1fx)"
              % (speedup, min_speedup))
        print("v3/v1 on-disk ratio:                 %.3f (target <= 1.3)" % disk_ratio)
        print("v3/v2 shared-scan wall ratio:        %.3f (target <= 1.2)" % wall_ratio)
        if check_rss and ratio > 1.0 / 3.0:
            failures.append("peak RSS ratio %.3f exceeds 1/3" % ratio)
        if check_speedup and speedup < min_speedup:
            failures.append("shared-scan speedup %.2fx below %.1fx" % (speedup, min_speedup))
        if disk_ratio > 1.3:
            failures.append("v3 store %.1f MB exceeds 1.3x the v1 footprint "
                            "(%.1f MB)" % (v3_mb, v1_mb))
        if check_speedup and wall_ratio > 1.2:
            failures.append("v3 shared-scan wall %.1f s exceeds 1.2x the v2 "
                            "wall (%.1f s)" % (shared_v3["wall_s"], shared["wall_s"]))

        payload["store_disk_mb"] = {"v1": v1_mb, "v2": v2_mb, "v3": v3_mb}
        payload["formats"] = {
            "v1": {"disk_mb": v1_mb, "wall_s": shared_v1["wall_s"],
                   "rss_mb": shared_v1["rss_mb"]},
            "v2": {"disk_mb": v2_mb, "wall_s": shared["wall_s"],
                   "rss_mb": shared["rss_mb"]},
            "v3": {"disk_mb": v3_mb, "wall_s": shared_v3["wall_s"],
                   "rss_mb": shared_v3["rss_mb"]},
            "v3_vs_v1_disk_ratio": disk_ratio,
            "v3_vs_v2_wall_ratio": wall_ratio,
        }
        payload["paths"] = {
            name.replace("-", "_"): {"wall_s": result["wall_s"],
                                     "rss_mb": result["rss_mb"]}
            for name, result in named
        }
        payload["speedup_shared_vs_per_analysis"] = speedup
        payload["rss_ratio_shared_vs_materialized"] = ratio

    incremental_failures, incremental_payload = _run_incremental_lane(
        n_jobs, chunk_rows, store_dir,
        check_ratio=check_incremental, max_ratio=max_incremental_ratio)
    failures += incremental_failures
    payload["incremental"] = incremental_payload
    payload["failures"] = failures

    if output:
        if incremental_only and os.path.isfile(output):
            # Merge into an existing full-benchmark JSON instead of dropping
            # its speedup/RSS history.
            try:
                with open(output, "r", encoding="utf-8") as handle:
                    previous = json.load(handle)
                previous["incremental"] = incremental_payload
                previous["failures"] = failures
                payload = previous
            except (IOError, ValueError):
                pass
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print("wrote results JSON to %s" % output)

    if not keep_store:
        shutil.rmtree(store_dir, ignore_errors=True)

    if failures:
        print("\nFAIL:\n" + "\n".join(failures))
        return 1
    print("OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="synthetic trace size (default 1M)")
    parser.add_argument("--chunk-rows", type=int, default=65536,
                        help="rows per on-disk chunk")
    parser.add_argument("--keep-store", default="",
                        help="write the stores here and keep them")
    parser.add_argument("--processes", type=int, default=0, metavar="N",
                        help="also time the shared scan over N worker processes")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the measured numbers as JSON here "
                             "(default: BENCH_characterize.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 50k jobs, small chunks, no RSS/speed bars "
                             "(row-equality checks still enforced)")
    parser.add_argument("--skip-rss-check", action="store_true",
                        help="report but do not enforce the 1/3 peak-RSS bar")
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="required shared-scan speedup vs the (already "
                             "consumer-optimized) per-analysis path")
    parser.add_argument("--skip-speed-check", action="store_true",
                        help="report but do not enforce the speedup bar")
    parser.add_argument("--incremental-only", action="store_true",
                        help="run only the append-10%%-and-resume lane (row "
                             "equality always enforced; used by the CI docs job)")
    parser.add_argument("--max-incremental-ratio", type=float, default=0.35,
                        help="required incremental/cold wall-clock ratio bound")
    parser.add_argument("--skip-incremental-check", action="store_true",
                        help="report but do not enforce the incremental ratio bar")
    args = parser.parse_args(argv)
    n_jobs = 50_000 if args.smoke else args.jobs
    chunk_rows = min(args.chunk_rows, 8192) if args.smoke else args.chunk_rows
    check_rss = not (args.smoke or args.skip_rss_check)
    check_speedup = not (args.smoke or args.skip_speed_check)
    check_incremental = not (args.smoke or args.skip_incremental_check)
    return run_benchmark(n_jobs, chunk_rows, keep_store=args.keep_store,
                         check_rss=check_rss, check_speedup=check_speedup,
                         min_speedup=args.min_speedup, processes=args.processes,
                         output=args.output,
                         check_incremental=check_incremental,
                         max_incremental_ratio=args.max_incremental_ratio,
                         incremental_only=args.incremental_only)


if __name__ == "__main__":
    sys.exit(main())
