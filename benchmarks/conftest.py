"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  Workload
traces are generated once per session at benchmark scales (full scale for the
Cloudera workloads, down-scaled-and-time-compressed for the two Facebook
workloads) so the pytest-benchmark timings measure the analysis itself, not
trace generation.
"""

from __future__ import annotations

import pytest

from repro.traces import PAPER_WORKLOAD_NAMES, load_all_paper_workloads, load_workload

#: Scales used for benchmark runs (recorded in EXPERIMENTS.md).
BENCH_SCALES = {
    "CC-a": 1.0,
    "CC-b": 0.5,
    "CC-c": 0.5,
    "CC-d": 0.5,
    "CC-e": 1.0,
    "FB-2009": 0.01,
    "FB-2010": 0.01,
}

BENCH_SEED = 2012


@pytest.fixture(scope="session")
def paper_traces():
    """All seven paper workloads at benchmark scales, keyed by name."""
    return {
        name: load_workload(name, seed=BENCH_SEED, scale=BENCH_SCALES[name])
        for name in PAPER_WORKLOAD_NAMES
    }


@pytest.fixture(scope="session")
def access_traces(paper_traces):
    """The workloads that record file paths (used by Figures 2-6)."""
    return {
        name: trace for name, trace in paper_traces.items()
        if any(job.input_path is not None for job in trace.jobs[:100])
    }


@pytest.fixture(scope="session")
def named_traces(paper_traces):
    """The workloads that record job names (used by Figure 10)."""
    return {
        name: trace for name, trace in paper_traces.items()
        if any(job.name is not None for job in trace.jobs[:100])
    }


@pytest.fixture(scope="session")
def fb2009_trace(paper_traces):
    return paper_traces["FB-2009"]


@pytest.fixture(scope="session")
def cc_c_trace(paper_traces):
    return paper_traces["CC-c"]


@pytest.fixture(scope="session")
def cc_e_trace(paper_traces):
    return paper_traces["CC-e"]
