"""Service daemon benchmark: cache-hit latency and sustained req/s under load.

Run directly (not collected by pytest — the workload is deliberately large)::

    PYTHONPATH=src python benchmarks/bench_service.py --jobs 200000

The benchmark writes a synthetic FB-2010-shaped chunked store (the same
generator as ``bench_characterize.py``) into a catalog, starts the
trace-analytics daemon in-process (:class:`~repro.service.server.ServiceThread`)
and measures, through real HTTP requests:

1. **Cache lane** — ``--cold-requests`` full characterizations with distinct
   seeds (each a forced miss: a shared scan + suite build), then the same
   requests replayed as cache hits.  Enforced: the cache-hit p50 latency is at
   least ``--min-hit-speedup`` (default 10×) below the cold p50, and every
   hit's body is bit-identical to its cold response.
2. **Throughput lane** — ``--clients`` threads issue engine queries drawn
   from a small spec pool for ``--duration`` seconds while an appender thread
   commits a batch of jobs every ``--append-interval`` seconds; each append
   invalidates the store's cache entries, so the lane exercises the
   miss -> hit -> invalidate -> miss cycle under concurrency.  Recorded:
   sustained req/s, client-observed p50/p99 latency, appends landed, errors
   (enforced: zero).

Server-side counters (scans started, batched admissions, cache hit/miss,
invalidations) are scraped from ``/metrics`` at the end.  ``--output``
(default: ``BENCH_service.json`` at the repo root, the same convention as
``BENCH_characterize.json``) records everything as JSON; ``--smoke`` shrinks
the store and the duration for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_characterize import synthetic_characterize_jobs

from repro.engine import ChunkedTraceStore
from repro.service import ServiceClient, ServiceThread

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_service.json")

QUERY_POOL = [
    {"agg": ["count", "sum:input_bytes"]},
    {"where": ["input_bytes > 1e9"], "agg": ["count"]},
    {"where": ["map_task_seconds <= 60"], "agg": ["count", "mean:duration_s"]},
    {"group_by": "name"},
    {"top_k": "input_bytes:5"},
    {"agg": ["p50:duration_s", "p99:duration_s"]},
]


def _percentile_ms(samples, q) -> float:
    return float(np.percentile(np.array(samples, dtype=float), q) * 1000.0)


def _timed(call):
    start = time.perf_counter()
    result = call()
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Lane 1: cold characterization vs cache hit
# ---------------------------------------------------------------------------
def run_cache_lane(client: ServiceClient, cold_requests: int) -> dict:
    print("== cache lane: %d cold characterizations, then replayed as hits =="
          % cold_requests)
    cold_times, hit_times = [], []
    mismatches = 0
    cold_bodies = {}
    for seed in range(cold_requests):
        response, elapsed = _timed(
            lambda s=seed: client.characterize("bench", seed=s))
        assert response.cache == "miss", response.cache
        cold_times.append(elapsed)
        cold_bodies[seed] = response.data
        print("  cold seed=%d: %.2f s" % (seed, elapsed))
    for seed in range(cold_requests):
        response, elapsed = _timed(
            lambda s=seed: client.characterize("bench", seed=s))
        assert response.cache == "hit", response.cache
        hit_times.append(elapsed)
        if response.data != cold_bodies[seed]:
            mismatches += 1
    lane = {
        "cold_requests": cold_requests,
        "cold_p50_ms": _percentile_ms(cold_times, 50),
        "cold_p99_ms": _percentile_ms(cold_times, 99),
        "hit_p50_ms": _percentile_ms(hit_times, 50),
        "hit_p99_ms": _percentile_ms(hit_times, 99),
        "bit_identical_hits": mismatches == 0,
    }
    lane["speedup_p50"] = (lane["cold_p50_ms"] / lane["hit_p50_ms"]
                           if lane["hit_p50_ms"] else float("inf"))
    print("cold p50 %.1f ms / hit p50 %.2f ms -> %.0fx; bit-identical: %s"
          % (lane["cold_p50_ms"], lane["hit_p50_ms"], lane["speedup_p50"],
             lane["bit_identical_hits"]))
    return lane


# ---------------------------------------------------------------------------
# Lane 2: concurrent query clients with appends in flight
# ---------------------------------------------------------------------------
def run_throughput_lane(port: int, clients: int, duration_s: float,
                        append_interval_s: float, append_batch: int,
                        n_jobs: int) -> dict:
    print("\n== throughput lane: %d clients for %.0f s, append every %.1f s =="
          % (clients, duration_s, append_interval_s))
    stop = threading.Event()
    latencies = [[] for _ in range(clients)]
    errors = [0] * (clients + 1)  # last slot: the appender
    appends = {"count": 0}

    def client_loop(index: int) -> None:
        client = ServiceClient(port=port, timeout=60.0)
        rng = np.random.default_rng(index)
        while not stop.is_set():
            spec = QUERY_POOL[int(rng.integers(len(QUERY_POOL)))]
            try:
                _, elapsed = _timed(lambda: client.query("bench", **spec))
                latencies[index].append(elapsed)
            except Exception:
                errors[index] += 1

    def append_loop() -> None:
        client = ServiceClient(port=port, timeout=60.0)
        # A lazily-generated stream of fresh jobs to commit batch by batch.
        source = synthetic_characterize_jobs(
            append_batch * 64, horizon_days=1.0, seed=77)
        while not stop.is_set():
            if stop.wait(append_interval_s):
                return
            batch = [next(source).to_dict() for _ in range(append_batch)]
            try:
                client.append("bench", batch)
                appends["count"] += 1
            except Exception:
                errors[clients] += 1

    threads = [threading.Thread(target=client_loop, args=(index,))
               for index in range(clients)]
    threads.append(threading.Thread(target=append_loop))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    flat = [sample for bucket in latencies for sample in bucket]
    lane = {
        "clients": clients,
        "duration_s": round(elapsed, 2),
        "requests": len(flat),
        "requests_per_s": round(len(flat) / elapsed, 1),
        "p50_ms": _percentile_ms(flat, 50) if flat else None,
        "p99_ms": _percentile_ms(flat, 99) if flat else None,
        "appends_in_flight": appends["count"],
        "append_batch_jobs": append_batch,
        "errors": sum(errors),
    }
    print("%d requests in %.1f s -> %.0f req/s; p50 %.1f ms, p99 %.1f ms; "
          "%d appends, %d errors"
          % (lane["requests"], elapsed, lane["requests_per_s"],
             lane["p50_ms"] or -1, lane["p99_ms"] or -1,
             lane["appends_in_flight"], lane["errors"]))
    return lane


# ---------------------------------------------------------------------------
def run_benchmark(n_jobs: int, chunk_rows: int, cold_requests: int,
                  clients: int, duration_s: float, append_interval_s: float,
                  append_batch: int, min_hit_speedup: float,
                  output: str = DEFAULT_OUTPUT) -> int:
    print("== trace-analytics service benchmark: %d-job store ==" % n_jobs)
    catalog_dir = tempfile.mkdtemp(prefix="bench_service_")
    failures = []
    try:
        start = time.perf_counter()
        store = ChunkedTraceStore.write(
            os.path.join(catalog_dir, "bench"),
            synthetic_characterize_jobs(n_jobs), chunk_rows=chunk_rows,
            name="FB-2010")
        print("wrote store (%d chunks, %.1f MB) in %.1f s\n"
              % (store.n_chunks, store.info()["on_disk_bytes"] / 1e6,
                 time.perf_counter() - start))

        with open(os.devnull, "w") as sink:
            with ServiceThread(catalog_dir, workers=4, batch_window_s=0.02,
                               cache_entries=512, log_stream=sink) as thread:
                client = ServiceClient(port=thread.port, timeout=600.0)
                cache_lane = run_cache_lane(client, cold_requests)
                throughput_lane = run_throughput_lane(
                    thread.port, clients, duration_s, append_interval_s,
                    append_batch, n_jobs)
                server = {
                    name: client.metric(name) for name in (
                        "repro_requests_total",
                        "repro_scans_started_total",
                        "repro_cache_hits_total",
                        "repro_cache_misses_total",
                        "repro_cache_invalidations_total",
                        "repro_appends_observed_total",
                    )
                }

        if not cache_lane["bit_identical_hits"]:
            failures.append("cache hits were not bit-identical to cold responses")
        if cache_lane["speedup_p50"] < min_hit_speedup:
            failures.append("cache-hit p50 speedup %.1fx below %.0fx"
                            % (cache_lane["speedup_p50"], min_hit_speedup))
        if throughput_lane["errors"]:
            failures.append("%d client errors under load"
                            % throughput_lane["errors"])
        if not throughput_lane["appends_in_flight"]:
            failures.append("no appends landed during the throughput lane")

        payload = {
            "benchmark": "service",
            "n_jobs": n_jobs,
            "chunk_rows": chunk_rows,
            "cache": cache_lane,
            "throughput": throughput_lane,
            "server_counters": server,
            "failures": failures,
        }
        if output:
            with open(output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print("\nwrote results JSON to %s" % output)
    finally:
        shutil.rmtree(catalog_dir, ignore_errors=True)

    if failures:
        print("\nFAIL:\n" + "\n".join(failures))
        return 1
    print("OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=200_000,
                        help="synthetic store size (default 200k)")
    parser.add_argument("--chunk-rows", type=int, default=65536,
                        help="rows per on-disk chunk")
    parser.add_argument("--cold-requests", type=int, default=5,
                        help="distinct-seed characterizations in the cache lane")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent query clients in the throughput lane")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="throughput lane length in seconds")
    parser.add_argument("--append-interval", type=float, default=2.0,
                        help="seconds between appends during the throughput lane")
    parser.add_argument("--append-batch", type=int, default=500,
                        help="jobs per append batch")
    parser.add_argument("--min-hit-speedup", type=float, default=10.0,
                        help="required cold/hit p50 latency ratio")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="write the measured numbers as JSON here "
                             "(default: BENCH_service.json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: 20k-job store, 2 cold requests, "
                             "4 clients for 3 s (all bars still enforced)")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_benchmark(20_000, 8192, cold_requests=2, clients=4,
                             duration_s=3.0, append_interval_s=1.0,
                             append_batch=200,
                             min_hit_speedup=args.min_hit_speedup,
                             output=args.output)
    return run_benchmark(args.jobs, args.chunk_rows,
                         cold_requests=args.cold_requests,
                         clients=args.clients, duration_s=args.duration,
                         append_interval_s=args.append_interval,
                         append_batch=args.append_batch,
                         min_hit_speedup=args.min_hit_speedup,
                         output=args.output)


if __name__ == "__main__":
    sys.exit(main())
