"""Engine integration: analysis fast paths, CLI subcommand, bounded memory."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.datasizes import analyze_data_sizes
from repro.core.stats import empirical_cdf
from repro.engine import ChunkedTraceStore, Query, execute
from repro.traces import load_workload, write_jsonl


@pytest.fixture(scope="module")
def trace():
    return load_workload("CC-e", seed=4, scale=0.05)


class TestAnalysisFastPaths:
    def test_datasizes_accepts_either_representation(self, trace):
        from_jobs = analyze_data_sizes(trace)
        from_columnar = analyze_data_sizes(trace.to_columnar())
        assert from_columnar.map_only_fraction == pytest.approx(from_jobs.map_only_fraction)
        for dimension in ("input_bytes", "shuffle_bytes", "output_bytes"):
            assert from_columnar.median(dimension) == pytest.approx(from_jobs.median(dimension))
            assert from_columnar.fraction_below_gb[dimension] == pytest.approx(
                from_jobs.fraction_below_gb[dimension])

    def test_empirical_cdf_takes_arrays_without_copy_semantics_change(self, trace):
        values = trace.dimension("input_bytes")
        from_array = empirical_cdf(values)
        from_list = empirical_cdf(list(values))
        np.testing.assert_allclose(from_array.values, from_list.values)

    def test_empirical_cdf_does_not_mutate_input(self, trace):
        values = trace.to_columnar().dimension("input_bytes")
        before = values.copy()
        empirical_cdf(values)  # sorts internally; must not sort the caller's array
        np.testing.assert_array_equal(values, before)


class TestEngineCli:
    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory, trace):
        root = tmp_path_factory.mktemp("clistore")
        trace_path = root / "trace.jsonl.gz"
        write_jsonl(trace, trace_path)
        store_dir = root / "store"
        assert main(["engine", "convert", "--trace", str(trace_path),
                     "--output", str(store_dir), "--chunk-rows", "64"]) == 0
        return store_dir

    @staticmethod
    def _field(out, label):
        for line in out.splitlines():
            parts = line.split()
            if parts and parts[0] == label:
                return parts[1]
        raise AssertionError("no %r line in output:\n%s" % (label, out))

    def test_convert_then_info(self, store_dir, trace, capsys):
        assert main(["engine", "info", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert self._field(out, "n_jobs") == str(len(trace))

    def test_query_aggregate(self, store_dir, trace, capsys):
        assert main(["engine", "query", "--store", str(store_dir),
                     "--where", "input_bytes > 1e6",
                     "--agg", "count", "sum:input_bytes"]) == 0
        out = capsys.readouterr().out
        naive = sum(1 for job in trace if job.input_bytes > 1e6)
        assert self._field(out, "count") == str(naive)
        assert "scanned" in out

    def test_query_top_k(self, store_dir, trace, capsys):
        assert main(["engine", "query", "--store", str(store_dir),
                     "--top-k", "input_bytes:2", "--columns", "job_id"]) == 0
        out = capsys.readouterr().out
        biggest = max(trace, key=lambda job: job.input_bytes)
        assert biggest.job_id in out

    def test_row_flags_reject_aggregate_flags(self, store_dir, capsys):
        # Analysis errors exit nonzero with a one-line message, no traceback.
        assert main(["engine", "query", "--store", str(store_dir),
                     "--top-k", "duration_s:2", "--agg", "count"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["engine", "query", "--store", str(store_dir),
                     "--limit", "3", "--group-by", "framework"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["engine", "query", "--store", str(store_dir),
                     "--top-k", "duration_s:notanumber"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_parallel_matches_serial(self, store_dir, capsys):
        assert main(["engine", "query", "--store", str(store_dir), "--agg", "count"]) == 0
        serial_out = capsys.readouterr().out.splitlines()[0]
        assert main(["engine", "query", "--store", str(store_dir),
                     "--agg", "count", "--parallel", "2"]) == 0
        parallel_out = capsys.readouterr().out.splitlines()[0]
        assert serial_out == parallel_out


class TestIndexCli:
    @pytest.fixture(scope="class")
    def indexed_store(self, tmp_path_factory, trace):
        root = tmp_path_factory.mktemp("ixcli")
        trace_path = root / "trace.jsonl.gz"
        write_jsonl(trace, trace_path)
        store_dir = str(root / "store")
        assert main(["engine", "convert", "--trace", str(trace_path),
                     "--output", store_dir, "--chunk-rows", "64",
                     "--format", "v3"]) == 0
        assert main(["engine", "index", "build", "--store", store_dir]) == 0
        return store_dir

    def test_build_reports_columns(self, indexed_store, capsys):
        assert main(["engine", "index", "build", "--store", indexed_store]) == 0
        out = capsys.readouterr().out
        assert "indexed" in out
        assert "input_bytes" in out and "sorted" in out
        assert "framework" in out and "inverted" in out

    def test_status_fresh(self, indexed_store, capsys):
        assert main(["engine", "index", "status", "--store", indexed_store]) == 0
        out = capsys.readouterr().out
        assert "fresh" in out

    def test_status_json(self, indexed_store, capsys):
        import json

        assert main(["engine", "index", "status", "--store", indexed_store,
                     "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["fresh"] is True
        assert info["columns"]["framework"]["kind"] == "inverted"
        assert info["on_disk_bytes"] > 0

    def test_status_without_sidecar_fails(self, tmp_path_factory, trace, capsys):
        root = tmp_path_factory.mktemp("noix")
        trace_path = root / "trace.jsonl.gz"
        write_jsonl(trace, trace_path)
        bare = str(root / "store")
        assert main(["engine", "convert", "--trace", str(trace_path),
                     "--output", bare, "--chunk-rows", "64"]) == 0
        assert main(["engine", "index", "status", "--store", bare]) == 1
        assert "no index sidecar" in capsys.readouterr().out

    def test_query_explain_prints_plan_only(self, indexed_store, trace, capsys):
        value = trace.jobs[5].input_bytes
        assert main(["engine", "query", "--store", indexed_store,
                     "--where", "input_bytes == %r" % value,
                     "--limit", "5", "--explain"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("plan: index-probe")
        assert "chunks to touch" in out
        assert "scanned" not in out  # nothing executed

    def test_query_json_carries_plan_and_matches_scan(self, indexed_store,
                                                      trace, capsys):
        import json

        argv = ["engine", "query", "--store", indexed_store,
                "--where", "framework == %s" % trace.jobs[0].framework,
                "--agg", "count", "--json"]
        assert main(argv) == 0
        via_index = json.loads(capsys.readouterr().out)
        assert via_index["plan"]["used_index"] is True
        assert main(argv + ["--no-index"]) == 0
        via_scan = json.loads(capsys.readouterr().out)
        assert via_scan["plan"]["used_index"] is False
        assert via_index["aggregates"] == via_scan["aggregates"]

    def test_query_footer_shows_plan(self, indexed_store, capsys):
        assert main(["engine", "query", "--store", indexed_store,
                     "--agg", "count"]) == 0
        out = capsys.readouterr().out
        assert "-- plan:" in out

    def test_info_sizes_lists_index_bytes(self, indexed_store, capsys):
        assert main(["engine", "info", "--store", indexed_store,
                     "--sizes"]) == 0
        out = capsys.readouterr().out
        assert "index sidecar bytes (fresh)" in out
        assert main(["engine", "info", "--store", indexed_store,
                     "--json"]) == 0
        import json

        info = json.loads(capsys.readouterr().out)
        assert info["indexes"]["fresh"] is True

    def test_stale_status_and_query_warning(self, indexed_store, capsys):
        import json
        import os

        manifest_path = os.path.join(indexed_store, "index.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["manifest_sequence"] += 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        try:
            assert main(["engine", "index", "status",
                         "--store", indexed_store]) == 1
            assert "STALE" in capsys.readouterr().out
            assert main(["engine", "query", "--store", indexed_store,
                         "--where", "input_bytes > 1e6", "--agg", "count"]) == 0
            captured = capsys.readouterr()
            assert "stale index sidecar ignored" in captured.err
        finally:
            assert main(["engine", "index", "build",
                         "--store", indexed_store]) == 0
            capsys.readouterr()

    def test_drop_removes_sidecar(self, indexed_store, capsys):
        assert main(["engine", "index", "drop", "--store", indexed_store]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["engine", "index", "status", "--store", indexed_store]) == 1


class TestBoundedMemory:
    def test_store_scan_touches_one_chunk_at_a_time(self, trace, tmp_path, monkeypatch):
        """The aggregate path must never hold more than one chunk's arrays."""
        store = ChunkedTraceStore.write(tmp_path / "store", trace, chunk_rows=50)
        live = {"current": 0, "peak": 0}
        original = ChunkedTraceStore.read_chunk

        def tracking_read_chunk(self, index, columns=None):
            block = original(self, index, columns=columns)
            live["current"] += 1
            live["peak"] = max(live["peak"], live["current"])
            return block

        monkeypatch.setattr(ChunkedTraceStore, "read_chunk", tracking_read_chunk)
        query = Query().filter("input_bytes", ">", 0.0).aggregate(s=("sum", "input_bytes"))

        # Wrap execution so each block is "released" after its update: iterate
        # manually mirroring the streaming loop and assert one block is live.
        blocks_seen = 0
        for block in store.iter_chunks(columns=["input_bytes"]):
            blocks_seen += 1
            live["current"] -= 1
        assert blocks_seen == store.n_chunks
        assert live["peak"] == 1  # loads are strictly one-at-a-time

        result = execute(store, query)
        assert result.aggregates["s"] == pytest.approx(
            float(np.nansum(trace.dimension("input_bytes"))))
