"""Property-style round-trip tests: Trace <-> ColumnarTrace <-> chunked store."""

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, ColumnarTrace
from repro.errors import AnalysisError, TraceFormatError
from repro.traces import Job, Trace, iter_jsonl, load_workload, write_jsonl


def random_trace(seed, n_jobs=257, name="rt", machines=7):
    """A trace exercising every optional-field combination the schema allows."""
    rng = np.random.default_rng(seed)
    jobs = []
    for index in range(n_jobs):
        has_reduce = rng.random() < 0.6
        jobs.append(Job(
            job_id="job_%05d" % index,
            submit_time_s=float(rng.uniform(0, 86400)),
            duration_s=float(rng.lognormal(4, 2)),
            input_bytes=float(rng.lognormal(18, 4)),
            shuffle_bytes=float(rng.lognormal(15, 4)) if has_reduce else 0.0,
            output_bytes=float(rng.lognormal(14, 4)),
            map_task_seconds=float(rng.lognormal(5, 2)),
            reduce_task_seconds=float(rng.lognormal(4, 2)) if has_reduce else 0.0,
            map_tasks=int(rng.integers(1, 500)) if rng.random() < 0.8 else None,
            reduce_tasks=int(rng.integers(0, 100)) if rng.random() < 0.8 else None,
            name="wordcount step%d" % index if rng.random() < 0.5 else None,
            framework=str(rng.choice(["hive", "pig", "oozie", "native"]))
            if rng.random() < 0.7 else None,
            input_path="/data/part-%d" % rng.integers(0, 40) if rng.random() < 0.5 else None,
            output_path="/out/part-%d" % rng.integers(0, 40) if rng.random() < 0.3 else None,
            workload="RT" if rng.random() < 0.5 else None,
            cluster_label="c%d" % rng.integers(0, 5) if rng.random() < 0.2 else None,
        ))
    return Trace(jobs, name=name, machines=machines)


def assert_traces_equal(actual, expected):
    assert len(actual) == len(expected)
    assert actual.name == expected.name
    assert actual.machines == expected.machines
    for job_a, job_b in zip(actual.jobs, expected.jobs):
        assert job_a.to_dict() == job_b.to_dict()


class TestInMemoryRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trace_to_columnar_to_trace(self, seed):
        trace = random_trace(seed)
        assert_traces_equal(trace.to_columnar().to_trace(), trace)

    def test_empty_trace(self):
        trace = Trace([], name="empty", machines=None)
        columnar = trace.to_columnar()
        assert len(columnar) == 0 and columnar.is_empty()
        assert_traces_equal(columnar.to_trace(), trace)

    def test_columnar_accessors_match_trace(self):
        trace = random_trace(3)
        columnar = trace.to_columnar()
        for dim in ("input_bytes", "shuffle_bytes", "duration_s", "submit_time_s",
                    "total_bytes", "total_task_seconds"):
            np.testing.assert_allclose(columnar.dimension(dim), trace.dimension(dim))
        np.testing.assert_allclose(columnar.feature_matrix(), trace.feature_matrix())
        assert columnar.bytes_moved() == pytest.approx(trace.bytes_moved())
        assert columnar.total_task_seconds() == pytest.approx(trace.total_task_seconds())
        assert columnar.duration_s() == pytest.approx(trace.duration_s())
        naive_map_only = np.array([job.is_map_only for job in trace])
        np.testing.assert_array_equal(columnar.map_only_mask(), naive_map_only)

    def test_unknown_dimension_raises(self):
        with pytest.raises(AnalysisError):
            random_trace(0, n_jobs=3).to_columnar().dimension("nope")

    def test_direct_construction_sorts_by_submit_time(self):
        """The documented dict constructor must establish the sort invariant."""
        columnar = ColumnarTrace({
            "submit_time_s": [100.0, 0.0, 50.0],
            "duration_s": [1.0, 2.0, 3.0],
            "input_bytes": [10.0, 20.0, 30.0],
            "shuffle_bytes": [0.0, 0.0, 0.0],
            "output_bytes": [0.0, 0.0, 0.0],
            "map_task_seconds": [1.0, 1.0, 1.0],
            "reduce_task_seconds": [0.0, 0.0, 0.0],
            "job_id": ["late", "early", "mid"],
        })
        assert list(columnar.columns["job_id"]) == ["early", "mid", "late"]
        assert columnar.duration_s() == pytest.approx(101.0)  # 0 .. 100+1

    def test_from_jobs_sorts_by_submit_time(self):
        jobs = [
            Job(job_id="late", submit_time_s=100.0, duration_s=1.0, input_bytes=1.0,
                shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                reduce_task_seconds=0.0),
            Job(job_id="early", submit_time_s=5.0, duration_s=1.0, input_bytes=1.0,
                shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                reduce_task_seconds=0.0),
        ]
        columnar = ColumnarTrace.from_jobs(jobs)
        assert list(columnar.columns["job_id"]) == ["early", "late"]


class TestStoreRoundTrip:
    @pytest.mark.parametrize("chunk_rows", [10, 64, 10000])
    def test_disk_round_trip(self, tmp_path, chunk_rows):
        trace = random_trace(4)
        store = ChunkedTraceStore.write(tmp_path / "store", trace, chunk_rows=chunk_rows)
        assert store.n_jobs == len(trace)
        expected_chunks = max(1, -(-len(trace) // chunk_rows))
        assert store.n_chunks == expected_chunks
        assert_traces_equal(store.to_trace(), trace)

    def test_streamed_jobs_round_trip(self, tmp_path):
        """Write from a lazy file reader: no Trace is ever materialized."""
        trace = random_trace(5, n_jobs=83)
        path = tmp_path / "trace.jsonl.gz"
        write_jsonl(trace, path)
        store = ChunkedTraceStore.write(tmp_path / "store", iter_jsonl(path),
                                        chunk_rows=16, name=trace.name,
                                        machines=trace.machines)
        assert store.n_chunks == 6
        assert_traces_equal(store.to_trace(), trace)

    def test_load_columnar_matches_direct_conversion(self, tmp_path):
        trace = random_trace(6)
        store = ChunkedTraceStore.write(tmp_path / "store", trace, chunk_rows=50)
        from_store = store.load_columnar()
        direct = trace.to_columnar()
        assert set(from_store.columns) == set(direct.columns)
        for column in direct.columns:
            if from_store.columns[column].dtype.kind == "U":
                np.testing.assert_array_equal(from_store.columns[column],
                                              direct.columns[column])
            else:
                np.testing.assert_allclose(from_store.columns[column],
                                           direct.columns[column])

    def test_empty_store_round_trip(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "store", Trace([], name="empty"))
        assert store.n_jobs == 0
        assert store.to_trace().is_empty()

    def test_workload_trace_round_trip(self, tmp_path):
        trace = load_workload("CC-e", seed=2, scale=0.05)
        store = ChunkedTraceStore.write(tmp_path / "store", trace, chunk_rows=200)
        assert_traces_equal(store.to_trace(), trace)

    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            ChunkedTraceStore(tmp_path / "nope")

    def test_unknown_column_raises(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "store", random_trace(7, n_jobs=10))
        with pytest.raises(TraceFormatError):
            list(store.iter_chunks(columns=["no_such_column"]))

    def test_column_pruned_read(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "store", random_trace(8, n_jobs=30),
                                        chunk_rows=10)
        block = store.read_chunk(0, columns=["input_bytes"])
        assert set(block.columns) == {"input_bytes"}
        derived = store.read_chunk(0, columns=["total_bytes"])
        assert set(derived.columns) == {"input_bytes", "shuffle_bytes", "output_bytes"}
        assert derived.column("total_bytes").shape == (10,)
