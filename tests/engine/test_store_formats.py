"""Store format v2 (raw per-column .npy) and v1/v2 interoperability tests."""

import os

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, Predicate, TraceSource, execute, Query
from repro.errors import TraceFormatError
from repro.traces import Job, Trace


def _jobs(n):
    for index in range(n):
        yield Job(job_id="f%05d" % index, submit_time_s=index * 100.0, duration_s=40.0,
                  input_bytes=1e6 * (index + 1), shuffle_bytes=0.0, output_bytes=1e3,
                  map_task_seconds=9.0, reduce_task_seconds=0.0,
                  name="select row %d" % index,
                  input_path="/in/%d" % (index % 11), output_path="/out/%d" % (index % 5))


@pytest.fixture(scope="module")
def both_formats(tmp_path_factory):
    base = tmp_path_factory.mktemp("formats")
    v1 = ChunkedTraceStore.write(base / "v1.store", _jobs(500), chunk_rows=64,
                                 format_version=1)
    v2 = ChunkedTraceStore.write(base / "v2.store", _jobs(500), chunk_rows=64,
                                 format_version=2)
    return v1, v2


class TestFormatV2:
    def test_default_write_is_v2(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "s", _jobs(10), chunk_rows=4)
        assert store.format_version == 2
        assert store.info()["format_version"] == 2
        files = os.listdir(tmp_path / "s")
        assert any(name.endswith(".submit_time_s.npy") for name in files)
        assert not any(name.endswith(".npz") for name in files)

    def test_v2_reads_are_memory_mapped(self, both_formats):
        _v1, v2 = both_formats
        block = v2.read_chunk(0, columns=["input_bytes"])
        assert isinstance(block.column("input_bytes"), np.memmap)

    def test_unsupported_version_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="format version"):
            ChunkedTraceStore.write(tmp_path / "s", _jobs(4), format_version=99)

    def test_empty_store_roundtrip(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "empty", iter([]), chunk_rows=8)
        reopened = ChunkedTraceStore(tmp_path / "empty")
        assert reopened.n_jobs == 0
        assert list(reopened.iter_jobs()) == []
        assert store.format_version == 2

    def test_v2_backfills_late_columns(self, tmp_path):
        """A string column first seen mid-stream is padded into earlier chunks."""
        jobs = [Job(job_id="a", submit_time_s=0.0, duration_s=1.0, input_bytes=1.0,
                    shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                    reduce_task_seconds=0.0),
                Job(job_id="b", submit_time_s=1.0, duration_s=1.0, input_bytes=1.0,
                    shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                    reduce_task_seconds=0.0, name="late name")]
        store = ChunkedTraceStore.write(tmp_path / "late", iter(jobs), chunk_rows=1)
        assert "name" in store.columns
        first = store.read_chunk(0, columns=["name"])
        assert first.column("name")[0] == ""
        second = store.read_chunk(1, columns=["name"])
        assert second.column("name")[0] == "late name"


class TestV1V2Equivalence:
    def test_manifest_versions(self, both_formats):
        v1, v2 = both_formats
        assert (v1.format_version, v2.format_version) == (1, 2)
        assert v1.columns == v2.columns
        assert v1.chunk_rows() == v2.chunk_rows()

    def test_chunks_identical(self, both_formats):
        v1, v2 = both_formats
        for index in range(v1.n_chunks):
            a = v1.read_chunk(index)
            b = v2.read_chunk(index)
            assert sorted(a.columns) == sorted(b.columns)
            for name in a.columns:
                left = np.asarray(a.column(name))
                right = np.asarray(b.column(name))
                equal_nan = left.dtype.kind == "f"
                assert np.array_equal(left, right, equal_nan=equal_nan), name

    def test_zone_maps_identical(self, both_formats):
        v1, v2 = both_formats
        for index in range(v1.n_chunks):
            for column in ("submit_time_s", "input_bytes"):
                assert v1.chunk_zone(index, column) == v2.chunk_zone(index, column)

    def test_round_trip_jobs_identical(self, both_formats):
        v1, v2 = both_formats
        jobs_v1 = [job.to_dict() for job in v1.iter_jobs()]
        jobs_v2 = [job.to_dict() for job in v2.iter_jobs()]
        assert jobs_v1 == jobs_v2

    def test_query_results_identical(self, both_formats):
        v1, v2 = both_formats
        query = (Query().filter("input_bytes", ">", 2e8)
                 .aggregate(n=("count", "input_bytes"), total=("sum", "input_bytes")))
        a = execute(v1, query)
        b = execute(v2, query)
        assert a.aggregates == b.aggregates
        assert a.chunks_skipped == b.chunks_skipped

    def test_v2_to_v1_rewrite_round_trip(self, both_formats, tmp_path):
        """repro engine convert --format v1 semantics: v2 -> v1 -> same data."""
        _v1, v2 = both_formats
        back = ChunkedTraceStore.write(tmp_path / "back", v2.load_columnar(),
                                       chunk_rows=64, format_version=1)
        assert back.format_version == 1
        assert [j.to_dict() for j in back.iter_jobs()] == \
            [j.to_dict() for j in v2.iter_jobs()]


class TestZoneMapSkippingThroughTraceSource:
    def test_submit_hour_predicate_skips_chunks(self, both_formats, monkeypatch):
        """Derived submit_hour predicates prune chunks via submit_time_s zones."""
        _v1, store = both_formats
        reads = []
        original = ChunkedTraceStore.read_chunk

        def counting(self, index, columns=None):
            reads.append(index)
            return original(self, index, columns=columns)

        monkeypatch.setattr(ChunkedTraceStore, "read_chunk", counting)
        source = TraceSource.wrap(store)
        # 500 jobs, 100 s apart: hours 0..13; keep the first two hours only.
        blocks = list(source.iter_chunks(columns=["submit_time_s"],
                                         predicates=[Predicate("submit_hour", "<", 2.0)]))
        rows = sum(block.n_rows for block in blocks)
        assert rows == 72  # submit < 7200 s -> indices 0..71
        assert 0 < len(reads) < store.n_chunks  # later chunks were never read

    def test_submit_hour_zone_derived(self, both_formats):
        v1, v2 = both_formats
        for store in (v1, v2):
            zone = store.chunk_zone(0, "submit_hour")
            time_zone = store.chunk_zone(0, "submit_time_s")
            assert zone == [np.floor(time_zone[0] / 3600.0),
                            np.floor(time_zone[1] / 3600.0)]

    def test_predicate_rows_match_unfiltered_scan(self, both_formats):
        _v1, store = both_formats
        source = TraceSource.wrap(store)
        predicate = Predicate("input_bytes", ">=", 4.9e8)
        filtered = np.concatenate([
            block.column("input_bytes")
            for block in source.iter_chunks(columns=["input_bytes"],
                                            predicates=[predicate])])
        full = np.concatenate([
            block.column("input_bytes")
            for block in source.iter_chunks(columns=["input_bytes"])])
        assert np.array_equal(filtered, full[full >= 4.9e8])

    def test_materialized_source_applies_row_filter(self, both_formats):
        _v1, store = both_formats
        source = TraceSource.wrap(store.load_columnar())
        predicate = Predicate("submit_hour", "<", 1.0)
        rows = sum(block.n_rows
                   for block in source.iter_chunks(columns=["submit_time_s"],
                                                   predicates=[predicate]))
        assert rows == 36  # submit < 3600 s


class TestConvertCli:
    def test_convert_format_flags(self, tmp_path):
        from repro.cli import main
        from repro.traces.io import write_trace

        trace = Trace(list(_jobs(30)), name="cli")
        path = tmp_path / "trace.jsonl"
        write_trace(trace, str(path))
        v1_dir = tmp_path / "v1.store"
        v2_dir = tmp_path / "v2.store"
        assert main(["engine", "convert", "--trace", str(path),
                     "--output", str(v1_dir), "--format", "v1"]) == 0
        assert main(["engine", "convert", "--trace", str(path),
                     "--output", str(v2_dir), "--format", "v2"]) == 0
        assert ChunkedTraceStore(v1_dir).format_version == 1
        assert ChunkedTraceStore(v2_dir).format_version == 2
        assert main(["engine", "info", "--store", str(v2_dir)]) == 0
