"""Unit tests for the shared-scan pipeline (engine/pipeline.py)."""

import numpy as np
import pytest

from repro.engine import (
    ChunkConsumer,
    ChunkedTraceStore,
    GatherConsumer,
    ParallelExecutor,
    ScanPipeline,
    SummaryConsumer,
    TraceSource,
    fold_consumer,
)
from repro.errors import AnalysisError
from repro.traces import Job, Trace


def _jobs(n, dt=10.0):
    for index in range(n):
        yield Job(job_id="j%05d" % index, submit_time_s=index * dt, duration_s=30.0,
                  input_bytes=float(index + 1), shuffle_bytes=0.0, output_bytes=1.0,
                  map_task_seconds=5.0, reduce_task_seconds=0.0,
                  input_path="/p/%d" % (index % 7), output_path="/o/%d" % (index % 3))


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline") / "jobs.store"
    return ChunkedTraceStore.write(directory, _jobs(1000), chunk_rows=100)


class SumInputBytes(ChunkConsumer):
    """Toy consumer: sum of input_bytes plus a row count."""

    columns = ("input_bytes",)

    def __init__(self, name="sum_bytes"):
        self.name = name

    def make_state(self):
        return {"total": 0.0, "rows": 0}

    def fold(self, state, chunk):
        state["total"] += float(np.nansum(chunk.column("input_bytes")))
        state["rows"] += chunk.n_rows
        return state

    def merge(self, a, b):
        a["total"] += b["total"]
        a["rows"] += b["rows"]
        return a


class FirstRowTimes(ChunkConsumer):
    """Ordered consumer recording each chunk's first submit time in order."""

    ordered = True
    columns = ("submit_time_s",)

    def __init__(self, name="first_rows"):
        self.name = name

    def make_state(self):
        return []

    def fold(self, state, chunk):
        state.append(float(chunk.column("submit_time_s")[0]))
        return state


class Exploding(ChunkConsumer):
    columns = ("input_bytes",)

    def __init__(self, name="exploding"):
        self.name = name

    def make_state(self):
        return None

    def fold(self, state, chunk):
        raise AnalysisError("boom")


class TestSerialPipeline:
    def test_multiple_consumers_one_scan(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(SumInputBytes())
        pipeline.add(SummaryConsumer(trace_name=store.name))
        result = pipeline.run()
        assert result.chunks_scanned == store.n_chunks
        assert result.rows_scanned == 1000
        assert result.value("sum_bytes")["total"] == sum(range(1, 1001))
        assert result.value("summary").n_jobs == 1000

    def test_column_union(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(SumInputBytes())
        pipeline.add(FirstRowTimes())
        assert set(pipeline.columns()) == {"input_bytes", "submit_time_s"}

    def test_all_columns_consumer_forces_full_decode(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(SumInputBytes())
        pipeline.add(GatherConsumer([0, 10], name="g", trace_name=store.name))
        assert pipeline.columns() is None  # gather wants every stored column

    def test_duplicate_names_rejected(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(SumInputBytes())
        with pytest.raises(AnalysisError):
            pipeline.add(SumInputBytes())

    def test_missing_column_isolated(self, store):
        class NeedsMissing(ChunkConsumer):
            columns = ("no_such_column",)
            name = "missing"

            def make_state(self):
                return None

            def fold(self, state, chunk):
                return state

        pipeline = ScanPipeline(store)
        pipeline.add(SumInputBytes())
        pipeline.add(NeedsMissing())
        result = pipeline.run()
        assert result.value("sum_bytes")["rows"] == 1000
        with pytest.raises(AnalysisError, match="no_such_column"):
            result.value("missing")

    def test_fold_error_isolated(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(Exploding())
        pipeline.add(SumInputBytes())
        result = pipeline.run()
        assert result.value("sum_bytes")["rows"] == 1000
        with pytest.raises(AnalysisError, match="boom"):
            result.value("exploding")

    def test_ordered_consumer_sees_chunks_in_order(self, store):
        pipeline = ScanPipeline(store)
        pipeline.add(FirstRowTimes())
        times = pipeline.run().value("first_rows")
        assert times == sorted(times)
        assert len(times) == store.n_chunks

    def test_unsorted_store_fails_ordered_only(self, tmp_path):
        jobs = list(_jobs(50))
        jobs.reverse()  # decreasing submit times
        directory = tmp_path / "unsorted.store"
        ChunkedTraceStore.write(directory, iter(jobs), chunk_rows=10)
        pipeline = ScanPipeline(ChunkedTraceStore(directory))
        pipeline.add(FirstRowTimes())
        pipeline.add(SumInputBytes())
        result = pipeline.run()
        assert result.value("sum_bytes")["rows"] == 50
        with pytest.raises(AnalysisError, match="not sorted by submit time"):
            result.value("first_rows")

    def test_materialized_source(self, store):
        trace = store.to_trace()
        serial = fold_consumer(trace, SumInputBytes())
        assert serial["total"] == sum(range(1, 1001))


class TestParallelPipeline:
    def test_parallel_matches_serial(self, store):
        def build(executor):
            pipeline = ScanPipeline(store, executor=executor)
            pipeline.add(SumInputBytes())
            pipeline.add(SummaryConsumer(trace_name=store.name))
            pipeline.add(FirstRowTimes())
            pipeline.add(GatherConsumer(np.array([3, 333, 999]), name="g",
                                        trace_name=store.name))
            return pipeline.run()

        serial = build(None)
        parallel = build(ParallelExecutor(processes=3))
        assert parallel.value("sum_bytes") == serial.value("sum_bytes")
        assert parallel.value("summary") == serial.value("summary")
        assert parallel.value("first_rows") == serial.value("first_rows")
        assert np.array_equal(parallel.value("g").block.column("input_bytes"),
                              serial.value("g").block.column("input_bytes"))
        assert parallel.chunks_scanned == store.n_chunks

    def test_parallel_error_isolated(self, store):
        pipeline = ScanPipeline(store, executor=ParallelExecutor(processes=2))
        pipeline.add(Exploding())
        pipeline.add(SumInputBytes())
        result = pipeline.run()
        assert result.value("sum_bytes")["total"] == sum(range(1, 1001))
        with pytest.raises(AnalysisError, match="boom"):
            result.value("exploding")


class TestGatherConsumer:
    def test_matches_source_gather(self, store):
        indices = np.array([0, 1, 99, 100, 101, 555, 999])
        gathered = fold_consumer(store, GatherConsumer(indices, trace_name=store.name))
        reference = TraceSource.wrap(store).gather(indices)
        for column in ("submit_time_s", "input_bytes", "job_id"):
            assert np.array_equal(gathered.block.column(column),
                                  reference.block.column(column))

    def test_out_of_range_index(self, store):
        with pytest.raises(AnalysisError, match="out of range"):
            fold_consumer(store, GatherConsumer([5000], trace_name=store.name))

    def test_unsorted_indices_rejected(self):
        with pytest.raises(AnalysisError, match="sorted"):
            GatherConsumer([5, 3])


class TestWorkerStoreReuse:
    def test_get_worker_store_caches_and_reopens(self, store, tmp_path):
        from repro.engine import get_worker_store

        first = get_worker_store(store.directory)
        assert get_worker_store() is first
        assert get_worker_store(store.directory) is first
        other_dir = tmp_path / "other.store"
        ChunkedTraceStore.write(other_dir, _jobs(10), chunk_rows=5)
        other = get_worker_store(str(other_dir))
        assert other is not first
        assert other.directory == str(other_dir)
