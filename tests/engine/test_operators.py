"""Operator correctness: engine queries vs. naive Job-list computations."""

import numpy as np
import pytest

from repro.engine import (
    ChunkedTraceStore,
    ColumnarTrace,
    HistogramSketch,
    Predicate,
    Query,
    execute,
    make_aggregate,
    parse_aggregate_spec,
)
from repro.errors import AnalysisError
from repro.traces import Job, Trace


def build_trace(n_jobs=200):
    rng = np.random.default_rng(42)
    jobs = []
    for index in range(n_jobs):
        jobs.append(Job(
            job_id="q%04d" % index,
            submit_time_s=float(index * 10),
            duration_s=float(rng.lognormal(3, 1.5)),
            input_bytes=float(10 ** rng.uniform(2, 12)),
            shuffle_bytes=0.0 if index % 3 == 0 else float(rng.lognormal(12, 3)),
            output_bytes=float(rng.lognormal(10, 3)),
            map_task_seconds=float(rng.lognormal(4, 1)),
            reduce_task_seconds=0.0 if index % 3 == 0 else float(rng.lognormal(3, 1)),
            framework=str(["hive", "pig", "native"][index % 3]),
        ))
    return Trace(jobs, name="ops")


@pytest.fixture(scope="module")
def trace():
    return build_trace()


@pytest.fixture(scope="module")
def columnar(trace):
    return trace.to_columnar()


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("opstore") / "store"
    return ChunkedTraceStore.write(directory, trace, chunk_rows=32)


@pytest.fixture(scope="module", params=["columnar", "store"])
def source(request, columnar, store):
    return columnar if request.param == "columnar" else store


class TestFilterAggregate:
    def test_count_sum_mean_min_max_match_naive(self, trace, source):
        threshold = 1e8
        query = (Query().filter("input_bytes", ">", threshold)
                 .aggregate(n=("count", "input_bytes"),
                            total=("sum", "input_bytes"),
                            mean=("mean", "duration_s"),
                            lo=("min", "duration_s"),
                            hi=("max", "duration_s")))
        result = execute(source, query)
        naive = [job for job in trace if job.input_bytes > threshold]
        assert result.aggregates["n"] == len(naive)
        assert result.aggregates["total"] == pytest.approx(sum(j.input_bytes for j in naive))
        assert result.aggregates["mean"] == pytest.approx(
            np.mean([j.duration_s for j in naive]))
        assert result.aggregates["lo"] == pytest.approx(min(j.duration_s for j in naive))
        assert result.aggregates["hi"] == pytest.approx(max(j.duration_s for j in naive))

    def test_multiple_predicates_are_anded(self, trace, source):
        query = (Query().filter("input_bytes", ">", 1e6)
                 .filter("framework", "==", "hive").count())
        result = execute(source, query)
        naive = [j for j in trace if j.input_bytes > 1e6 and j.framework == "hive"]
        assert result.aggregates["count"] == len(naive)

    def test_derived_column_aggregate(self, trace, source):
        query = Query().aggregate(moved=("sum", "total_bytes"))
        assert execute(source, query).aggregates["moved"] == pytest.approx(trace.bytes_moved())

    def test_percentile_sketch_close_to_exact(self, trace, source):
        query = Query().aggregate(p50=("p50", "input_bytes"), p95=("p95", "input_bytes"))
        result = execute(source, query)
        values = trace.dimension("input_bytes")
        for label, q in (("p50", 50), ("p95", 95)):
            exact = float(np.percentile(values, q))
            # The log-spaced sketch has ~7% bin resolution.
            assert result.aggregates[label] == pytest.approx(exact, rel=0.15)

    def test_cdf_sketch_fractions(self, source, trace):
        result = execute(source, Query().aggregate(cdf=("cdf", "input_bytes")))
        points = result.aggregates["cdf"]
        assert points[-1][1] == pytest.approx(1.0)
        fractions = [fraction for _value, fraction in points]
        assert fractions == sorted(fractions)
        # Compare with the exact CDF at the sketch's midpoint values.
        values = np.sort(trace.dimension("input_bytes"))
        mid_value, mid_fraction = points[len(points) // 2]
        exact_fraction = np.searchsorted(values, mid_value, side="right") / values.size
        assert mid_fraction == pytest.approx(exact_fraction, abs=0.05)

    def test_empty_match_aggregates(self, source):
        query = (Query().filter("input_bytes", ">", 1e30)
                 .aggregate(n=("count", "input_bytes"), m=("mean", "input_bytes"),
                            lo=("min", "input_bytes")))
        result = execute(source, query)
        assert result.aggregates == {"n": 0, "m": None, "lo": None}


class TestGroupBy:
    def test_grouped_aggregates_match_naive(self, trace, source):
        query = (Query().group_by("framework")
                 .aggregate(n=("count", "duration_s"), total=("sum", "input_bytes")))
        result = execute(source, query)
        expected = {}
        for job in trace:
            entry = expected.setdefault(job.framework, [0, 0.0])
            entry[0] += 1
            entry[1] += job.input_bytes
        assert set(result.groups) == set(expected)
        for key, (count, total) in expected.items():
            assert result.groups[key]["n"] == count
            assert result.groups[key]["total"] == pytest.approx(total)

    def test_group_by_without_aggregate_raises(self, source):
        with pytest.raises(AnalysisError):
            execute(source, Query().group_by("framework"))

    def test_group_by_numeric_with_missing_values(self, tmp_path):
        """NaN keys pool under one None group instead of being dropped."""
        jobs = []
        for index, map_tasks in enumerate([1, None, 1, None, 2, None]):
            jobs.append(Job(job_id="g%d" % index, submit_time_s=float(index),
                            duration_s=1.0, input_bytes=10.0, shuffle_bytes=0.0,
                            output_bytes=1.0, map_task_seconds=1.0,
                            reduce_task_seconds=0.0, map_tasks=map_tasks))
        store = ChunkedTraceStore.write(tmp_path / "store", Trace(jobs), chunk_rows=2)
        result = execute(store, Query().group_by("map_tasks")
                         .aggregate(n=("count", "input_bytes")))
        assert result.groups == {1.0: {"n": 2}, 2.0: {"n": 1}, None: {"n": 3}}

    def test_group_by_high_cardinality_column(self, tmp_path):
        jobs = [Job(job_id="u%03d" % index, submit_time_s=float(index), duration_s=1.0,
                    input_bytes=float(index), shuffle_bytes=0.0, output_bytes=1.0,
                    map_task_seconds=1.0, reduce_task_seconds=0.0)
                for index in range(50)]
        store = ChunkedTraceStore.write(tmp_path / "store", Trace(jobs), chunk_rows=16)
        result = execute(store, Query().group_by("job_id")
                         .aggregate(s=("sum", "input_bytes")))
        assert len(result.groups) == 50
        assert result.groups["u007"]["s"] == 7.0


class TestTopKAndLimit:
    def test_top_k_largest_matches_sort(self, trace, source):
        query = Query().top("duration_s", 7).project(["job_id", "duration_s"])
        result = execute(source, query)
        rows = result.row_dicts()
        expected = sorted(trace, key=lambda job: job.duration_s, reverse=True)[:7]
        assert [row["job_id"] for row in rows] == [job.job_id for job in expected]
        values = [row["duration_s"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_top_k_smallest(self, trace, source):
        query = Query().top("input_bytes", 5, largest=False).project(["job_id"])
        rows = execute(source, query).row_dicts()
        expected = sorted(trace, key=lambda job: job.input_bytes)[:5]
        assert [row["job_id"] for row in rows] == [job.job_id for job in expected]

    def test_top_k_with_filter(self, trace, source):
        query = (Query().filter("framework", "==", "pig")
                 .top("input_bytes", 3).project(["job_id", "framework"]))
        rows = execute(source, query).row_dicts()
        assert all(row["framework"] == "pig" for row in rows)
        expected = sorted((j for j in trace if j.framework == "pig"),
                          key=lambda job: job.input_bytes, reverse=True)[:3]
        assert [row["job_id"] for row in rows] == [job.job_id for job in expected]

    def test_limit_short_circuits_store_scan(self, store):
        query = Query().limit(5).project(["job_id"])
        result = execute(store, query)
        assert result.rows.n_rows == 5
        assert result.chunks_scanned == 1  # later chunks never read
        assert result.chunks_scanned + result.chunks_skipped < store.n_chunks

    def test_collect_all_columns_without_projection(self, source):
        result = execute(source, Query().filter("framework", "==", "native").limit(2))
        rows = result.row_dicts()
        assert len(rows) == 2
        assert {"job_id", "input_bytes", "submit_time_s"} <= set(rows[0])

    def test_aggregate_and_top_k_conflict(self, source):
        query = Query().count().top("duration_s", 2)
        with pytest.raises(AnalysisError):
            execute(source, query)


class TestZoneMaps:
    def test_unmatchable_filter_skips_all_chunks(self, store):
        query = Query().filter("input_bytes", ">", 1e30).count()
        result = execute(store, query)
        assert result.aggregates["count"] == 0
        assert result.chunks_scanned == 0
        assert result.chunks_skipped == store.n_chunks

    def test_time_range_filter_skips_some_chunks(self, store):
        # Data is sorted by submit time, so a tight window prunes most chunks.
        query = (Query().filter("submit_time_s", ">=", 0.0)
                 .filter("submit_time_s", "<", 300.0).count())
        result = execute(store, query)
        assert result.aggregates["count"] == 30
        assert result.chunks_skipped > 0
        assert result.chunks_scanned < store.n_chunks

    def test_pruning_never_changes_answers(self, store, columnar):
        query = Query().filter("duration_s", ">", 50.0).aggregate(
            n=("count", "duration_s"), s=("sum", "duration_s"))
        pruned = execute(store, query)
        unpruned = execute(columnar, query)
        assert pruned.aggregates["n"] == unpruned.aggregates["n"]
        assert pruned.aggregates["s"] == pytest.approx(unpruned.aggregates["s"])


class TestAggregateStates:
    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(10, 3, size=10000)
        for op in ("count", "sum", "min", "max", "mean", "p90"):
            whole = make_aggregate(op)
            whole.update(values)
            left, right = make_aggregate(op), make_aggregate(op)
            left.update(values[:3000])
            right.update(values[3000:])
            left.merge(right)
            assert left.result() == pytest.approx(whole.result())

    def test_sketch_handles_zeros_and_nans(self):
        sketch = HistogramSketch()
        sketch.update(np.array([0.0, 0.0, 1.0, 10.0, float("nan")]))
        assert sketch.n == 4
        assert sketch.zero_count == 2
        assert sketch.percentile(0) == 0.0
        assert sketch.percentile(100) == pytest.approx(10.0)

    def test_sketch_rejects_negative(self):
        with pytest.raises(AnalysisError):
            HistogramSketch().update(np.array([-1.0]))

    def test_unknown_op_raises(self):
        with pytest.raises(AnalysisError):
            make_aggregate("median-of-medians")

    def test_parse_aggregate_spec(self):
        assert parse_aggregate_spec("count") == ("count", "count", "submit_time_s")
        assert parse_aggregate_spec("sum:input_bytes") == ("sum:input_bytes", "sum", "input_bytes")
        label, op, column = parse_aggregate_spec("percentile:99.5:duration_s")
        assert op == "percentile:99.5" and column == "duration_s"
        with pytest.raises(AnalysisError):
            parse_aggregate_spec("nonsense")


class TestPredicates:
    def test_bad_op_raises(self):
        with pytest.raises(AnalysisError):
            Predicate("input_bytes", "~=", 1)

    def test_finite_keeps_recorded_rows(self):
        jobs = [
            Job(job_id="a", submit_time_s=0.0, duration_s=1.0, input_bytes=1.0,
                shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                reduce_task_seconds=0.0, map_tasks=4),
            Job(job_id="b", submit_time_s=1.0, duration_s=1.0, input_bytes=1.0,
                shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                reduce_task_seconds=0.0, map_tasks=None),
        ]
        columnar = ColumnarTrace.from_jobs(jobs)
        result = execute(columnar, Query().filter("map_tasks", "finite").count())
        assert result.aggregates["count"] == 1

    def test_numeric_column_vs_non_numeric_value_raises(self):
        jobs = [Job(job_id="a", submit_time_s=0.0, duration_s=1.0, input_bytes=1.0,
                    shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=1.0,
                    reduce_task_seconds=0.0)]
        columnar = ColumnarTrace.from_jobs(jobs)
        with pytest.raises(AnalysisError):
            execute(columnar, Query().filter("input_bytes", "==", "abc").count())

    def test_zone_admission_logic(self):
        predicate = Predicate("x", ">", 10.0)
        assert not predicate.admits_zone([0.0, 10.0])
        assert predicate.admits_zone([0.0, 10.5])
        assert predicate.admits_zone(None)
        equals = Predicate("x", "==", 5.0)
        assert equals.admits_zone([0.0, 10.0])
        assert not equals.admits_zone([6.0, 10.0])

    def test_zone_nan_bounds_admit(self):
        # A NaN bound means the zone is unreliable (hand-written / corrupted
        # manifest); skipping on it would silently drop rows, so it must admit.
        nan = float("nan")
        for zone in ([nan, nan], [0.0, nan], [nan, 5.0]):
            assert Predicate("x", ">", 10.0).admits_zone(zone)
            assert Predicate("x", "==", 1.0).admits_zone(zone)
            assert Predicate("x", "<=", -1.0).admits_zone(zone)

    def test_zone_infinite_bounds_admit(self):
        zone = [float("-inf"), float("inf")]
        assert Predicate("x", "==", 1.0).admits_zone(zone)
        assert Predicate("x", "<", 1.0).admits_zone(zone)
        assert Predicate("x", ">", 1.0).admits_zone(zone)

    def test_zone_absent_column_admits(self):
        # Absent and string columns have no zone in the manifest -> None -> scan.
        assert Predicate("framework", "==", "hive").admits_zone(None)
        assert Predicate("no_such_column", "<", 0.0).admits_zone(None)

    def test_zone_unparsable_value_admits(self):
        assert Predicate("x", "==", "abc").admits_zone([0.0, 1.0])

    def test_zone_finite_and_ne_always_admit(self):
        # "finite" matches NaN-free rows the zone says nothing about; "!="
        # can match inside any zone.
        assert Predicate("x", "finite").admits_zone([0.0, 1.0])
        assert Predicate("x", "!=", 5.0).admits_zone([6.0, 7.0])

    def test_zone_boundary_equality_semantics(self):
        zone = [0.0, 1.0]
        assert Predicate("x", "<=", 0.0).admits_zone(zone)
        assert not Predicate("x", "<", 0.0).admits_zone(zone)
        assert Predicate("x", ">=", 1.0).admits_zone(zone)
        assert not Predicate("x", ">", 1.0).admits_zone(zone)
        assert Predicate("x", "==", 0.0).admits_zone(zone)
        assert Predicate("x", "==", 1.0).admits_zone(zone)
        assert not Predicate("x", "==", 1.0000001).admits_zone(zone)
