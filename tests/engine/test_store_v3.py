"""Store format v3: block compression, dictionary strings, code-native reads.

The acceptance contract of the v3 format is *bit-identity*: every column a
v3 store decodes — and every characterization row computed over it, serial
or resumed — must equal the v1/v2 result exactly, while the bytes on disk
shrink.  These tests pin that contract plus the codec/dictionary round-trip
properties the format is built on.
"""

import json
import os

import numpy as np
import pytest

from repro.bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, run_suite
from repro.cli import main
from repro.core import run_characterization_scan
from repro.engine import (
    ChunkedTraceStore,
    Query,
    StringDictionary,
    append_store,
    available_codecs,
    execute,
)
from repro.engine.codecs import (
    DICTIONARY_NAME,
    StoreDictionary,
    delta_decode_floats,
    delta_encode_floats,
    pack_block,
    read_block_header,
    unpack_block,
)
from repro.engine.pipeline import find_store_checkpoints
from repro.errors import TraceFormatError
from repro.traces import Job, Trace

ALL_COLUMNS = ("job_id", "submit_time_s", "duration_s", "input_bytes",
               "shuffle_bytes", "output_bytes", "map_task_seconds",
               "reduce_task_seconds", "name", "input_path", "output_path")


def _jobs(n, start=0):
    for index in range(start, start + n):
        yield Job(job_id="j%06d" % index, submit_time_s=index * 7.25,
                  duration_s=40.0 + index % 13, input_bytes=1e6 * (index + 1),
                  shuffle_bytes=float(index % 3), output_bytes=1e3,
                  map_task_seconds=9.0, reduce_task_seconds=0.5,
                  name="job kind %d" % (index % 7),
                  input_path="/in/%d" % (index % 11),
                  output_path="/out/%d" % (index % 5))


def _columns(store):
    blocks = [store.read_chunk(i) for i in range(store.n_chunks)]
    return {name: np.concatenate([b.column(name) for b in blocks])
            for name in store.columns}


def _bit_equal(a, b):
    """Bit-exact equality (NaN == NaN for float columns)."""
    if a.dtype.kind == "f":
        return np.array_equal(np.asarray(a).view(np.uint64),
                              np.asarray(b).view(np.uint64))
    return np.array_equal(a, b)


@pytest.fixture(scope="module")
def three_formats(cc_e_trace, tmp_path_factory):
    base = tmp_path_factory.mktemp("v3formats")
    return {
        version: ChunkedTraceStore.write(base / ("v%d.store" % version),
                                         cc_e_trace, chunk_rows=1024,
                                         name=cc_e_trace.name,
                                         format_version=version)
        for version in (1, 2, 3)
    }


# ---------------------------------------------------------------------------
# Block codec primitives
# ---------------------------------------------------------------------------
class TestBlockCodec:
    @pytest.mark.parametrize("codec", sorted(available_codecs()))
    @pytest.mark.parametrize("array", [
        np.arange(100, dtype=np.float64) * 1.5,
        np.arange(50, dtype=np.int64),
        np.array(["alpha", "", "gamma"] * 7),
        np.array([], dtype=np.float64),
    ], ids=["float64", "int64", "unicode", "empty"])
    def test_raw_roundtrip(self, codec, array):
        header, back = unpack_block(pack_block(array, "raw", codec), "<mem>")
        assert header["codec"] == codec
        assert header["rows"] == array.shape[0]
        assert back.dtype == array.dtype
        assert np.array_equal(back, array)

    def test_delta64_roundtrip_bit_exact(self):
        values = np.cumsum(np.random.default_rng(3).uniform(0, 9, 4000))
        header, back = unpack_block(pack_block(values, "delta64", "zlib"), "<mem>")
        assert header["encoding"] == "delta64"
        assert np.array_equal(back.view(np.uint64), values.view(np.uint64))

    def test_header_only_read(self, tmp_path):
        path = tmp_path / "b.bin"
        path.write_bytes(pack_block(np.arange(10, dtype=np.float64), "raw",
                                    "zlib", raw_bytes=80))
        header = read_block_header(path)
        assert (header["rows"], header["raw_bytes"]) == (10, 80)

    def test_unknown_codec_rejected(self):
        with pytest.raises(TraceFormatError, match="codec"):
            pack_block(np.arange(4, dtype=np.float64), "raw", "snappy")

    def test_corrupt_block_rejected(self):
        with pytest.raises(TraceFormatError):
            unpack_block(b"NOTABLOCK" * 4, "<mem>")


# ---------------------------------------------------------------------------
# Dictionary + delta property tests
# ---------------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

texts = st.lists(st.text(alphabet="ab/cd_0123", max_size=12), max_size=80)
floats = st.lists(st.floats(allow_nan=True, allow_infinity=True,
                            width=64), max_size=200)


class TestDictionaryProperties:
    @given(values=texts)
    @settings(deadline=None, max_examples=120)
    def test_encode_decode_roundtrip(self, values):
        table = StringDictionary()
        array = np.array(values, dtype="<U12") if values else np.array([], dtype="<U1")
        codes = table.encode(array)
        assert codes.dtype == np.uint32
        assert np.array_equal(table.decode(codes), array)

    @given(first=texts, second=texts)
    @settings(deadline=None, max_examples=120)
    def test_append_grown_dictionary_keeps_old_codes(self, first, second):
        table = StringDictionary()
        a = np.asarray(first, dtype="<U12")
        codes_a = table.encode(a)
        size_before = len(table)
        b = np.asarray(second, dtype="<U12")
        codes_b = table.encode(b)
        # Growth is append-only: earlier codes still decode to the same values.
        assert len(table) >= size_before
        assert np.array_equal(table.decode(codes_a), a)
        assert np.array_equal(table.decode(codes_b), b)

    @given(values=texts)
    @settings(deadline=None, max_examples=60)
    def test_sidecar_roundtrip(self, values, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("dict"))
        store_dict = StoreDictionary()
        codes = store_dict.column("name").encode(np.asarray(values, dtype="<U12"))
        store_dict.save(directory)
        back = StoreDictionary.load(directory)
        assert np.array_equal(back.column("name").decode(codes),
                              np.asarray(values, dtype="<U12"))

    @given(values=floats)
    @settings(deadline=None, max_examples=150)
    def test_delta_codec_bit_exact(self, values):
        array = np.asarray(values, dtype=np.float64)
        back = delta_decode_floats(delta_encode_floats(array))
        assert np.array_equal(back.view(np.uint64), array.view(np.uint64))

    def test_delta_codec_empty_and_constant(self):
        for array in (np.array([], dtype=np.float64), np.full(17, 3.5)):
            back = delta_decode_floats(delta_encode_floats(array))
            assert np.array_equal(back.view(np.uint64), array.view(np.uint64))

    def test_stale_sidecar_detected(self):
        table = StringDictionary(["a", "b"])
        with pytest.raises(TraceFormatError, match="dictionary"):
            table.decode(np.array([5], dtype=np.uint32))


# ---------------------------------------------------------------------------
# The v3 store itself
# ---------------------------------------------------------------------------
class TestFormatV3Store:
    def test_columns_bit_identical_across_formats(self, three_formats):
        reference = _columns(three_formats[2])
        for version in (1, 3):
            mine = _columns(three_formats[version])
            for name, values in reference.items():
                assert _bit_equal(mine[name], values), (version, name)

    def test_v3_disk_among_smallest(self, three_formats):
        sizes = {v: s.info()["on_disk_bytes"] for v, s in three_formats.items()}
        assert sizes[3] < sizes[2]
        assert sizes[3] <= 1.3 * sizes[1]

    def test_info_reports_codec_and_encodings(self, three_formats):
        info = three_formats[3].info()
        assert info["codec"] == "zlib"
        encodings = info["string_encodings"]
        assert {"job_id", "name", "input_path", "output_path"} <= set(encodings)
        assert set(encodings.values()) <= {"dict", "raw"}
        assert encodings["workload"] == "dict"  # constant column
        assert info["dictionary_bytes"] > 0
        # v1/v2 info keeps its historical shape (no codec keys).
        assert "codec" not in three_formats[2].info()

    def test_column_raw_sizes_v3_only(self, three_formats):
        raw = three_formats[3].column_raw_sizes()
        compressed = three_formats[3].column_sizes()
        assert raw is not None and set(raw) == set(compressed)
        assert sum(raw.values()) > sum(compressed.values())
        assert three_formats[2].column_raw_sizes() is None

    def test_adaptive_encoding_high_cardinality_goes_raw(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "wide", _jobs(2500),
                                        chunk_rows=2048, format_version=3)
        # 2048 distinct job ids in the first chunk beat the dictionary
        # threshold; the low-cardinality columns stay dictionary-coded.
        assert store.string_encodings["job_id"] == "raw"
        assert store.string_encodings["name"] == "dict"
        assert np.array_equal(_columns(store)["job_id"],
                              np.array(["j%06d" % i for i in range(2500)]))

    def test_lzma_codec_roundtrip(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "xz", _jobs(300),
                                        chunk_rows=128, format_version=3,
                                        codec="lzma")
        assert store.codec == "lzma"
        reopened = ChunkedTraceStore(tmp_path / "xz")
        assert np.array_equal(_columns(reopened)["input_bytes"],
                              np.array([1e6 * (i + 1) for i in range(300)]))

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="codec"):
            ChunkedTraceStore.write(tmp_path / "s", _jobs(4),
                                    format_version=3, codec="snappy")

    def test_codec_on_v2_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="codec"):
            ChunkedTraceStore.write(tmp_path / "s", _jobs(4),
                                    format_version=2, codec="zlib")

    def test_missing_dictionary_sidecar_rejected(self, tmp_path):
        directory = tmp_path / "s"
        ChunkedTraceStore.write(directory, _jobs(32), chunk_rows=16,
                                format_version=3)
        os.unlink(directory / DICTIONARY_NAME)
        with pytest.raises(TraceFormatError, match="dictionary"):
            ChunkedTraceStore(directory)

    def test_predicates_on_dictionary_columns(self, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "s", _jobs(200),
                                        chunk_rows=64, format_version=3)
        hits = execute(store, Query().filter("input_path", "==", "/in/3")
                       .aggregate(n=("count", "input_bytes")))
        assert hits.aggregates["n"] == sum(1 for i in range(200) if i % 11 == 3)
        misses = execute(store, Query().filter("input_path", "==", "/nowhere")
                         .aggregate(n=("count", "input_bytes")))
        assert misses.aggregates["n"] == 0
        inverted = execute(store, Query().filter("input_path", "!=", "/nowhere")
                           .aggregate(n=("count", "input_bytes")))
        assert inverted.aggregates["n"] == 200


# ---------------------------------------------------------------------------
# Append + checkpoint resume on v3
# ---------------------------------------------------------------------------
class TestV3Append:
    def test_append_bit_identical_to_v2(self, tmp_path):
        stores = {}
        for version in (2, 3):
            directory = tmp_path / ("v%d.store" % version)
            ChunkedTraceStore.write(directory, _jobs(300), chunk_rows=128,
                                    format_version=version)
            stores[version] = append_store(directory, _jobs(150, start=300))
        reference = _columns(stores[2])
        mine = _columns(stores[3])
        for name, values in reference.items():
            assert _bit_equal(mine[name], values), name

    def test_append_only_extends_dictionary(self, tmp_path):
        directory = tmp_path / "s"
        ChunkedTraceStore.write(directory, _jobs(100), chunk_rows=64,
                                format_version=3)
        with open(directory / DICTIONARY_NAME, "r", encoding="utf-8") as handle:
            before = json.load(handle)
        append_store(directory, _jobs(100, start=100))
        with open(directory / DICTIONARY_NAME, "r", encoding="utf-8") as handle:
            after = json.load(handle)
        for column, values in before["columns"].items():
            assert after["columns"][column][:len(values)] == values, column

    def test_checkpoint_resume_identical_to_cold(self, cc_e_trace, tmp_path):
        jobs = cc_e_trace.jobs
        cut = int(len(jobs) * 0.8)
        directory = tmp_path / "cc-e.v3.store"
        checkpoint = str(tmp_path / "scan.ck.json")
        ChunkedTraceStore.write(directory, Trace(jobs[:cut], name=cc_e_trace.name),
                                chunk_rows=1024, name=cc_e_trace.name,
                                format_version=3)
        run_characterization_scan(ChunkedTraceStore(directory),
                                  checkpoint_to=checkpoint)
        store = append_store(directory, Trace(jobs[cut:], name=cc_e_trace.name))
        cold = run_characterization_scan(store)
        resumed = run_characterization_scan(store, resume_from=checkpoint)
        assert resumed.value("summary") == cold.value("summary")
        for key in ("input_ranks", "output_ranks"):
            assert np.array_equal(resumed.value(key).frequencies,
                                  cold.value(key).frequencies), key
        naming_cold, naming_mine = cold.value("naming"), resumed.value("naming")
        assert naming_mine.by_jobs.shares == naming_cold.by_jobs.shares
        assert naming_mine.by_bytes.shares == naming_cold.by_bytes.shares
        hourly_cold, hourly_mine = cold.value("hourly"), resumed.value("hourly")
        assert np.array_equal(hourly_mine.jobs_per_hour, hourly_cold.jobs_per_hour)
        assert np.array_equal(hourly_mine.bytes_per_hour, hourly_cold.bytes_per_hour)


# ---------------------------------------------------------------------------
# Characterization suite rows across all three formats
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def suite_by_format(three_formats):
    def run(store):
        return {
            result.experiment_id: result
            for result in run_suite(traces={store.name: store},
                                    experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                                    include_ablations=False,
                                    include_simulation=False, shared_scan=True)
        }

    return {version: run(store) for version, store in three_formats.items()}


@pytest.mark.parametrize("experiment_id", CHARACTERIZATION_EXPERIMENT_IDS)
@pytest.mark.parametrize("version", (1, 3))
class TestThreeFormatSuiteEquality:
    def test_rows_identical(self, suite_by_format, version, experiment_id):
        baseline = suite_by_format[2][experiment_id]
        mine = suite_by_format[version][experiment_id]
        assert mine.rows == baseline.rows
        assert mine.headers == baseline.headers

    def test_series_identical(self, suite_by_format, version, experiment_id):
        baseline = suite_by_format[2][experiment_id]
        mine = suite_by_format[version][experiment_id]
        assert set(mine.series) == set(baseline.series)
        for key, points in baseline.series.items():
            assert mine.series[key] == points, key


# ---------------------------------------------------------------------------
# Conversion metadata carry + checkpoint guard
# ---------------------------------------------------------------------------
class TestConversionCarriesMetadata:
    def test_sequence_and_sortedness_survive(self, tmp_path):
        source_dir = tmp_path / "src.store"
        ChunkedTraceStore.write(source_dir, _jobs(100), chunk_rows=64,
                                format_version=2)
        append_store(source_dir, _jobs(50))  # duplicate times: unsorted append
        source = ChunkedTraceStore(source_dir)
        assert source.manifest_sequence == 1
        converted = ChunkedTraceStore.write(tmp_path / "out.store", source,
                                            chunk_rows=64, format_version=3)
        assert converted.manifest_sequence == source.manifest_sequence
        assert converted.sorted_by_submit_time == source.sorted_by_submit_time

    def test_find_store_checkpoints(self, tmp_path):
        directory = tmp_path / "s.store"
        store = ChunkedTraceStore.write(directory, _jobs(64), chunk_rows=32,
                                        format_version=2)
        assert find_store_checkpoints(store) == []
        checkpoint = str(tmp_path / "scan.ck.json")
        run_characterization_scan(store, checkpoint_to=checkpoint)
        # An unrelated JSON file next door must not trip the guard.
        (tmp_path / "notes.json").write_text("{\"hello\": 1}")
        assert find_store_checkpoints(ChunkedTraceStore(directory)) == [checkpoint]

    def test_cli_convert_refuses_checkpointed_source(self, tmp_path, capsys):
        directory = tmp_path / "s.store"
        store = ChunkedTraceStore.write(directory, _jobs(64), chunk_rows=32,
                                        format_version=2)
        run_characterization_scan(store, checkpoint_to=str(tmp_path / "ck.json"))
        code = main(["engine", "convert", "--store", str(directory),
                     "--output", str(tmp_path / "out.store"), "--format", "v3"])
        assert code == 1
        assert "refusing to convert" in capsys.readouterr().err
        os.unlink(tmp_path / "ck.json")
        os.unlink(tmp_path / "ck.json.npz")
        assert main(["engine", "convert", "--store", str(directory),
                     "--output", str(tmp_path / "out.store"),
                     "--format", "v3"]) == 0

    def test_cli_ingest_codec_creates_v3(self, tmp_path, capsys):
        trace_path = str(tmp_path / "jobs.jsonl")
        from repro.traces.io import write_trace
        write_trace(Trace(list(_jobs(80)), name="t"), trace_path)
        directory = str(tmp_path / "new.store")
        assert main(["engine", "ingest", "--store", directory,
                     "--trace", trace_path, "--codec", "zlib"]) == 0
        store = ChunkedTraceStore(directory)
        assert (store.format_version, store.codec) == (3, "zlib")
        # Second ingest appends, reusing the store codec; --codec now errors.
        assert main(["engine", "ingest", "--store", directory,
                     "--trace", trace_path]) == 0
        assert ChunkedTraceStore(directory).n_jobs == 160
        with pytest.raises(SystemExit):
            main(["engine", "ingest", "--store", directory,
                  "--trace", trace_path, "--codec", "zlib"])
