"""Parallel executor: serial-vs-parallel equivalence and fallback behavior."""

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, ParallelExecutor, Query, execute
from repro.errors import AnalysisError
from repro.traces import Job, Trace


def build_trace(n_jobs=300):
    rng = np.random.default_rng(7)
    jobs = [
        Job(job_id="p%04d" % index,
            submit_time_s=float(index),
            duration_s=float(rng.lognormal(3, 1)),
            input_bytes=float(10 ** rng.uniform(3, 11)),
            shuffle_bytes=float(rng.lognormal(10, 2)),
            output_bytes=float(rng.lognormal(9, 2)),
            map_task_seconds=float(rng.lognormal(4, 1)),
            reduce_task_seconds=float(rng.lognormal(3, 1)),
            framework=str(["hive", "pig"][index % 2]))
        for index in range(n_jobs)
    ]
    return Trace(jobs, name="par")


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("parstore") / "store"
    return ChunkedTraceStore.write(directory, build_trace(), chunk_rows=32)


class TestParallelEquivalence:
    def test_global_aggregates_match_serial(self, store):
        query = (Query().filter("input_bytes", ">", 1e6)
                 .aggregate(n=("count", "input_bytes"),
                            total=("sum", "input_bytes"),
                            mean=("mean", "duration_s"),
                            lo=("min", "duration_s"),
                            hi=("max", "duration_s"),
                            p95=("p95", "input_bytes")))
        serial = execute(store, query)
        parallel = ParallelExecutor(processes=3).run(store, query)
        for label in serial.aggregates:
            assert parallel.aggregates[label] == pytest.approx(serial.aggregates[label]), label
        assert parallel.rows_scanned == serial.rows_scanned
        assert parallel.rows_matched == serial.rows_matched
        assert (parallel.chunks_scanned + parallel.chunks_skipped
                == serial.chunks_scanned + serial.chunks_skipped)

    def test_grouped_aggregates_match_serial(self, store):
        query = (Query().group_by("framework")
                 .aggregate(n=("count", "duration_s"), s=("sum", "input_bytes")))
        serial = execute(store, query)
        parallel = ParallelExecutor(processes=4).run(store, query)
        assert set(parallel.groups) == set(serial.groups)
        for key in serial.groups:
            assert parallel.groups[key]["n"] == serial.groups[key]["n"]
            assert parallel.groups[key]["s"] == pytest.approx(serial.groups[key]["s"])

    def test_cdf_sketch_merges_exactly(self, store):
        query = Query().aggregate(cdf=("cdf", "input_bytes"))
        serial = execute(store, query).aggregates["cdf"]
        parallel = ParallelExecutor(processes=3).run(store, query).aggregates["cdf"]
        assert parallel == serial  # static bins: merge is exact, not approximate

    def test_more_workers_than_chunks(self, store):
        query = Query().count()
        result = ParallelExecutor(processes=64).run(store, query)
        assert result.aggregates["count"] == store.n_jobs


class TestFallbacks:
    def test_single_process_runs_serially(self, store):
        query = Query().count()
        assert ParallelExecutor(processes=1).run(store, query).aggregates["count"] == store.n_jobs

    def test_top_k_falls_back_to_serial(self, store):
        query = Query().top("duration_s", 4).project(["job_id"])
        serial = execute(store, query)
        fallback = ParallelExecutor(processes=3).run(store, query)
        assert [r["job_id"] for r in fallback.row_dicts()] == \
            [r["job_id"] for r in serial.row_dicts()]

    def test_limit_falls_back_and_short_circuits(self, store):
        query = Query().limit(3).project(["job_id"])
        result = ParallelExecutor(processes=3).run(store, query)
        assert result.rows.n_rows == 3
        assert result.chunks_scanned == 1

    def test_invalid_process_count_raises(self):
        with pytest.raises(AnalysisError):
            ParallelExecutor(processes=0)
