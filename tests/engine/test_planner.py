"""Cost-aware planner: access-path choices and bit-identical results."""

import numpy as np
import pytest

from repro.engine import (
    ChunkedTraceStore,
    Query,
    build_indexes,
    execute,
    execute_planned,
    plan_query,
)
from repro.traces import Job, Trace


def make_jobs(n, seed=0):
    rng = np.random.default_rng(seed)
    jobs = []
    for index in range(n):
        jobs.append(Job(
            job_id="pl%05d" % index,
            submit_time_s=float(index * 3),
            duration_s=float(rng.lognormal(3, 1.5)),
            input_bytes=float(10 ** rng.uniform(3, 11)),
            shuffle_bytes=float(rng.lognormal(10, 2)),
            output_bytes=float(rng.lognormal(9, 2)),
            map_task_seconds=float(rng.lognormal(4, 1)),
            reduce_task_seconds=float(rng.lognormal(3, 1)),
            map_tasks=int(rng.integers(1, 50)),
            reduce_tasks=int(rng.integers(0, 10)),
            framework=["hive", "pig", "native"][index % 3],
            # clustered: runs of 96 consecutive rows share a phase label, so
            # each phase lives in ~2 of the 64-row chunks
            workload="phase%03d" % (index // 96),
        ))
    return jobs


@pytest.fixture(scope="module", params=[2, 3])
def store(request, tmp_path_factory):
    directory = tmp_path_factory.mktemp("plstore") / ("v%d" % request.param)
    trace = Trace(make_jobs(640, seed=1), name="plan")
    handle = ChunkedTraceStore.write(directory, trace, chunk_rows=64,
                                     format_version=request.param)
    build_indexes(handle).save()
    return ChunkedTraceStore(directory)


@pytest.fixture(scope="module")
def jobs():
    return make_jobs(640, seed=1)


def assert_identical(store, query):
    """Planner output must be bit-identical to the raw scan path."""
    planned = execute(store, query)
    scanned = execute(store, query, use_planner=False)
    assert planned.plan is not None
    if planned.aggregates is not None:
        assert planned.aggregates == scanned.aggregates
    elif planned.groups is not None:
        assert planned.groups == scanned.groups
    else:
        assert planned.row_dicts() == scanned.row_dicts()
    return planned


class TestAccessPaths:
    def test_unfiltered_count_is_metadata_only(self, store):
        result = assert_identical(store, Query().count())
        assert result.plan.access_path == "metadata"
        assert result.chunks_scanned == 0

    def test_point_count_answered_from_index(self, store):
        value = execute(store, Query().limit(1)).row_dicts()[0]["input_bytes"]
        result = assert_identical(
            store, Query().filter("input_bytes", "==", value).count())
        assert result.plan.access_path == "index-count"
        assert result.chunks_scanned == 0

    def test_point_lookup_probes_exact_rows(self, store, jobs):
        value = jobs[321].input_bytes
        result = assert_identical(
            store, Query().filter("input_bytes", "==", value))
        assert result.plan.access_path == "index-probe"
        assert result.chunks_scanned <= 1

    def test_top_k_reads_index_tail(self, store):
        result = assert_identical(store, Query().top("duration_s", 7))
        assert result.plan.access_path == "index-topk"
        assert result.chunks_scanned < store.n_chunks

    def test_top_k_smallest(self, store):
        result = assert_identical(
            store, Query().top("duration_s", 7, largest=False))
        assert result.plan.access_path == "index-topk"

    def test_unselective_count_still_answered_from_index(self, store):
        # even at 100% selectivity a pure count needs no chunk decoded
        result = assert_identical(
            store, Query().filter("input_bytes", ">", 0.0).count())
        assert result.plan.access_path == "index-count"
        assert result.chunks_scanned == 0

    def test_unselective_aggregate_falls_back_to_scan(self, store):
        # a sum must decode data; the index proves ~every chunk matches, so
        # probing buys nothing and the planner keeps the plain scan
        result = assert_identical(
            store, Query().filter("input_bytes", ">", 0.0)
                          .aggregate(total=("sum", "input_bytes")))
        assert result.plan.access_path in ("scan", "zone-scan")
        assert result.chunks_scanned == store.n_chunks

    def test_no_index_flag_disables_probing(self, store, jobs):
        value = jobs[321].input_bytes
        query = Query().filter("input_bytes", "==", value).count()
        planned = execute_planned(store, query, use_index=False)
        assert not planned.plan.used_index
        assert planned.aggregates == execute(
            store, query, use_planner=False).aggregates

    def test_plan_is_inspectable(self, store, jobs):
        query = Query().filter("input_bytes", "==", jobs[321].input_bytes)
        plan = plan_query(store, query)
        as_dict = plan.to_dict()
        assert as_dict["access_path"] == "index-probe"
        assert as_dict["chunks_total"] == store.n_chunks
        assert as_dict["chunks_planned"] <= 1
        assert "input_bytes" in as_dict["index_columns"]
        assert plan.describe()  # multi-line explain text renders
        assert plan.summary()


class TestLimitEarlyTermination:
    def test_clustered_limit_touches_few_chunks(self, store):
        if store.format_version != 3:
            pytest.skip("inverted index needs the v3 dictionary")
        # phase007 occupies rows 672..768 -> 2-3 of 10 chunks
        query = (Query().filter("workload", "==", "phase003")
                 .limit(5).project(["job_id", "workload"]))
        result = assert_identical(store, query)
        assert result.plan.used_index
        assert result.chunks_scanned + result.plan.chunks_planned <= 3

    def test_range_limit_stops_early(self, store):
        query = Query().filter("submit_time_s", "<", 300.0).limit(10)
        result = assert_identical(store, query)
        assert result.plan.used_index
        assert result.chunks_scanned <= 2


class TestEquivalenceBattery:
    QUERIES = [
        Query().filter("input_bytes", ">", 1e8).count(),
        Query().filter("input_bytes", ">", 1e8)
               .aggregate(total=("sum", "input_bytes"),
                          mean=("mean", "duration_s")),
        Query().filter("framework", "==", "pig").count(),
        Query().filter("framework", "!=", "pig").count(),
        Query().filter("framework", "==", "absent").count(),
        Query().filter("framework", "==", "hive").limit(13),
        Query().filter("map_tasks", "finite").count(),
        Query().filter("submit_time_s", ">=", 900.0)
               .filter("input_bytes", "<", 1e9).count(),
        Query().top("input_bytes", 25).project(["job_id", "input_bytes"]),
        Query().top("map_tasks", 25),  # heavily tied values
        Query().top("map_tasks", 25, largest=False),
        Query().filter("input_bytes", ">", 1e8).group_by("framework").count(),
        Query().filter("duration_s", "<=", 40.0).limit(7),
        Query().limit(9),
    ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_planned_equals_scan(self, store, query_index):
        assert_identical(store, self.QUERIES[query_index])

    def test_results_match_naive_jobs(self, store, jobs):
        threshold = 1e8
        result = execute(
            store, Query().filter("input_bytes", ">", threshold).count())
        naive = sum(1 for job in jobs if job.input_bytes > threshold)
        assert result.aggregates["count"] == naive

    def test_top_k_ties_identical_across_paths(self, store):
        # map_tasks has ~50 distinct values over 640 rows: the boundary of
        # any top-k is tied, which is exactly where tie-break bugs live
        for k in (1, 5, 24, 50, 640):
            for largest in (True, False):
                query = (Query().top("map_tasks", k, largest=largest)
                         .project(["job_id", "map_tasks"]))
                assert_identical(store, query)
