"""Secondary-index sidecar: roundtrips, staleness, append extension."""

import json
import os

import numpy as np
import pytest

from repro.engine import (
    ChunkedTraceStore,
    InvertedColumnIndex,
    Query,
    SortedColumnIndex,
    StaleIndexError,
    StoreAppender,
    StoreIndexes,
    build_indexes,
    drop_indexes,
    execute,
    indexable_columns,
    load_indexes,
)
from repro.traces import Job, Trace


def make_jobs(n, seed=0, offset=0):
    rng = np.random.default_rng(seed)
    jobs = []
    for index in range(n):
        jobs.append(Job(
            job_id="ix%05d" % (offset + index),
            submit_time_s=float((offset + index) * 5),
            duration_s=float(rng.lognormal(3, 1.5)),
            input_bytes=float(10 ** rng.uniform(3, 11)),
            shuffle_bytes=float(rng.lognormal(10, 2)),
            output_bytes=float(rng.lognormal(9, 2)),
            map_task_seconds=float(rng.lognormal(4, 1)),
            reduce_task_seconds=float(rng.lognormal(3, 1)),
            map_tasks=int(rng.integers(1, 50)),
            reduce_tasks=int(rng.integers(0, 10)),
            framework=["hive", "pig", "native"][index % 3],
            workload="phase%03d" % ((offset + index) // 97),
        ))
    return jobs


def make_store(directory, n=300, seed=0, chunk_rows=64, format_version=3):
    trace = Trace(make_jobs(n, seed=seed), name="ixtest")
    return ChunkedTraceStore.write(directory, trace, chunk_rows=chunk_rows,
                                   format_version=format_version)


def assert_indexes_equal(left, right):
    assert sorted(left.columns) == sorted(right.columns)
    for name in left.columns:
        a, b = left.column(name), right.column(name)
        assert a.kind == b.kind
        for key, array in a.arrays().items():
            assert np.array_equal(array, b.arrays()[key]), (name, key)


# ---------------------------------------------------------------------------
# SortedColumnIndex against naive masks
# ---------------------------------------------------------------------------
class TestSortedColumnIndex:
    CHUNKS = [
        np.array([5.0, np.nan, 3.0, 3.0, -1.0]),
        np.array([np.nan, np.nan]),
        np.array([], dtype=np.float64),
        np.array([3.0, 100.0, 3.0, 0.5]),
    ]

    def naive_positions(self, op, value):
        import operator
        fn = {"==": operator.eq, "<": operator.lt, "<=": operator.le,
              ">": operator.gt, ">=": operator.ge}[op]
        out = []
        for chunk, values in enumerate(self.CHUNKS):
            for row, item in enumerate(values):
                if np.isfinite(item) and fn(item, value):
                    out.append((chunk, row))
        return out

    @pytest.mark.parametrize("op", ["==", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("value", [3.0, -1.0, 0.0, 100.0, 42.0])
    def test_probe_matches_naive(self, op, value):
        index = SortedColumnIndex.build("x", self.CHUNKS)
        lo, hi = index.probe(op, value)
        chunks, rows = index.positions(lo, hi)
        got = sorted(zip(chunks.tolist(), rows.tolist()))
        assert got == self.naive_positions(op, value)
        assert index.count(op, value) == len(got)
        counts = index.chunk_counts(lo, hi, len(self.CHUNKS))
        naive_counts = np.bincount([c for c, _ in got], minlength=len(self.CHUNKS))
        assert np.array_equal(counts, naive_counts)

    def test_values_sorted_with_store_order_ties(self):
        index = SortedColumnIndex.build("x", self.CHUNKS)
        assert np.all(np.diff(index.values) >= 0)
        # ties at 3.0 must be in (chunk, row) order
        lo, hi = index.probe("==", 3.0)
        positions = list(zip(index.chunks[lo:hi].tolist(),
                             index.rows[lo:hi].tolist()))
        assert positions == sorted(positions)
        assert positions == [(0, 2), (0, 3), (3, 0), (3, 2)]

    def test_nan_literal_probes_empty(self):
        index = SortedColumnIndex.build("x", self.CHUNKS)
        assert index.probe("==", float("nan")) == (0, 0)
        assert index.probe("<", "not-a-number") is None
        assert index.probe("finite", 1.0) is None

    def test_chunk_entries_counts_finite_rows(self):
        index = SortedColumnIndex.build("x", self.CHUNKS)
        assert index.chunk_entries.tolist() == [4, 0, 0, 4]

    def test_top_entries_matches_scan_tie_semantics(self):
        # ties at the boundary: scan keeps the *latest* store positions
        index = SortedColumnIndex.build("x", self.CHUNKS)
        picked = index.top_entries(3, largest=False)
        values = index.values[picked]
        positions = list(zip(index.chunks[picked].tolist(),
                             index.rows[picked].tolist()))
        assert values.tolist() == [-1.0, 0.5, 3.0]
        # four rows carry 3.0; the kept one must be the latest: (3, 2)
        assert positions[-1] == (3, 2)
        top = index.top_entries(2, largest=True)
        assert index.values[top].tolist() == [5.0, 100.0]
        assert index.top_entries(50, largest=True).shape[0] == index.entries


# ---------------------------------------------------------------------------
# InvertedColumnIndex against naive counts
# ---------------------------------------------------------------------------
class TestInvertedColumnIndex:
    CHUNKS = [
        np.array([0, 1, 0, 2, 1], dtype=np.uint32),
        np.array([], dtype=np.uint32),
        np.array([2, 2, 2], dtype=np.uint32),
        np.array([1, 0], dtype=np.uint32),
    ]

    def test_counts_match_naive(self):
        index = InvertedColumnIndex.build("s", self.CHUNKS)
        for code in (0, 1, 2, 3):
            naive = sum(int(np.sum(chunk == code)) for chunk in self.CHUNKS)
            assert index.count_code(code) == naive
            per_chunk = index.chunk_counts_code(code, len(self.CHUNKS))
            naive_per_chunk = [int(np.sum(chunk == code))
                               for chunk in self.CHUNKS]
            assert per_chunk.tolist() == naive_per_chunk

    def test_posting_row_ranges_bound_occurrences(self):
        index = InvertedColumnIndex.build("s", self.CHUNKS)
        for posting in range(index.postings):
            code = int(index.codes[posting])
            chunk = int(index.chunks[posting])
            rows = np.flatnonzero(self.CHUNKS[chunk] == code)
            assert index.first_rows[posting] == rows.min()
            assert index.last_rows[posting] == rows.max()
            assert index.counts[posting] == rows.shape[0]

    def test_missing_code_probes_empty(self):
        index = InvertedColumnIndex.build("s", self.CHUNKS)
        lo, hi = index.probe_code(99)
        assert lo == hi
        assert index.count_code(99) == 0

    def test_entries_cover_every_row(self):
        index = InvertedColumnIndex.build("s", self.CHUNKS)
        assert index.entries == sum(chunk.shape[0] for chunk in self.CHUNKS)
        assert index.chunk_entries.tolist() == [5, 0, 3, 2]


# ---------------------------------------------------------------------------
# Hypothesis property tests: build/probe roundtrips
# ---------------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

chunked_floats = st.lists(
    st.lists(st.one_of(st.floats(min_value=-1e6, max_value=1e6),
                       st.just(float("nan"))),
             max_size=12),
    min_size=1, max_size=6)

chunked_codes = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), max_size=12),
    min_size=1, max_size=6)


class TestIndexProperties:
    @settings(max_examples=60, deadline=None)
    @given(chunks=chunked_floats, value=st.floats(min_value=-1e6, max_value=1e6),
           op=st.sampled_from(["==", "<", "<=", ">", ">="]))
    def test_sorted_probe_equals_naive(self, chunks, value, op):
        arrays = [np.asarray(chunk, dtype=np.float64) for chunk in chunks]
        index = SortedColumnIndex.build("x", arrays)
        assert np.all(np.diff(index.values) >= 0)
        lo, hi = index.probe(op, value)
        got = sorted(zip(index.chunks[lo:hi].tolist(),
                         index.rows[lo:hi].tolist()))
        import operator
        fn = {"==": operator.eq, "<": operator.lt, "<=": operator.le,
              ">": operator.gt, ">=": operator.ge}[op]
        naive = [(c, r) for c, values in enumerate(arrays)
                 for r, item in enumerate(values)
                 if np.isfinite(item) and fn(item, value)]
        assert got == naive

    @settings(max_examples=60, deadline=None)
    @given(chunks=chunked_floats)
    def test_sorted_index_is_a_permutation_of_finite_rows(self, chunks):
        arrays = [np.asarray(chunk, dtype=np.float64) for chunk in chunks]
        index = SortedColumnIndex.build("x", arrays)
        got = sorted((int(c), int(r), float(v)) for c, r, v in
                     zip(index.chunks, index.rows, index.values))
        naive = sorted((c, r, float(item)) for c, values in enumerate(arrays)
                       for r, item in enumerate(values) if np.isfinite(item))
        assert got == naive
        assert index.chunk_entries.tolist() == [
            int(np.isfinite(values).sum()) for values in arrays]

    @settings(max_examples=60, deadline=None)
    @given(chunks=chunked_codes, code=st.integers(min_value=0, max_value=9))
    def test_inverted_counts_equal_naive(self, chunks, code):
        arrays = [np.asarray(chunk, dtype=np.uint32) for chunk in chunks]
        index = InvertedColumnIndex.build("s", arrays)
        naive_per_chunk = [int(np.sum(chunk == code)) for chunk in arrays]
        assert index.count_code(code) == sum(naive_per_chunk)
        assert index.chunk_counts_code(code, len(arrays)).tolist() == naive_per_chunk

    @settings(max_examples=40, deadline=None)
    @given(chunks=chunked_floats, split=st.integers(min_value=1, max_value=5))
    def test_sorted_incremental_extension_equals_rebuild(self, chunks, split):
        arrays = [np.asarray(chunk, dtype=np.float64) for chunk in chunks]
        split = min(split, len(arrays))
        base = SortedColumnIndex.build("x", arrays[:split])
        extended = base.extended(split, arrays[split:])
        rebuilt = SortedColumnIndex.build("x", arrays)
        for key, array in rebuilt.arrays().items():
            assert np.array_equal(array, extended.arrays()[key]), key

    @settings(max_examples=40, deadline=None)
    @given(chunks=chunked_codes, split=st.integers(min_value=1, max_value=5))
    def test_inverted_incremental_extension_equals_rebuild(self, chunks, split):
        arrays = [np.asarray(chunk, dtype=np.uint32) for chunk in chunks]
        split = min(split, len(arrays))
        base = InvertedColumnIndex.build("s", arrays[:split])
        extended = base.extended(split, arrays[split:])
        rebuilt = InvertedColumnIndex.build("s", arrays)
        for key, array in rebuilt.arrays().items():
            assert np.array_equal(array, extended.arrays()[key]), key


# ---------------------------------------------------------------------------
# The sidecar: save/load, staleness, append extension
# ---------------------------------------------------------------------------
class TestStoreIndexes:
    def test_indexable_columns_by_format(self, tmp_path):
        v3 = make_store(tmp_path / "v3", format_version=3)
        kinds = indexable_columns(v3)
        assert kinds["input_bytes"] == "sorted"
        assert kinds["framework"] == "inverted"
        assert "total_bytes" not in kinds  # derived columns are not indexed
        v2 = make_store(tmp_path / "v2", format_version=2)
        kinds_v2 = indexable_columns(v2)
        assert kinds_v2["input_bytes"] == "sorted"
        assert "framework" not in kinds_v2  # no dictionary in v2

    def test_save_load_roundtrip(self, tmp_path):
        store = make_store(tmp_path / "s")
        built = build_indexes(store)
        built.save()
        loaded = load_indexes(store)
        assert loaded is not None
        assert loaded.stale_reason(store) is None
        assert_indexes_equal(built, loaded)
        sizes = loaded.sizes()
        assert set(sizes) == set(loaded.columns)
        assert all(size > 0 for size in sizes.values())

    def test_load_missing_returns_none(self, tmp_path):
        # strict only hardens freshness of an *existing* sidecar; absence is
        # an ordinary "no index" answer either way
        store = make_store(tmp_path / "s")
        assert load_indexes(store) is None
        assert load_indexes(store, strict=True) is None

    def test_append_extends_instead_of_rebuilding(self, tmp_path, monkeypatch):
        store = make_store(tmp_path / "s", n=256, chunk_rows=64)
        build_indexes(store).save()
        handle = load_indexes(store)
        for name in handle.columns:  # force arrays into memory pre-append
            handle.column(name)

        recorded = []
        real_read = ChunkedTraceStore.read_chunk

        def recording(self, index, columns=None):
            recorded.append(index)
            return real_read(self, index, columns=columns)

        monkeypatch.setattr(ChunkedTraceStore, "read_chunk", recording)
        appended = StoreAppender(store).append(
            Trace(make_jobs(128, seed=7, offset=256), name="more"))
        # the auto-extension (and anything else in the append path) must never
        # re-read the chunks the sidecar already covers
        assert recorded, "extension read no chunks"
        assert min(recorded) >= 4, recorded
        monkeypatch.setattr(ChunkedTraceStore, "read_chunk", real_read)

        extended = load_indexes(appended)
        assert extended is not None
        assert extended.stale_reason(appended) is None
        assert extended.manifest_sequence == appended.manifest_sequence
        assert_indexes_equal(extended, build_indexes(appended))

    def test_append_then_query_equivalence(self, tmp_path):
        store = make_store(tmp_path / "s", n=256, chunk_rows=64)
        build_indexes(store).save()
        appended = StoreAppender(store).append(
            Trace(make_jobs(200, seed=7, offset=256), name="more"))
        queries = [
            Query().filter("framework", "==", "pig").count(),
            Query().filter("input_bytes", ">", 1e7).limit(19),
            Query().top("duration_s", 11),
            Query().filter("submit_time_s", "<", 800.0)
                   .aggregate(total=("sum", "input_bytes")),
        ]
        for query in queries:
            via_index = execute(appended, query)
            via_scan = execute(appended, query, use_planner=False)
            if via_index.aggregates is not None:
                assert via_index.aggregates == via_scan.aggregates
            else:
                assert via_index.row_dicts() == via_scan.row_dicts()

    def test_stale_sequence_is_refused(self, tmp_path):
        store = make_store(tmp_path / "s", n=256, chunk_rows=64)
        build_indexes(store).save()
        manifest_path = os.path.join(store.directory, "index.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["manifest_sequence"] += 3
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        reopened = ChunkedTraceStore(store.directory)
        with pytest.raises(StaleIndexError):
            load_indexes(reopened, strict=True)
        lenient = load_indexes(reopened)
        assert lenient is not None
        assert lenient.stale_reason(reopened) is not None

    def test_stale_index_falls_back_to_scan(self, tmp_path):
        store = make_store(tmp_path / "s", n=256, chunk_rows=64)
        build_indexes(store).save()
        manifest_path = os.path.join(store.directory, "index.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["store_uid"] = "someone-else"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        reopened = ChunkedTraceStore(store.directory)
        query = Query().filter("framework", "==", "hive").count()
        result = execute(reopened, query)
        assert result.plan is not None
        assert result.plan.stale_index
        assert not result.plan.used_index
        assert result.aggregates == execute(reopened, query,
                                            use_planner=False).aggregates

    def test_uid_mismatch_refuses_extension(self, tmp_path):
        store = make_store(tmp_path / "a", n=128, chunk_rows=64)
        other = make_store(tmp_path / "b", n=128, seed=5, chunk_rows=64)
        indexes = build_indexes(store)
        with pytest.raises(StaleIndexError):
            indexes.extend(other)

    def test_drop_indexes(self, tmp_path):
        store = make_store(tmp_path / "s")
        build_indexes(store).save()
        assert load_indexes(store) is not None
        removed = drop_indexes(store)
        assert removed > 0
        assert load_indexes(store) is None

    def test_info_reports_freshness_and_sizes(self, tmp_path):
        store = make_store(tmp_path / "s")
        build_indexes(store).save()
        reopened = ChunkedTraceStore(store.directory)
        info = reopened.info()
        assert info["indexes"] is not None
        assert info["indexes"]["fresh"]
        assert info["indexes"]["on_disk_bytes"] > 0
        assert info["indexes"]["columns"]["framework"]["kind"] == "inverted"
        bare = make_store(tmp_path / "bare")
        assert bare.info()["indexes"] is None
