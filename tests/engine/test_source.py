"""Tests for TraceSource — the uniform wrapper over trace representations."""

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, ColumnarTrace, Query, TraceSource
from repro.errors import AnalysisError
from repro.traces import Job, Trace


@pytest.fixture(scope="module")
def store(tmp_path_factory, _module_trace):
    directory = tmp_path_factory.mktemp("source") / "trace.store"
    return ChunkedTraceStore.write(directory, _module_trace, chunk_rows=7,
                                   name=_module_trace.name)


@pytest.fixture(scope="module")
def _module_trace():
    jobs = [
        Job(job_id="s%03d" % index, submit_time_s=180.0 * index, duration_s=60.0,
            input_bytes=1e6 * (index + 1), shuffle_bytes=0.0 if index % 3 else 5e5,
            output_bytes=2e5, map_task_seconds=30.0, reduce_task_seconds=0.0,
            input_path="/in/%d" % (index % 5), name="select q%d" % index)
        for index in range(50)
    ]
    return Trace(jobs, name="src-test", machines=12)


class TestWrap:
    def test_wrap_each_representation(self, _module_trace, store):
        for backing in (_module_trace, _module_trace.to_columnar(), store):
            source = TraceSource.wrap(backing)
            assert len(source) == 50
            assert source.name == "src-test"
        assert TraceSource.wrap(store).machines == 12
        assert TraceSource.wrap(_module_trace).machines == 12

    def test_wrap_is_idempotent(self, _module_trace):
        source = TraceSource.wrap(_module_trace)
        assert TraceSource.wrap(source) is source

    def test_streaming_flag(self, _module_trace, store):
        assert not TraceSource.wrap(_module_trace).is_streaming
        assert not TraceSource.wrap(_module_trace.to_columnar()).is_streaming
        assert TraceSource.wrap(store).is_streaming

    def test_rejects_unknown_types(self):
        with pytest.raises(AnalysisError):
            TraceSource.wrap([1, 2, 3])

    def test_materialize_is_identity_for_traces(self, _module_trace):
        assert TraceSource.wrap(_module_trace).materialize() is _module_trace


class TestScans:
    def test_iter_chunks_prunes_columns(self, store):
        source = TraceSource.wrap(store)
        blocks = list(source.iter_chunks(columns=["input_bytes"]))
        assert len(blocks) == store.n_chunks
        assert all(set(block.columns) == {"input_bytes"} for block in blocks)

    def test_dimension_concatenates_chunks(self, _module_trace, store):
        exact = TraceSource.wrap(_module_trace).dimension("input_bytes")
        streamed = TraceSource.wrap(store).dimension("input_bytes")
        assert np.array_equal(exact, streamed)

    def test_query_matches_across_representations(self, _module_trace, store):
        query = Query().filter("input_bytes", ">", 2e7).count("n")
        for backing in (_module_trace, store):
            result = TraceSource.wrap(backing).query(query)
            assert result.aggregates["n"] == sum(
                1 for job in _module_trace if job.input_bytes > 2e7)

    def test_string_values_roundtrip(self, _module_trace, store):
        from_trace = list(TraceSource.wrap(_module_trace).string_values("input_path"))
        from_store = list(TraceSource.wrap(store).string_values("input_path"))
        assert from_trace == from_store == [job.input_path for job in _module_trace]

    def test_has_column(self, store):
        source = TraceSource.wrap(store)
        assert source.has_column("input_bytes")
        assert source.has_column("total_bytes")        # derived
        assert source.has_column("submit_hour")        # derived
        assert not source.has_column("output_path")    # never recorded


class TestGather:
    def test_gather_matches_direct_indexing(self, _module_trace, store):
        indices = [0, 3, 7, 31, 49]
        expected = [_module_trace.jobs[index].input_bytes for index in indices]
        for backing in (_module_trace, store):
            gathered = TraceSource.wrap(backing).gather(indices)
            assert isinstance(gathered, ColumnarTrace)
            assert gathered.dimension("input_bytes").tolist() == expected

    def test_gather_rejects_unsorted(self, store):
        with pytest.raises(AnalysisError):
            TraceSource.wrap(store).gather([5, 2])

    def test_gather_rejects_out_of_range(self, store):
        with pytest.raises(AnalysisError):
            TraceSource.wrap(store).gather([0, 500])


class TestSummaries:
    def test_summary_matches_trace_summary(self, _module_trace, store):
        exact = _module_trace.summary()
        for backing in (_module_trace.to_columnar(), store):
            summary = TraceSource.wrap(backing).summary()
            assert summary.n_jobs == exact.n_jobs
            assert summary.length_s == pytest.approx(exact.length_s)
            assert summary.bytes_moved == pytest.approx(exact.bytes_moved)
            assert summary.total_task_seconds == pytest.approx(exact.total_task_seconds)

    def test_time_bounds(self, _module_trace, store):
        for backing in (_module_trace, store):
            start, end = TraceSource.wrap(backing).time_bounds()
            assert start == 0.0
            assert end == pytest.approx(49 * 180.0 + 60.0)

    def test_hourly_groups_counts(self, _module_trace, store):
        for backing in (_module_trace, store):
            groups = TraceSource.wrap(backing).hourly_groups(
                n=("count", "submit_time_s"))
            total = sum(values["n"] for values in groups.values())
            assert total == len(_module_trace)
            assert set(groups) == {int(job.submit_time_s // 3600) for job in _module_trace}

    def test_feature_batches_stack_to_feature_matrix(self, _module_trace, store):
        exact = _module_trace.feature_matrix()
        for backing in (_module_trace, store):
            source = TraceSource.wrap(backing)
            stacked = np.vstack(list(source.feature_batches()))
            assert np.array_equal(stacked, exact)
            assert np.array_equal(source.feature_matrix(), exact)


class TestSortedGuard:
    @pytest.fixture()
    def unsorted_store(self, tmp_path):
        jobs = [
            Job(job_id="u%d" % index, submit_time_s=float(submit), duration_s=10.0,
                input_bytes=1e6, shuffle_bytes=0.0, output_bytes=1e5,
                map_task_seconds=5.0, reduce_task_seconds=0.0,
                input_path="/p/%d" % (index % 3))
            for index, submit in enumerate([500.0, 100.0, 900.0, 50.0])
        ]
        return ChunkedTraceStore.write(tmp_path / "unsorted.store", iter(jobs),
                                       chunk_rows=2)

    def test_iter_chunks_sorted_raises_on_disorder(self, unsorted_store):
        source = TraceSource.wrap(unsorted_store)
        with pytest.raises(AnalysisError, match="not sorted"):
            list(source.iter_chunks_sorted(["submit_time_s"]))

    def test_sorted_source_passes(self, store):
        source = TraceSource.wrap(store)
        blocks = list(source.iter_chunks_sorted(["input_bytes"]))
        assert sum(block.n_rows for block in blocks) == 50
        assert all("submit_time_s" in block.columns for block in blocks)

    def test_reaccess_analyses_reject_unsorted_store(self, unsorted_store):
        from repro.core import reaccess_fractions, reaccess_intervals

        with pytest.raises(AnalysisError, match="not sorted"):
            reaccess_intervals(unsorted_store)
        with pytest.raises(AnalysisError, match="not sorted"):
            reaccess_fractions(unsorted_store)


class TestDerivedSubmitHour:
    def test_block_level_submit_hour(self, _module_trace):
        block = _module_trace.to_columnar().block
        hours = block.column("submit_hour")
        assert np.array_equal(hours, np.floor(block.column("submit_time_s") / 3600.0))

    def test_store_expands_submit_hour_to_submit_time(self, store):
        blocks = list(store.iter_chunks(columns=["submit_hour"]))
        assert all("submit_time_s" in block.columns for block in blocks)
        assert all(block.has_column("submit_hour") for block in blocks)
