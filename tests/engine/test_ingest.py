"""Append-mode (``engine ingest``) edge cases.

The store appender must keep every manifest invariant coherent across an
append: zone maps on the new chunks, the column union (backfilled both ways),
the ``sorted_by_submit_time`` flag across the append boundary, and the
crash-safe atomic manifest swap with its ``manifest_sequence`` bump.
"""

import json
import os

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, append_store
from repro.engine.store import MANIFEST_NAME
from repro.errors import AnalysisError, TraceFormatError
from repro.traces import Job, Trace


def make_jobs(lo, hi, t0=0.0, step=5.0, name=None, input_path=True):
    jobs = []
    for index in range(lo, hi):
        jobs.append(Job(
            job_id="a%05d" % index, submit_time_s=t0 + (index - lo) * step,
            duration_s=30.0, input_bytes=1e6 * (index + 1), shuffle_bytes=0.0,
            output_bytes=1e3, map_task_seconds=20.0, reduce_task_seconds=0.0,
            name=name, input_path="/p/%d" % (index % 7) if input_path else None))
    return jobs


@pytest.fixture()
def base_store(tmp_path):
    directory = tmp_path / "base.store"
    store = ChunkedTraceStore.write(directory, Trace(make_jobs(0, 100), name="t"),
                                    chunk_rows=32)
    return store


class TestAppendBasics:
    def test_rows_and_chunks_extend(self, base_store):
        before_chunks = base_store.n_chunks
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 150, t0=1000.0), name="t"))
        assert store.n_jobs == 150
        assert store.n_chunks > before_chunks
        times = np.concatenate([
            np.asarray(block.column("submit_time_s"))
            for block in store.iter_chunks(columns=["submit_time_s"])])
        assert times.size == 150
        assert np.all(times[:-1] <= times[1:])

    def test_matches_oneshot_store(self, base_store, tmp_path):
        appended = append_store(base_store.directory,
                                Trace(make_jobs(100, 150, t0=1000.0), name="t"))
        oneshot = ChunkedTraceStore.write(
            tmp_path / "oneshot.store",
            Trace(make_jobs(0, 100) + make_jobs(100, 150, t0=1000.0), name="t"),
            chunk_rows=32)
        for column in ("submit_time_s", "input_bytes", "job_id"):
            mine = np.concatenate([np.asarray(b.column(column))
                                   for b in appended.iter_chunks(columns=[column])])
            reference = np.concatenate([np.asarray(b.column(column))
                                        for b in oneshot.iter_chunks(columns=[column])])
            assert np.array_equal(mine, reference), column

    def test_appended_chunks_have_zone_maps(self, base_store):
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 150, t0=1000.0), name="t"))
        for index in range(base_store.n_chunks, store.n_chunks):
            zone = store.chunk_zone(index, "submit_time_s")
            assert zone is not None
            assert zone[0] >= 1000.0

    def test_empty_append_is_noop(self, base_store):
        sequence = base_store.manifest_sequence
        store = append_store(base_store.directory, [])
        assert store.n_jobs == 100
        assert store.manifest_sequence == sequence

    def test_default_chunk_rows_come_from_manifest(self, base_store):
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 200, t0=1000.0), name="t"))
        # base was written with chunk_rows=32, so 100 appended jobs split 32/32/32/4
        assert store.chunk_rows()[base_store.n_chunks:] == [32, 32, 32, 4]


class TestSortedFlagCoherence:
    def test_in_order_append_keeps_sorted(self, base_store):
        assert base_store.sorted_by_submit_time
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 120, t0=10000.0), name="t"))
        assert store.sorted_by_submit_time

    def test_interleaving_append_clears_sorted(self, base_store):
        # base covers [0, 495]; these land inside it
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 110, t0=3.0), name="t"))
        assert not store.sorted_by_submit_time

    def test_internally_unsorted_iterable_clears_sorted(self, base_store):
        jobs = make_jobs(100, 110, t0=10000.0)
        jobs.reverse()  # raw iterable: no Trace re-sorting
        store = append_store(base_store.directory, iter(jobs))
        assert not store.sorted_by_submit_time

    def test_ordered_analysis_raises_after_unsorted_append(self, base_store):
        from repro.core.access import reaccess_intervals

        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 110, t0=3.0), name="t"))
        with pytest.raises(AnalysisError, match="not sorted"):
            reaccess_intervals(store)


class TestColumnUnion:
    def test_new_column_backfills_old_chunks(self, base_store):
        assert "name" not in base_store.columns
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 120, t0=10000.0,
                                             name="insert fresh"), name="t"))
        assert "name" in store.columns
        first = store.read_chunk(0, columns=["name"])
        assert np.all(np.asarray(first.column("name")) == "")
        last = store.read_chunk(store.n_chunks - 1, columns=["name"])
        assert np.all(np.asarray(last.column("name")) == "insert fresh")

    def test_missing_column_fills_new_chunks(self, tmp_path):
        directory = tmp_path / "named.store"
        ChunkedTraceStore.write(directory,
                                Trace(make_jobs(0, 50, name="select base"), name="t"),
                                chunk_rows=16)
        store = append_store(directory,
                             Trace(make_jobs(50, 70, t0=10000.0), name="t"))
        last = store.read_chunk(store.n_chunks - 1, columns=["name"])
        assert np.all(np.asarray(last.column("name")) == "")


class TestManifestSafety:
    def test_sequence_bumps_and_no_temp_file_left(self, base_store):
        assert base_store.manifest_sequence == 0
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 110, t0=10000.0), name="t"))
        assert store.manifest_sequence == 1
        store = append_store(base_store.directory,
                             Trace(make_jobs(110, 120, t0=20000.0), name="t"))
        assert store.manifest_sequence == 2
        assert not os.path.exists(
            os.path.join(store.directory, MANIFEST_NAME + ".tmp"))

    def test_manifest_readable_json_after_append(self, base_store):
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 110, t0=10000.0), name="t"))
        with open(os.path.join(store.directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["manifest_sequence"] == 1
        assert manifest["n_jobs"] == 110
        assert len(manifest["chunks"]) == store.n_chunks

    def test_store_uid_minted_and_preserved_across_appends(self, base_store):
        uid = base_store.store_uid
        assert uid
        store = append_store(base_store.directory,
                             Trace(make_jobs(100, 110, t0=10000.0), name="t"))
        assert store.store_uid == uid

    def test_zero_chunk_rows_rejected(self, base_store):
        with pytest.raises(TraceFormatError, match="positive"):
            ChunkedTraceStore.open_append(base_store.directory).append(
                Trace(make_jobs(100, 110, t0=10000.0), name="t"), chunk_rows=0)

    def test_append_to_v1_raises_with_convert_hint(self, tmp_path):
        directory = tmp_path / "v1.store"
        ChunkedTraceStore.write(directory, Trace(make_jobs(0, 20), name="t"),
                                chunk_rows=8, format_version=1)
        with pytest.raises(TraceFormatError, match="engine convert"):
            ChunkedTraceStore.open_append(directory)


class TestStoreToStoreConvert:
    def test_v2_to_v1_roundtrip_preserves_rows_and_flag(self, base_store, tmp_path):
        v1 = ChunkedTraceStore.write(tmp_path / "as-v1", base_store, format_version=1)
        assert v1.format_version == 1
        assert v1.sorted_by_submit_time == base_store.sorted_by_submit_time
        back = ChunkedTraceStore.write(tmp_path / "back-v2", v1, format_version=2)
        assert back.format_version == 2
        for column in ("submit_time_s", "input_bytes", "job_id"):
            mine = np.concatenate([np.asarray(b.column(column))
                                   for b in back.iter_chunks(columns=[column])])
            reference = np.concatenate([np.asarray(b.column(column))
                                        for b in base_store.iter_chunks(columns=[column])])
            assert np.array_equal(mine, reference), column

    def test_convert_onto_itself_rejected(self, base_store):
        with pytest.raises(TraceFormatError, match="onto itself"):
            ChunkedTraceStore.write(base_store.directory, base_store)


class TestColumnSizes:
    def test_sizes_cover_every_column_both_formats(self, base_store, tmp_path):
        v1 = ChunkedTraceStore.write(tmp_path / "sized-v1", base_store, format_version=1)
        for store in (base_store, v1):
            sizes = store.column_sizes()
            assert sorted(sizes) == sorted(store.columns)
            assert all(size > 0 for size in sizes.values())
        # compressed members must not exceed the raw layout in total
        assert sum(v1.column_sizes().values()) <= sum(base_store.column_sizes().values())


class TestIngestCli:
    def test_engine_ingest_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.traces.io import write_trace

        directory = tmp_path / "cli.store"
        ChunkedTraceStore.write(directory, Trace(make_jobs(0, 40), name="t"),
                                chunk_rows=16)
        fresh = tmp_path / "fresh.jsonl"
        write_trace(Trace(make_jobs(40, 60, t0=10000.0), name="t"), fresh)
        assert main(["engine", "ingest", "--store", str(directory),
                     "--trace", str(fresh)]) == 0
        out = capsys.readouterr().out
        assert "appended 20 jobs" in out
        assert ChunkedTraceStore(directory).n_jobs == 60

    def test_engine_info_sizes_cli(self, base_store, capsys):
        from repro.cli import main

        assert main(["engine", "info", "--store", base_store.directory,
                     "--sizes"]) == 0
        out = capsys.readouterr().out
        assert "per-column on-disk bytes" in out
        assert "submit_time_s" in out
