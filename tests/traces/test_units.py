"""Unit tests for byte/time unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    DAY,
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    TB,
    format_bytes,
    format_duration,
    log10_bytes,
    parse_bytes,
    parse_duration,
)


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("1 KB", KB), ("2mb", 2 * MB), ("4.7 TB", 4.7 * TB), ("600", 600.0),
        ("0.5 gb", 0.5 * GB), ("3 B", 3.0),
    ])
    def test_parses(self, text, expected):
        assert parse_bytes(text) == pytest.approx(expected)

    def test_accepts_numbers(self):
        assert parse_bytes(1024) == 1024.0

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "1.2.3 MB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)


class TestParseDuration:
    @pytest.mark.parametrize("text,expected", [
        ("30 sec", 30), ("4 min", 4 * MINUTE), ("2 hrs", 2 * HOUR), ("3 days", 3 * DAY),
        ("45", 45.0), ("1.5 h", 1.5 * HOUR),
    ])
    def test_parses(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ValueError):
            parse_duration("3 fortnights")


class TestFormatting:
    def test_format_bytes_picks_unit(self):
        assert format_bytes(4.7 * TB) == "4.7 TB"
        assert format_bytes(512) == "512 B"
        assert format_bytes(0) == "0 B"

    def test_format_bytes_negative(self):
        assert format_bytes(-2 * GB) == "-2.0 GB"

    def test_format_duration_picks_unit(self):
        assert format_duration(90) == "1.5 min"
        assert format_duration(2 * DAY) == "2.0 days"
        assert format_duration(30) == "30 sec"

    def test_log10_bytes_clamps(self):
        assert log10_bytes(0) == 0.0
        assert log10_bytes(1000) == pytest.approx(3.0)


@given(value=st.floats(min_value=float(KB), max_value=1e18, allow_nan=False))
def test_property_format_parse_round_trip_within_rounding(value):
    """Formatting then parsing a byte count stays within the rounding error.

    Values below 1 KB are excluded: they render as whole bytes, so sub-byte
    precision is intentionally lost there.
    """
    parsed = parse_bytes(format_bytes(value, precision=3))
    assert parsed == pytest.approx(value, rel=5e-3)
