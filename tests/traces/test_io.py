"""Unit tests for trace serialization (CSV, JSONL, gzip) and the log parser."""

import gzip

import pytest

import inspect

from repro.errors import TraceFormatError
from repro.traces import (
    Job,
    Trace,
    format_job_line,
    iter_csv,
    iter_jsonl,
    iter_trace,
    parse_history_lines,
    parse_job_line,
    read_csv,
    read_history_log,
    read_jsonl,
    read_trace,
    write_csv,
    write_jsonl,
    write_trace,
)


def sample_trace():
    jobs = [
        Job(job_id="a", submit_time_s=0.0, duration_s=10.0, input_bytes=100.0,
            shuffle_bytes=0.0, output_bytes=5.0, map_task_seconds=20.0,
            reduce_task_seconds=0.0, map_tasks=2, reduce_tasks=0,
            name="select things", input_path="/in/a", output_path="/out/a"),
        Job(job_id="b", submit_time_s=5.0, duration_s=20.0, input_bytes=1e9,
            shuffle_bytes=2e8, output_bytes=1e7, map_task_seconds=300.0,
            reduce_task_seconds=100.0),
    ]
    return Trace(jobs, name="sample", machines=3)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        trace = sample_trace()
        write_csv(trace, path)
        loaded = read_csv(path, name="sample", machines=3)
        assert len(loaded) == 2
        assert loaded.jobs[0].to_dict() == trace.jobs[0].to_dict()
        assert loaded.jobs[1].name is None

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv.gz"
        write_csv(sample_trace(), path)
        with gzip.open(path, "rt") as handle:
            assert "job_id" in handle.readline()
        assert len(read_csv(path)) == 2

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,trace\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            read_csv(path)

    def test_non_numeric_column_raises(self, tmp_path):
        path = tmp_path / "bad2.csv"
        write_csv(sample_trace(), path)
        text = path.read_text().replace("1000000000.0", "a-lot", 1)
        path.write_text(text)
        with pytest.raises(TraceFormatError):
            read_csv(path)


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = sample_trace()
        write_jsonl(trace, path)
        loaded = read_jsonl(path)
        assert [job.job_id for job in loaded] == ["a", "b"]
        assert loaded.jobs[0].input_path == "/in/a"

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job_id": "x"\n')
        with pytest.raises(TraceFormatError):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_trace(), path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == 2


class TestFormatDispatch:
    @pytest.mark.parametrize("filename", ["t.csv", "t.jsonl", "t.csv.gz", "t.jsonl.gz"])
    def test_write_read_by_extension(self, tmp_path, filename):
        path = tmp_path / filename
        write_trace(sample_trace(), path)
        assert len(read_trace(path)) == 2

    def test_unknown_extension_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            write_trace(sample_trace(), tmp_path / "trace.parquet")
        with pytest.raises(TraceFormatError):
            read_trace(tmp_path / "trace.parquet")


class TestLazyReaders:
    """The readers stream rows via generators instead of loading whole files."""

    def test_iterators_are_generators(self):
        assert inspect.isgeneratorfunction(iter_csv)
        assert inspect.isgeneratorfunction(iter_jsonl)

    @pytest.mark.parametrize("filename", ["t.csv", "t.jsonl", "t.csv.gz", "t.jsonl.gz"])
    def test_iter_trace_streams_all_formats(self, tmp_path, filename):
        path = tmp_path / filename
        write_trace(sample_trace(), path)
        jobs = iter_trace(path)
        first = next(jobs)
        assert first.job_id == "a"
        assert [job.job_id for job in jobs] == ["b"]

    def test_iter_is_lazy_about_malformed_tails(self, tmp_path):
        """A bad row past the cut-off is never parsed when streaming stops early."""
        path = tmp_path / "trace.jsonl"
        write_jsonl(sample_trace(), path)
        path.write_text(path.read_text() + "{not json\n")
        jobs = iter_jsonl(path)
        assert next(jobs).job_id == "a"
        assert next(jobs).job_id == "b"
        with pytest.raises(TraceFormatError):
            next(jobs)

    def test_gzip_jsonl_round_trip_regression(self, tmp_path):
        """Full-fidelity gzip round trip through the streaming readers."""
        path = tmp_path / "trace.jsonl.gz"
        trace = sample_trace()
        write_jsonl(trace, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("{")
        loaded = read_jsonl(path, name="sample", machines=3)
        assert [job.to_dict() for job in loaded] == [job.to_dict() for job in trace]
        streamed = list(iter_jsonl(path))
        assert [job.to_dict() for job in streamed] == [job.to_dict() for job in trace]

    def test_gzip_csv_round_trip_regression(self, tmp_path):
        path = tmp_path / "trace.csv.gz"
        trace = sample_trace()
        write_csv(trace, path)
        loaded = read_csv(path, name="sample", machines=3)
        assert [job.to_dict() for job in loaded] == [job.to_dict() for job in trace]

    def test_iter_trace_unknown_extension_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            iter_trace(tmp_path / "trace.parquet")


class TestHadoopLogParser:
    def test_parse_single_line(self):
        line = ('Job JOBID="job_1" SUBMIT_TIME="1000" FINISH_TIME="61000" '
                'HDFS_BYTES_READ="1024" MAP_OUTPUT_BYTES="10" HDFS_BYTES_WRITTEN="5" '
                'MAP_SLOT_SECONDS="30" REDUCE_SLOT_SECONDS="4" TOTAL_MAPS="2" '
                'TOTAL_REDUCES="1" JOBNAME="insert into x" INPUT_DIR="/a" OUTPUT_DIR="/b"')
        fields = parse_job_line(line)
        assert fields["JOBID"] == "job_1"
        assert fields["JOBNAME"] == "insert into x"

    def test_non_job_line_raises(self):
        with pytest.raises(TraceFormatError):
            parse_job_line('Task TASKID="t1"')

    def test_missing_required_key_raises(self):
        with pytest.raises(TraceFormatError):
            parse_job_line('Job JOBID="x" SUBMIT_TIME="1"')

    def test_parse_history_lines_builds_trace(self):
        lines = [
            "# comment",
            'Task TASKID="ignored"',
            'Job JOBID="j1" SUBMIT_TIME="5000" FINISH_TIME="15000" HDFS_BYTES_READ="100"',
            'Job JOBID="j2" SUBMIT_TIME="10000" FINISH_TIME="20000" HDFS_BYTES_READ="200" '
            'MAP_SLOT_SECONDS="9"',
        ]
        trace = parse_history_lines(lines, name="h")
        assert len(trace) == 2
        # Times are re-based to the earliest submission, in seconds.
        assert trace.jobs[0].submit_time_s == 0.0
        assert trace.jobs[1].submit_time_s == 5.0
        assert trace.jobs[0].duration_s == 10.0

    def test_format_then_parse_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "history.log"
        path.write_text("\n".join(format_job_line(job) for job in trace) + "\n")
        loaded = read_history_log(path, name="sample")
        assert len(loaded) == 2
        assert loaded.jobs[1].input_bytes == pytest.approx(1e9)
        assert loaded.jobs[0].name == "select things"

    def test_empty_log_gives_empty_trace(self):
        assert parse_history_lines([]).is_empty()
