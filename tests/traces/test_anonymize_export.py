"""Tests for trace anonymization and aggregated-metrics export."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError, SchemaError, TraceFormatError
from repro.traces import (
    AggregatedMetrics,
    Anonymizer,
    Job,
    Trace,
    aggregate_trace,
    anonymize_trace,
    merge_aggregates,
)
from repro.units import GB, MB


class TestAnonymizer:
    def test_tokens_are_deterministic_and_salted(self):
        first = Anonymizer(salt="alpha")
        second = Anonymizer(salt="alpha")
        other_salt = Anonymizer(salt="beta")
        assert first.token("/data/users") == second.token("/data/users")
        assert first.token("/data/users") != other_salt.token("/data/users")

    def test_different_strings_get_different_tokens(self):
        anonymizer = Anonymizer()
        assert anonymizer.token("/a") != anonymizer.token("/b")

    def test_path_preserves_directory_depth(self):
        anonymizer = Anonymizer(preserve_directories=True)
        hashed = anonymizer.path("/warehouse/daily/part-0001")
        assert hashed.count("/") == 3
        assert "warehouse" not in hashed

    def test_flat_path_mode(self):
        anonymizer = Anonymizer(preserve_directories=False)
        hashed = anonymizer.path("/warehouse/daily/part-0001")
        assert hashed.count("/") == 1

    def test_none_passes_through(self):
        anonymizer = Anonymizer()
        assert anonymizer.path(None) is None
        assert anonymizer.name(None) is None

    def test_name_keeps_first_word_by_default(self):
        anonymizer = Anonymizer()
        hashed = anonymizer.name("insert overwrite table users_daily")
        assert hashed.startswith("insert ")
        assert "users_daily" not in hashed

    def test_name_fully_hashed_when_requested(self):
        anonymizer = Anonymizer()
        hashed = anonymizer.name("insert overwrite table users_daily", keep_first_word=False)
        assert not hashed.startswith("insert")

    def test_validation(self):
        with pytest.raises(SchemaError):
            Anonymizer(salt="")
        with pytest.raises(SchemaError):
            Anonymizer(token_length=2)

    @given(st.text(min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_token_is_stable_and_fixed_length(self, value):
        anonymizer = Anonymizer(token_length=12)
        token = anonymizer.token(value)
        assert token == anonymizer.token(value)
        assert len(token) == 12


class TestAnonymizeTrace:
    def test_numeric_dimensions_and_structure_preserved(self, tiny_trace):
        anonymized = anonymize_trace(tiny_trace, Anonymizer(salt="s"), hash_job_ids=True)
        assert len(anonymized) == len(tiny_trace)
        assert [job.input_bytes for job in anonymized] == [job.input_bytes for job in tiny_trace]
        assert [job.submit_time_s for job in anonymized] == [job.submit_time_s for job in tiny_trace]
        assert all(job.job_id.startswith("job_") for job in anonymized)

    def test_reaccess_structure_survives(self, tiny_trace):
        # /data/a is read by three jobs in the tiny trace; the anonymized trace
        # must keep those three reads pointing at one (hashed) path.
        anonymized = anonymize_trace(tiny_trace)
        original_counts = {}
        for job in tiny_trace:
            original_counts[job.input_path] = original_counts.get(job.input_path, 0) + 1
        hashed_counts = {}
        for job in anonymized:
            hashed_counts[job.input_path] = hashed_counts.get(job.input_path, 0) + 1
        assert sorted(original_counts.values()) == sorted(hashed_counts.values())
        assert "/data/a" not in hashed_counts

    def test_original_paths_do_not_leak(self, tiny_trace):
        anonymized = anonymize_trace(tiny_trace)
        for job in anonymized:
            assert job.input_path is None or "data" not in job.input_path
            assert job.output_path is None or "out" not in job.output_path

    def test_first_word_analysis_still_works(self, tiny_trace):
        from repro.core import analyze_naming
        anonymized = anonymize_trace(tiny_trace)
        analysis = analyze_naming(anonymized)
        assert analysis.by_jobs.share_of("select") > 0

    def test_first_word_can_be_hidden(self, tiny_trace):
        anonymized = anonymize_trace(tiny_trace, keep_first_word=False)
        assert all(not (job.name or "").startswith("select") for job in anonymized)


class TestAggregateTrace:
    def test_scalar_totals_match_trace_summary(self, tiny_trace):
        aggregate = aggregate_trace(tiny_trace)
        summary = tiny_trace.summary()
        assert aggregate.n_jobs == len(tiny_trace)
        assert aggregate.bytes_moved == pytest.approx(summary.bytes_moved)
        assert aggregate.total_task_seconds == pytest.approx(summary.total_task_seconds)
        assert aggregate.machines == 10

    def test_histograms_count_every_job(self, tiny_trace):
        aggregate = aggregate_trace(tiny_trace)
        for dimension, counts in aggregate.size_histograms.items():
            assert sum(counts) == len(tiny_trace), dimension
        assert sum(aggregate.duration_histogram) == len(tiny_trace)

    def test_hourly_series_cover_trace_span(self, tiny_trace):
        aggregate = aggregate_trace(tiny_trace)
        assert sum(aggregate.hourly_jobs) == len(tiny_trace)
        assert len(aggregate.hourly_jobs) == len(aggregate.hourly_bytes)
        assert len(aggregate.hourly_jobs) == len(aggregate.hourly_task_seconds)

    def test_first_word_counts(self, tiny_trace):
        aggregate = aggregate_trace(tiny_trace)
        assert aggregate.first_word_counts["select"] == 2
        assert aggregate.first_word_counts["insert"] == 1

    def test_no_per_job_records_in_export(self, tiny_trace):
        text = aggregate_trace(tiny_trace).to_json()
        assert "/data/a" not in text
        assert "j1" not in json.loads(text).get("first_word_counts", {})

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            aggregate_trace(Trace([], name="empty"))

    def test_json_round_trip(self, tiny_trace):
        aggregate = aggregate_trace(tiny_trace)
        round_tripped = AggregatedMetrics.from_json(aggregate.to_json(indent=2))
        assert round_tripped.to_dict() == aggregate.to_dict()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            AggregatedMetrics.from_json("not json at all {")
        with pytest.raises(TraceFormatError):
            AggregatedMetrics.from_json(json.dumps({"workload": "x"}))

    def test_median_size_estimate_within_half_decade(self, cc_b_small_trace):
        import numpy as np
        aggregate = aggregate_trace(cc_b_small_trace)
        true_median = float(np.median(cc_b_small_trace.dimension("input_bytes")))
        estimate = aggregate.median_size("input_bytes")
        if true_median > 0 and estimate > 0:
            assert abs(np.log10(estimate) - np.log10(true_median)) <= 0.6

    def test_median_size_unknown_dimension_rejected(self, tiny_trace):
        with pytest.raises(AnalysisError):
            aggregate_trace(tiny_trace).median_size("nope")

    def test_peak_to_median_positive_for_bursty_series(self, cc_b_small_trace):
        aggregate = aggregate_trace(cc_b_small_trace)
        assert aggregate.peak_to_median_task_seconds() >= 1.0


class TestMergeAggregates:
    def test_merge_two_shards(self, tiny_trace):
        first = aggregate_trace(tiny_trace)
        second = aggregate_trace(tiny_trace)
        merged = merge_aggregates([first, second], workload_name="two-shards")
        assert merged.workload == "two-shards"
        assert merged.n_jobs == 2 * len(tiny_trace)
        assert merged.bytes_moved == pytest.approx(2 * first.bytes_moved)
        for dimension in first.size_histograms:
            assert sum(merged.size_histograms[dimension]) == 2 * len(tiny_trace)
        assert len(merged.hourly_jobs) == 2 * len(first.hourly_jobs)
        assert merged.map_only_fraction == pytest.approx(first.map_only_fraction)

    def test_merge_single_is_identity_like(self, tiny_trace):
        first = aggregate_trace(tiny_trace)
        merged = merge_aggregates([first], workload_name="same")
        assert merged.n_jobs == first.n_jobs
        assert merged.size_histograms == first.size_histograms

    def test_merge_empty_rejected(self):
        with pytest.raises(AnalysisError):
            merge_aggregates([])

    def test_anonymize_then_aggregate_pipeline(self, tiny_trace):
        # The §8 pipeline: anonymize on-site, aggregate, ship JSON offsite.
        anonymized = anonymize_trace(tiny_trace, Anonymizer(salt="site-secret"))
        aggregate = aggregate_trace(anonymized, workload_name="site-A")
        payload = aggregate.to_json()
        received = AggregatedMetrics.from_json(payload)
        assert received.workload == "site-A"
        assert received.n_jobs == len(tiny_trace)
        assert "/data/a" not in payload
