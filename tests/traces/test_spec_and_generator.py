"""Tests for workload specs, the registry, and spec-driven trace generation."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.traces import (
    AccessSpec,
    ArrivalSpec,
    CC_B,
    FB_2009,
    FB_2010,
    JobClassSpec,
    NameMixEntry,
    PAPER_WORKLOAD_NAMES,
    SpecTraceGenerator,
    WorkloadSpec,
    all_paper_specs,
    generate_trace,
    get_spec,
    load_workload,
    register_spec,
    registered_names,
    unregister_spec,
)
from repro.units import GB, HOUR, MB, TB


class TestJobClassSpec:
    def test_from_table_row_parses_units(self):
        row = JobClassSpec.from_table_row("Aggregate", 31, "4.7 TB", "374 MB", "24 MB",
                                          "9 min", 876786, 705)
        assert row.input_bytes == pytest.approx(4.7 * TB)
        assert row.shuffle_bytes == pytest.approx(374 * MB)
        assert row.duration_s == pytest.approx(9 * 60)

    def test_compound_duration(self):
        row = JobClassSpec.from_table_row("x", 1, "1 MB", "0", "1 MB", "4 hrs 30 min", 10, 0)
        assert row.duration_s == pytest.approx(4.5 * 3600)

    def test_map_only_detection(self):
        row = JobClassSpec.from_table_row("x", 1, "1 MB", "0", "1 MB", "1 min", 10, 0)
        assert row.is_map_only

    def test_invalid_count_rejected(self):
        with pytest.raises(SpecError):
            JobClassSpec.from_table_row("x", 0, "1 MB", "0", "1 MB", "1 min", 10, 0)


class TestWorkloadSpecs:
    def test_all_paper_specs_present(self):
        specs = all_paper_specs()
        assert [spec.name for spec in specs] == list(PAPER_WORKLOAD_NAMES)

    def test_paper_job_counts_match_table1(self):
        # Table 1 job counts are the sums of the Table 2 class populations.
        expected = {"CC-a": 5759, "CC-b": 22974, "CC-c": 21030, "CC-d": 13283,
                    "CC-e": 10790, "FB-2009": 1129193, "FB-2010": 1169184}
        for spec in all_paper_specs():
            assert spec.total_jobs == expected[spec.name]

    def test_missing_dimensions_encoded(self):
        assert not FB_2010.has_names
        assert not FB_2009.has_input_paths
        assert not get_spec("CC-a").has_input_paths

    def test_class_fractions_sum_to_one(self):
        for spec in all_paper_specs():
            assert sum(spec.class_fractions) == pytest.approx(1.0)

    def test_scaled_counts_keep_every_class(self):
        counts = FB_2009.scaled_counts(0.001)
        assert len(counts) == len(FB_2009.job_classes)
        assert all(count >= 1 for count in counts)

    def test_scaled_counts_invalid_scale(self):
        with pytest.raises(SpecError):
            FB_2009.scaled_counts(0.0)

    def test_spec_requires_name_mix_when_named(self):
        with pytest.raises(SpecError):
            WorkloadSpec(name="x", machines=1, trace_length_s=HOUR,
                         job_classes=(JobClassSpec("c", 1, 1, 0, 1, 1, 1, 0),),
                         name_mix=(), has_names=True)

    def test_arrival_and_access_validation(self):
        with pytest.raises(SpecError):
            ArrivalSpec(diurnal_amplitude=2.0)
        with pytest.raises(SpecError):
            AccessSpec(zipf_slope=-1.0)
        with pytest.raises(SpecError):
            NameMixEntry("", "hive", 0.5)


class TestRegistry:
    def test_get_spec_unknown_raises(self):
        with pytest.raises(SpecError):
            get_spec("nope")

    def test_register_and_unregister_custom_spec(self):
        custom = WorkloadSpec(
            name="custom-test", machines=2, trace_length_s=2 * HOUR,
            job_classes=(JobClassSpec("Small jobs", 10, 1 * MB, 0, 1 * MB, 30, 10, 0),),
            has_names=False,
        )
        register_spec(custom)
        assert "custom-test" in registered_names()
        with pytest.raises(SpecError):
            register_spec(custom)
        trace = load_workload("custom-test")
        assert len(trace) == 10
        unregister_spec("custom-test")
        assert "custom-test" not in registered_names()

    def test_cannot_unregister_paper_workload(self):
        with pytest.raises(SpecError):
            unregister_spec("FB-2009")


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_trace(CC_B, seed=5, scale=0.05)
        b = generate_trace(CC_B, seed=5, scale=0.05)
        assert [job.to_dict() for job in a] == [job.to_dict() for job in b]

    def test_different_seeds_differ(self):
        a = generate_trace(CC_B, seed=1, scale=0.05)
        b = generate_trace(CC_B, seed=2, scale=0.05)
        assert [job.job_id for job in a] == [job.job_id for job in b]
        assert a.bytes_moved() != b.bytes_moved()

    def test_job_count_matches_scaled_spec(self):
        trace = generate_trace(CC_B, seed=0, scale=0.1)
        assert len(trace) == sum(CC_B.scaled_counts(0.1))

    def test_submit_times_within_horizon_and_sorted(self):
        trace = generate_trace(CC_B, seed=0, scale=0.05)
        times = trace.submit_times()
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() < CC_B.trace_length_s

    def test_time_scale_compresses_horizon(self):
        trace = generate_trace(CC_B, seed=0, scale=0.05, time_scale=0.25)
        assert trace.submit_times().max() < 0.25 * CC_B.trace_length_s + 1

    def test_invalid_scale_rejected(self):
        with pytest.raises(SpecError):
            SpecTraceGenerator(CC_B, scale=-1)
        with pytest.raises(SpecError):
            SpecTraceGenerator(CC_B, time_scale=0)

    def test_missing_dimensions_respected(self):
        fb2009 = generate_trace(FB_2009, seed=0, scale=0.0005)
        assert all(job.input_path is None for job in fb2009)
        assert all(job.output_path is None for job in fb2009)
        assert all(job.name is not None for job in fb2009)
        fb2010 = generate_trace(FB_2010, seed=0, scale=0.0005)
        assert all(job.name is None for job in fb2010)
        assert all(job.input_path is not None for job in fb2010)
        assert all(job.output_path is None for job in fb2010)

    def test_cluster_labels_follow_spec_classes(self):
        trace = generate_trace(CC_B, seed=0, scale=0.05)
        labels = {job.cluster_label for job in trace}
        assert labels == {job_class.label for job_class in CC_B.job_classes}

    def test_map_only_classes_stay_map_only(self):
        trace = generate_trace(CC_B, seed=0, scale=0.05)
        for job in trace:
            if job.cluster_label == "Small jobs":
                assert job.shuffle_bytes == 0.0
                assert job.reduce_task_seconds == 0.0

    def test_bytes_moved_within_factor_of_spec_expectation(self):
        trace = generate_trace(CC_B, seed=0, scale=1.0)
        expected = CC_B.expected_bytes_moved()
        assert 0.2 * expected < trace.bytes_moved() < 5.0 * expected

    def test_names_drawn_from_mix(self):
        trace = generate_trace(CC_B, seed=0, scale=0.05)
        allowed = {entry.first_word for entry in CC_B.name_mix}
        observed = {job.first_word for job in trace}
        assert observed <= allowed

    def test_load_workload_default_scales(self):
        trace = load_workload("FB-2009", seed=0, scale=0.001)
        assert 900 < len(trace) < 1500
