"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.traces import Job, Trace


def job_at(t, job_id, **overrides):
    base = dict(job_id=job_id, submit_time_s=t, duration_s=10.0, input_bytes=100.0,
                shuffle_bytes=10.0, output_bytes=1.0, map_task_seconds=5.0,
                reduce_task_seconds=1.0)
    base.update(overrides)
    return Job(**base)


@pytest.fixture()
def trace():
    return Trace([job_at(30, "c"), job_at(10, "a"), job_at(20, "b")], name="t", machines=5)


class TestContainer:
    def test_jobs_sorted_by_submit_time(self, trace):
        assert [job.job_id for job in trace] == ["a", "b", "c"]

    def test_len_and_indexing(self, trace):
        assert len(trace) == 3
        assert trace[0].job_id == "a"

    def test_slice_returns_trace(self, trace):
        sliced = trace[:2]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 2
        assert sliced.name == "t"

    def test_empty_trace(self):
        empty = Trace([], name="empty")
        assert empty.is_empty()
        assert empty.duration_s() == 0.0
        assert empty.summary().n_jobs == 0


class TestAccessors:
    def test_submit_times(self, trace):
        assert trace.submit_times().tolist() == [10.0, 20.0, 30.0]

    def test_dimension_array(self, trace):
        assert trace.dimension("input_bytes").tolist() == [100.0, 100.0, 100.0]

    def test_dimension_unknown_raises(self, trace):
        with pytest.raises(AnalysisError):
            trace.dimension("not_a_dimension")

    def test_feature_matrix_shape(self, trace):
        assert trace.feature_matrix().shape == (3, 6)

    def test_feature_matrix_empty(self):
        assert Trace([], name="e").feature_matrix().shape == (0, 6)


class TestColumnCache:
    def test_repeat_extraction_returns_cached_array(self, trace):
        first = trace.dimension("input_bytes")
        second = trace.dimension("input_bytes")
        assert first is second  # no re-walk of the job list

    def test_cached_arrays_are_read_only(self, trace):
        values = trace.dimension("input_bytes")
        with pytest.raises(ValueError):
            values[0] = 999.0

    def test_invalidate_cache_after_mutation(self, trace):
        before = trace.dimension("input_bytes")
        trace.jobs[0].input_bytes = 777.0
        assert trace.dimension("input_bytes") is before  # stale until invalidated
        trace.invalidate_cache()
        after = trace.dimension("input_bytes")
        assert after is not before
        assert after[0] == 777.0

    def test_submit_times_uses_cache(self, trace):
        assert trace.submit_times() is trace.submit_times()

    def test_feature_matrix_is_fresh_and_writable(self, trace):
        matrix = trace.feature_matrix()
        matrix[0, 0] = -1.0  # callers may standardize in place
        assert trace.feature_matrix()[0, 0] != -1.0

    def test_derived_traces_have_independent_caches(self, trace):
        cached = trace.dimension("input_bytes")
        filtered = trace.filter(lambda job: job.submit_time_s >= 20)
        assert filtered.dimension("input_bytes").shape == (2,)
        assert trace.dimension("input_bytes") is cached

    def test_to_columnar_matches_dimensions(self, trace):
        columnar = trace.to_columnar()
        for dim in ("input_bytes", "submit_time_s", "total_bytes"):
            np.testing.assert_allclose(columnar.dimension(dim), trace.dimension(dim))


class TestFilters:
    def test_filter_predicate(self, trace):
        filtered = trace.filter(lambda job: job.submit_time_s >= 20)
        assert len(filtered) == 2

    def test_time_window_half_open(self, trace):
        window = trace.time_window(10, 30)
        assert [job.job_id for job in window] == ["a", "b"]

    def test_time_window_invalid(self, trace):
        with pytest.raises(AnalysisError):
            trace.time_window(30, 10)

    def test_with_paths_and_names(self):
        jobs = [job_at(0, "x", input_path="/p", name="select"), job_at(1, "y")]
        trace = Trace(jobs, name="t")
        assert len(trace.with_paths()) == 1
        assert len(trace.with_names()) == 1

    def test_merge_sorts_and_keeps_jobs(self, trace):
        other = Trace([job_at(15, "z")], name="o")
        merged = trace.merge(other)
        assert [job.job_id for job in merged] == ["a", "z", "b", "c"]

    def test_shifted_moves_submit_times(self, trace):
        shifted = trace.shifted(100.0)
        assert shifted.submit_times().tolist() == [110.0, 120.0, 130.0]
        # The original trace is untouched.
        assert trace.submit_times().tolist() == [10.0, 20.0, 30.0]


class TestSummary:
    def test_summary_fields(self, trace):
        summary = trace.summary()
        assert summary.n_jobs == 3
        assert summary.machines == 5
        assert summary.start_s == 10.0
        assert summary.end_s == 40.0  # last submit 30 + duration 10
        assert summary.length_s == 30.0
        assert summary.bytes_moved == pytest.approx(3 * 111.0)
        assert summary.total_task_seconds == pytest.approx(3 * 6.0)

    def test_bytes_moved_matches_sum(self, trace):
        assert trace.bytes_moved() == pytest.approx(sum(job.total_bytes for job in trace))

    def test_summary_as_row_strings(self, trace):
        row = trace.summary().as_row()
        assert row[0] == "t"
        assert all(isinstance(cell, str) for cell in row)
