"""Tests for trace quality assessment and boundary trimming."""

import pytest

from repro.errors import AnalysisError
from repro.traces import Job, Trace
from repro.traces.quality import LoggingGap, assess_quality, trim_boundaries
from repro.units import HOUR, MB


def make_job(job_id, submit, name="select q", input_path="/data/x", output_path="/out/x",
             duration=30.0):
    return Job(job_id=job_id, submit_time_s=submit, duration_s=duration,
               input_bytes=10 * MB, shuffle_bytes=1 * MB, output_bytes=1 * MB,
               map_task_seconds=20.0, reduce_task_seconds=5.0,
               name=name, input_path=input_path, output_path=output_path)


def steady_trace(n_hours=48, per_hour=4, **job_kwargs):
    jobs = []
    for hour in range(n_hours):
        for index in range(per_hour):
            jobs.append(make_job("j-%d-%d" % (hour, index),
                                 hour * HOUR + index * 600.0, **job_kwargs))
    return Trace(jobs, name="steady", machines=10)


class TestAssessQuality:
    def test_clean_trace_reports_no_issues(self):
        report = assess_quality(steady_trace())
        assert report.is_clean
        assert not report.has_gaps
        assert report.duplicate_job_ids == []
        assert all(report.analyses_available.values())
        assert any("no issues" in line for line in report.summary_lines())

    def test_logging_gap_detected(self):
        # A CC-d style outage: 12 silent hours in the middle of the trace.
        jobs = [make_job("a-%d" % index, index * HOUR) for index in range(24)]
        jobs += [make_job("b-%d" % index, (36 + index) * HOUR) for index in range(24)]
        report = assess_quality(Trace(jobs, name="gappy"), min_gap_hours=6.0)
        assert report.has_gaps
        assert len(report.gaps) == 1
        assert report.gaps[0].duration_hours == pytest.approx(13.0, abs=0.5)
        assert 0.0 < report.gap_fraction < 1.0
        assert not report.is_clean

    def test_short_silences_are_not_gaps(self):
        report = assess_quality(steady_trace(per_hour=1), min_gap_hours=6.0)
        assert not report.has_gaps

    def test_missing_dimensions_lower_coverage_and_disable_analyses(self):
        # FB-2010 style: no names, no output paths.
        trace = steady_trace(name=None, output_path=None, input_path=None)
        report = assess_quality(trace)
        assert report.dimension_coverage["name"] == 0.0
        assert report.dimension_coverage["input_path"] == 0.0
        assert report.analyses_available["naming (Fig 10)"] is False
        assert report.analyses_available["access_patterns (Figs 2-6)"] is False
        assert report.analyses_available["data_sizes (Fig 1)"] is True
        assert any("analyses unavailable" in line for line in report.summary_lines())

    def test_straddling_jobs_counted(self):
        jobs = [make_job("j%d" % index, index * HOUR) for index in range(10)]
        # Submitted mid-trace but still running past the last observed
        # submission (at 9 h): its recorded duration is only partially covered.
        jobs.append(make_job("long", 5 * HOUR, duration=10 * HOUR))
        report = assess_quality(Trace(jobs, name="straddle"))
        assert report.straddling_jobs == 1
        assert not report.is_clean

    def test_duplicate_ids_reported(self):
        jobs = [make_job("same", 0.0), make_job("same", HOUR), make_job("other", 2 * HOUR)]
        report = assess_quality(Trace(jobs, name="dups"))
        assert report.duplicate_job_ids == ["same"]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(AnalysisError):
            assess_quality(Trace([], name="empty"))
        with pytest.raises(AnalysisError):
            assess_quality(steady_trace(), min_gap_hours=0.0)

    def test_paper_workload_quality(self, cc_b_small_trace):
        report = assess_quality(cc_b_small_trace)
        assert report.n_jobs == len(cc_b_small_trace)
        assert report.analyses_available["clustering (Table 2)"] is True


class TestLoggingGap:
    def test_duration_properties(self):
        gap = LoggingGap(start_s=HOUR, end_s=4 * HOUR)
        assert gap.duration_s == pytest.approx(3 * HOUR)
        assert gap.duration_hours == pytest.approx(3.0)


class TestTrimBoundaries:
    def test_trim_removes_edge_jobs_only(self):
        trace = steady_trace(n_hours=48)
        trimmed = trim_boundaries(trace, window_hours=2.0)
        assert len(trimmed) < len(trace)
        first = trimmed.jobs[0].submit_time_s
        last = max(job.submit_time_s for job in trimmed)
        assert first >= trace.jobs[0].submit_time_s + 2 * HOUR
        assert last <= max(job.submit_time_s for job in trace) - 2 * HOUR

    def test_trim_preserves_interior_jobs(self):
        trace = steady_trace(n_hours=24)
        trimmed = trim_boundaries(trace, window_hours=1.0)
        interior_ids = {job.job_id for job in trace
                        if HOUR + trace.jobs[0].submit_time_s <= job.submit_time_s
                        < max(j.submit_time_s for j in trace) - HOUR}
        assert {job.job_id for job in trimmed} == interior_ids

    def test_too_short_trace_rejected(self):
        trace = steady_trace(n_hours=2)
        with pytest.raises(AnalysisError):
            trim_boundaries(trace, window_hours=2.0)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(AnalysisError):
            trim_boundaries(Trace([], name="empty"))
        with pytest.raises(AnalysisError):
            trim_boundaries(steady_trace(), window_hours=0.0)
