"""Unit tests for the Job schema."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.traces import FEATURE_DIMENSIONS, Job


def make_job(**overrides):
    base = dict(
        job_id="job_1", submit_time_s=10.0, duration_s=60.0, input_bytes=1e6,
        shuffle_bytes=2e5, output_bytes=5e4, map_task_seconds=120.0,
        reduce_task_seconds=30.0,
    )
    base.update(overrides)
    return Job(**base)


class TestValidation:
    def test_valid_job_constructs(self):
        job = make_job()
        assert job.job_id == "job_1"

    def test_empty_job_id_rejected(self):
        with pytest.raises(SchemaError):
            make_job(job_id="")

    def test_negative_input_rejected(self):
        with pytest.raises(SchemaError):
            make_job(input_bytes=-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchemaError):
            make_job(duration_s=-5.0)

    def test_non_numeric_bytes_rejected(self):
        with pytest.raises(SchemaError):
            make_job(output_bytes="lots")

    def test_fractional_task_count_rejected(self):
        with pytest.raises(SchemaError):
            make_job(map_tasks=2.5)

    def test_negative_task_count_rejected(self):
        with pytest.raises(SchemaError):
            make_job(reduce_tasks=-1)

    def test_numeric_strings_coerced(self):
        job = make_job(input_bytes="123456")
        assert job.input_bytes == 123456.0

    def test_task_counts_coerced_to_int(self):
        job = make_job(map_tasks=3.0)
        assert job.map_tasks == 3 and isinstance(job.map_tasks, int)


class TestDerivedQuantities:
    def test_total_bytes_sums_three_dimensions(self):
        job = make_job(input_bytes=1.0, shuffle_bytes=2.0, output_bytes=3.0)
        assert job.total_bytes == 6.0

    def test_total_task_seconds(self):
        job = make_job(map_task_seconds=10.0, reduce_task_seconds=5.0)
        assert job.total_task_seconds == 15.0

    def test_finish_time(self):
        job = make_job(submit_time_s=100.0, duration_s=50.0)
        assert job.finish_time_s == 150.0

    def test_map_only_detection(self):
        assert make_job(shuffle_bytes=0.0, reduce_task_seconds=0.0).is_map_only
        assert not make_job().is_map_only

    def test_data_ratio_expand_and_aggregate(self):
        assert make_job(input_bytes=10.0, output_bytes=100.0).data_ratio == 10.0
        assert make_job(input_bytes=100.0, output_bytes=10.0).data_ratio == 0.1

    def test_data_ratio_zero_input(self):
        assert make_job(input_bytes=0.0, output_bytes=10.0).data_ratio == float("inf")
        assert make_job(input_bytes=0.0, output_bytes=0.0).data_ratio == 1.0

    def test_first_word_lowercased_and_stripped(self):
        assert make_job(name="INSERT overwrite table x").first_word == "insert"
        assert make_job(name="PigLatin:job-17 step2").first_word == "piglatinjob"
        assert make_job(name=None).first_word is None
        assert make_job(name="12345 67").first_word is None

    def test_feature_vector_order_matches_declared_dimensions(self):
        job = make_job()
        vector = job.feature_vector()
        assert len(vector) == len(FEATURE_DIMENSIONS)
        assert vector[0] == job.input_bytes
        assert vector[3] == job.duration_s
        assert vector[5] == job.reduce_task_seconds


class TestSerialization:
    def test_round_trip_through_dict(self):
        job = make_job(name="select x", input_path="/a/b")
        clone = Job.from_dict(job.to_dict())
        assert clone == job

    def test_from_dict_ignores_unknown_keys(self):
        data = make_job().to_dict()
        data["exotic_future_field"] = 42
        job = Job.from_dict(data)
        assert job.job_id == "job_1"

    def test_from_dict_missing_required_field_raises(self):
        data = make_job().to_dict()
        del data["input_bytes"]
        with pytest.raises(SchemaError):
            Job.from_dict(data)


@given(
    input_bytes=st.floats(min_value=0, max_value=1e18, allow_nan=False),
    shuffle_bytes=st.floats(min_value=0, max_value=1e18, allow_nan=False),
    output_bytes=st.floats(min_value=0, max_value=1e18, allow_nan=False),
    duration=st.floats(min_value=0, max_value=1e7, allow_nan=False),
)
def test_property_round_trip_preserves_numeric_dimensions(input_bytes, shuffle_bytes,
                                                          output_bytes, duration):
    """Any non-negative job survives a to_dict/from_dict round trip unchanged."""
    job = make_job(input_bytes=input_bytes, shuffle_bytes=shuffle_bytes,
                   output_bytes=output_bytes, duration_s=duration)
    clone = Job.from_dict(job.to_dict())
    assert clone.total_bytes == pytest.approx(job.total_bytes)
    assert clone.duration_s == pytest.approx(duration)
