"""Shared fixtures for the test suite.

Traces used across many tests are generated once per session at small scales
so the full suite stays fast while still exercising realistic job mixtures.
"""

from __future__ import annotations

import pytest

from repro.traces import Job, Trace, load_workload


@pytest.fixture(scope="session")
def cc_e_trace() -> Trace:
    """A full-scale CC-e trace (the smallest Cloudera workload, ~10.8k jobs)."""
    return load_workload("CC-e", seed=7)


@pytest.fixture(scope="session")
def cc_b_small_trace() -> Trace:
    """A down-scaled CC-b trace (~2.3k jobs) for faster analyses."""
    return load_workload("CC-b", seed=7, scale=0.1)


@pytest.fixture(scope="session")
def fb_2009_small_trace() -> Trace:
    """A heavily down-scaled FB-2009 trace (~2.3k jobs)."""
    return load_workload("FB-2009", seed=7, scale=0.002)


@pytest.fixture()
def tiny_trace() -> Trace:
    """A hand-built six-job trace with known values, for exact assertions."""
    jobs = [
        Job(job_id="j1", submit_time_s=0.0, duration_s=30.0, input_bytes=1e6,
            shuffle_bytes=0.0, output_bytes=2e5, map_task_seconds=40.0,
            reduce_task_seconds=0.0, map_tasks=2, reduce_tasks=0,
            name="select user counts", framework="hive",
            input_path="/data/a", output_path="/out/a", workload="tiny"),
        Job(job_id="j2", submit_time_s=600.0, duration_s=120.0, input_bytes=5e9,
            shuffle_bytes=1e9, output_bytes=1e8, map_task_seconds=900.0,
            reduce_task_seconds=300.0, map_tasks=10, reduce_tasks=4,
            name="insert into table daily", framework="hive",
            input_path="/data/b", output_path="/out/b", workload="tiny"),
        Job(job_id="j3", submit_time_s=3600.0, duration_s=60.0, input_bytes=1e6,
            shuffle_bytes=0.0, output_bytes=1e6, map_task_seconds=50.0,
            reduce_task_seconds=0.0, map_tasks=2, reduce_tasks=0,
            name="piglatin etl step", framework="pig",
            input_path="/data/a", output_path="/out/c", workload="tiny"),
        Job(job_id="j4", submit_time_s=7200.0, duration_s=2400.0, input_bytes=2e12,
            shuffle_bytes=5e11, output_bytes=1e11, map_task_seconds=80000.0,
            reduce_task_seconds=30000.0, map_tasks=200, reduce_tasks=50,
            name="oozie launcher workflow", framework="oozie",
            input_path="/data/huge", output_path="/out/huge", workload="tiny"),
        Job(job_id="j5", submit_time_s=10800.0, duration_s=45.0, input_bytes=2e6,
            shuffle_bytes=0.0, output_bytes=5e5, map_task_seconds=30.0,
            reduce_task_seconds=0.0, map_tasks=1, reduce_tasks=0,
            name="select quick look", framework="hive",
            input_path="/out/b", output_path="/out/d", workload="tiny"),
        Job(job_id="j6", submit_time_s=14400.0, duration_s=50.0, input_bytes=3e6,
            shuffle_bytes=1e5, output_bytes=1e6, map_task_seconds=35.0,
            reduce_task_seconds=10.0, map_tasks=1, reduce_tasks=1,
            name="ad hoc report", framework=None,
            input_path="/data/a", output_path="/out/e", workload="tiny"),
    ]
    return Trace(jobs, name="tiny", machines=10)
