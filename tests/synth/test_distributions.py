"""Tests for the synthesis distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.synth import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    LogUniform,
    Mixture,
    Pareto,
    ZipfRank,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstant:
    def test_samples_constant(self):
        assert Constant(5.0).sample(rng(), 10).tolist() == [5.0] * 10

    def test_rejects_negative(self):
        with pytest.raises(SynthesisError):
            Constant(-1.0)


class TestLogNormal:
    def test_median_is_preserved(self):
        samples = LogNormal(1000.0, 0.5).sample(rng(), 20000)
        assert np.median(samples) == pytest.approx(1000.0, rel=0.05)

    def test_zero_median_gives_zeros(self):
        assert LogNormal(0.0, 1.0).sample(rng(), 5).tolist() == [0.0] * 5

    def test_mean_formula(self):
        dist = LogNormal(100.0, 0.8)
        samples = dist.sample(rng(), 200000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_rejects_negative_sigma(self):
        with pytest.raises(SynthesisError):
            LogNormal(1.0, -0.1)


class TestLogUniform:
    def test_bounds_respected(self):
        samples = LogUniform(10.0, 1000.0).sample(rng(), 1000)
        assert samples.min() >= 10.0 and samples.max() <= 1000.0

    def test_invalid_bounds(self):
        with pytest.raises(SynthesisError):
            LogUniform(10.0, 1.0)
        with pytest.raises(SynthesisError):
            LogUniform(0.0, 1.0)


class TestExponentialAndPareto:
    def test_exponential_mean(self):
        samples = Exponential(50.0).sample(rng(), 100000)
        assert samples.mean() == pytest.approx(50.0, rel=0.05)

    def test_pareto_minimum_is_scale(self):
        samples = Pareto(10.0, 2.0).sample(rng(), 10000)
        assert samples.min() >= 10.0

    def test_pareto_infinite_mean_below_one(self):
        assert Pareto(1.0, 0.9).mean() == float("inf")

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            Exponential(0.0)
        with pytest.raises(SynthesisError):
            Pareto(1.0, 0.0)


class TestZipfRank:
    def test_probabilities_sum_to_one(self):
        assert ZipfRank(100, 5 / 6).probabilities().sum() == pytest.approx(1.0)

    def test_rank_one_most_likely(self):
        probabilities = ZipfRank(50, 1.0).probabilities()
        assert probabilities[0] == probabilities.max()

    def test_samples_in_range(self):
        samples = ZipfRank(20, 0.8).sample(rng(), 5000)
        assert samples.min() >= 1 and samples.max() <= 20

    def test_empirical_frequency_matches_probabilities(self):
        dist = ZipfRank(10, 1.0)
        samples = dist.sample(rng(), 100000).astype(int)
        observed = np.bincount(samples, minlength=11)[1:] / samples.size
        assert observed[0] == pytest.approx(dist.probabilities()[0], rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            ZipfRank(0, 1.0)
        with pytest.raises(SynthesisError):
            ZipfRank(10, 0.0)


class TestEmpirical:
    def test_resamples_only_observed_values(self):
        dist = Empirical([1.0, 2.0, 3.0])
        assert set(dist.sample(rng(), 100).tolist()) <= {1.0, 2.0, 3.0}

    def test_smoothing_jitters(self):
        dist = Empirical([10.0], smooth=True, smooth_sigma=0.2)
        samples = dist.sample(rng(), 100)
        assert len(set(samples.tolist())) > 1

    def test_quantile(self):
        assert Empirical(range(1, 101)).quantile(0.5) == pytest.approx(50.5)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(SynthesisError):
            Empirical([])
        with pytest.raises(SynthesisError):
            Empirical([-1.0])


class TestMixture:
    def test_mixture_mean_is_weighted(self):
        mixture = Mixture([Constant(0.0), Constant(10.0)], weights=[0.25, 0.75])
        assert mixture.mean() == pytest.approx(7.5)
        samples = mixture.sample(rng(), 20000)
        assert samples.mean() == pytest.approx(7.5, abs=0.2)

    def test_invalid_weights(self):
        with pytest.raises(SynthesisError):
            Mixture([Constant(1.0)], weights=[1.0, 2.0])
        with pytest.raises(SynthesisError):
            Mixture([])


@settings(max_examples=25, deadline=None)
@given(median=st.floats(min_value=1e-3, max_value=1e15),
       sigma=st.floats(min_value=0.0, max_value=3.0))
def test_property_lognormal_samples_non_negative(median, sigma):
    """Log-normal samples are always non-negative and finite."""
    samples = LogNormal(median, sigma).sample(rng(1), 256)
    assert np.all(samples >= 0)
    assert np.all(np.isfinite(samples))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=500),
       s=st.floats(min_value=0.1, max_value=3.0))
def test_property_zipf_ranks_within_bounds(n, s):
    """Zipf samples always fall in {1..n} and probabilities are normalized."""
    dist = ZipfRank(n, s)
    samples = dist.sample(rng(2), 128)
    assert samples.min() >= 1 and samples.max() <= n
    assert dist.probabilities().sum() == pytest.approx(1.0)
