"""Tests for arrival processes and the file popularity model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.synth import (
    DiurnalBurstyArrivals,
    FileCatalog,
    FilePopularityModel,
    PoissonArrivals,
    diurnal_rate_profile,
    sine_reference_series,
)
from repro.units import HOUR, DAY


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPoissonArrivals:
    def test_count_and_bounds(self):
        times = PoissonArrivals().generate(rng(), 500, 1000.0)
        assert times.size == 500
        assert times.min() >= 0 and times.max() < 1000.0
        assert np.all(np.diff(times) >= 0)

    def test_zero_arrivals(self):
        assert PoissonArrivals().generate(rng(), 0, 10.0).size == 0

    def test_invalid_args(self):
        with pytest.raises(SynthesisError):
            PoissonArrivals().generate(rng(), -1, 10.0)
        with pytest.raises(SynthesisError):
            PoissonArrivals().generate(rng(), 1, 0.0)


class TestDiurnalProfile:
    def test_peak_hour_has_highest_rate(self):
        hours = np.arange(24)
        profile = diurnal_rate_profile(hours, diurnal_amplitude=0.5, peak_hour=15.0)
        assert int(np.argmax(profile)) == 15

    def test_weekend_scaled_down(self):
        weekday = diurnal_rate_profile(np.array([12.0]), weekend_factor=0.5)
        weekend = diurnal_rate_profile(np.array([120.0 + 12.0]), weekend_factor=0.5)
        assert weekend[0] == pytest.approx(weekday[0] * 0.5)

    def test_always_positive(self):
        profile = diurnal_rate_profile(np.arange(336), diurnal_amplitude=1.0, weekend_factor=0.1)
        assert np.all(profile > 0)


class TestDiurnalBurstyArrivals:
    def test_count_bounds_and_order(self):
        arrivals = DiurnalBurstyArrivals(burstiness=1.0)
        times = arrivals.generate(rng(), 2000, 3 * DAY)
        assert times.size == 2000
        assert times.min() >= 0 and times.max() < 3 * DAY
        assert np.all(np.diff(times) >= 0)

    def test_higher_burstiness_raises_peak_to_median(self):
        calm = DiurnalBurstyArrivals(burstiness=0.0)
        bursty = DiurnalBurstyArrivals(burstiness=2.0)
        def peak_to_median(process):
            times = process.generate(rng(42), 20000, 14 * DAY)
            hourly = np.bincount((times // HOUR).astype(int))
            hourly = hourly[hourly > 0]
            return hourly.max() / np.median(hourly)
        assert peak_to_median(bursty) > peak_to_median(calm)

    def test_hourly_weights_normalized(self):
        weights = DiurnalBurstyArrivals().hourly_weights(rng(), 100)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            DiurnalBurstyArrivals(diurnal_amplitude=1.5)
        with pytest.raises(SynthesisError):
            DiurnalBurstyArrivals(weekend_factor=0.0)
        with pytest.raises(SynthesisError):
            DiurnalBurstyArrivals(burstiness=-0.1)


class TestSineReference:
    def test_period_is_24_hours(self):
        series = sine_reference_series(48, offset=2.0)
        assert series[0] == pytest.approx(series[24])

    def test_positive_everywhere(self):
        assert np.all(sine_reference_series(240, offset=2.0) > 0)

    def test_offset_must_exceed_amplitude(self):
        with pytest.raises(SynthesisError):
            sine_reference_series(24, offset=0.5, amplitude=1.0)


class TestFileCatalog:
    def test_paths_and_sizes(self):
        catalog = FileCatalog(10, "/data", rng())
        assert catalog.path(1) == "/data/00000001"
        assert catalog.size(1) > 0
        assert catalog.total_bytes() == pytest.approx(catalog.sizes.sum())

    def test_rank_out_of_range(self):
        catalog = FileCatalog(3, "/d", rng())
        with pytest.raises(SynthesisError):
            catalog.path(0)
        with pytest.raises(SynthesisError):
            catalog.size(4)


class TestFilePopularityModel:
    def make_model(self, **overrides):
        params = dict(n_input_files=500, n_output_files=500,
                      input_reaccess_fraction=0.4, output_reaccess_fraction=0.2,
                      reaccess_halflife_s=HOUR)
        params.update(overrides)
        return FilePopularityModel(**params)

    def test_assignment_lengths(self):
        times = np.sort(np.random.default_rng(0).uniform(0, DAY, 300))
        assignment = self.make_model().assign(times, rng())
        assert len(assignment.input_paths) == 300
        assert len(assignment.output_paths) == 300
        assert len(assignment.input_file_sizes) == 300

    def test_unrecorded_dimensions_are_none(self):
        times = np.arange(50, dtype=float)
        assignment = self.make_model().assign(times, rng(), record_inputs=False,
                                              record_outputs=False)
        assert all(path is None for path in assignment.input_paths)
        assert all(path is None for path in assignment.output_paths)

    def test_reaccess_fraction_roughly_matches_target(self):
        times = np.sort(np.random.default_rng(1).uniform(0, 5 * DAY, 4000))
        assignment = self.make_model(input_reaccess_fraction=0.5,
                                     output_reaccess_fraction=0.2).assign(times, rng(1))
        seen = set()
        repeats = 0
        for path in assignment.input_paths:
            if path in seen:
                repeats += 1
            seen.add(path)
        fraction = repeats / len(assignment.input_paths)
        assert 0.5 < fraction < 0.9  # target 0.7 plus popularity collisions

    def test_size_binned_assignment_keeps_sizes_consistent(self):
        times = np.sort(np.random.default_rng(2).uniform(0, DAY, 1000))
        sizes = np.random.default_rng(3).choice([1e6, 1e9, 1e12], size=1000)
        assignment = self.make_model().assign(times, rng(2), input_bytes=sizes,
                                              output_bytes=sizes)
        # Every assigned file size must stay within the decade of the job size.
        for job_size, file_size in zip(sizes, assignment.input_file_sizes):
            assert 0.099 * job_size <= file_size <= 10.01 * job_size

    def test_zero_reaccess_gives_all_fresh_paths(self):
        times = np.arange(200, dtype=float)
        assignment = self.make_model(input_reaccess_fraction=0.0,
                                     output_reaccess_fraction=0.0).assign(times, rng())
        assert len(set(assignment.input_paths)) == 200

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            self.make_model(input_reaccess_fraction=0.8, output_reaccess_fraction=0.4)
        with pytest.raises(SynthesisError):
            self.make_model(reaccess_halflife_s=0.0)
        with pytest.raises(SynthesisError):
            self.make_model(n_input_files=0)

    def test_mismatched_size_array_rejected(self):
        with pytest.raises(SynthesisError):
            self.make_model().assign(np.arange(10, dtype=float), rng(), input_bytes=[1.0])


@settings(max_examples=20, deadline=None)
@given(n_arrivals=st.integers(min_value=1, max_value=2000),
       horizon_hours=st.integers(min_value=1, max_value=24 * 14),
       burstiness=st.floats(min_value=0.0, max_value=2.0))
def test_property_arrivals_sorted_and_in_horizon(n_arrivals, horizon_hours, burstiness):
    """Any parameterization produces exactly n sorted arrivals inside the horizon."""
    times = DiurnalBurstyArrivals(burstiness=burstiness).generate(
        np.random.default_rng(0), n_arrivals, horizon_hours * 3600.0)
    assert times.size == n_arrivals
    assert np.all(np.diff(times) >= 0)
    assert times.min() >= 0.0
    assert times.max() < horizon_hours * 3600.0
