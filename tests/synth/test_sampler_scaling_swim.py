"""Tests for empirical sampling, scale-down operations, and the SWIM synthesizer."""

import numpy as np
import pytest

from repro.errors import ScalingError, SynthesisError
from repro.synth import (
    ScalePlan,
    SwimSynthesizer,
    TraceSampler,
    scale_cluster,
    scale_load,
    scale_time_window,
    stratified_sample,
)
from repro.traces import Job, Trace
from repro.units import GB, HOUR


def build_trace(n_small=90, n_big=10):
    jobs = []
    for index in range(n_small):
        jobs.append(Job(job_id="s%d" % index, submit_time_s=index * 60.0, duration_s=30.0,
                        input_bytes=1e6, shuffle_bytes=0.0, output_bytes=1e5,
                        map_task_seconds=20.0, reduce_task_seconds=0.0,
                        cluster_label="Small jobs", input_path="/in/s%d" % (index % 7)))
    for index in range(n_big):
        jobs.append(Job(job_id="b%d" % index, submit_time_s=index * 600.0, duration_s=1800.0,
                        input_bytes=1e12, shuffle_bytes=5e11, output_bytes=1e11,
                        map_task_seconds=5e4, reduce_task_seconds=2e4,
                        cluster_label="Huge", input_path="/in/b%d" % index))
    return Trace(jobs, name="mix", machines=100)


class TestStratifiedSample:
    def test_preserves_strata_shares(self):
        trace = build_trace()
        sampled = stratified_sample(trace, 50, np.random.default_rng(0))
        labels = [job.cluster_label for job in sampled]
        assert len(sampled) == 50
        assert 0.8 <= labels.count("Small jobs") / 50 <= 0.95
        assert labels.count("Huge") >= 1

    def test_every_stratum_survives_tiny_samples(self):
        sampled = stratified_sample(build_trace(), 2, np.random.default_rng(0))
        assert {job.cluster_label for job in sampled} == {"Small jobs", "Huge"}

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(SynthesisError):
            stratified_sample(Trace([], name="e"), 5, np.random.default_rng(0))
        with pytest.raises(SynthesisError):
            stratified_sample(build_trace(), 0, np.random.default_rng(0))


class TestTraceSampler:
    def test_sample_counts_and_horizon(self):
        sampler = TraceSampler(build_trace(), seed=1)
        synthetic = sampler.sample(200, horizon_s=2 * HOUR)
        assert len(synthetic) == 200
        assert synthetic.submit_times().max() < 2 * HOUR
        assert synthetic.jobs[0].job_id.startswith("synth_")

    def test_deterministic(self):
        a = TraceSampler(build_trace(), seed=3).sample(50, HOUR)
        b = TraceSampler(build_trace(), seed=3).sample(50, HOUR)
        assert [job.to_dict() for job in a] == [job.to_dict() for job in b]

    def test_rejects_empty_source_and_bad_horizon(self):
        with pytest.raises(SynthesisError):
            TraceSampler(Trace([], name="e"))
        with pytest.raises(SynthesisError):
            TraceSampler(build_trace()).sample(10, 0.0)


class TestScaleTimeWindow:
    def test_window_rebased_to_zero(self):
        trace = build_trace()
        windowed, plan = scale_time_window(trace, 1800.0, start_s=0.0)
        assert windowed.submit_times().min() >= 0
        assert windowed.submit_times().max() < 1800.0
        assert plan.method == "time_window"
        assert plan.result_jobs == len(windowed)

    def test_window_longer_than_trace_rejected(self):
        with pytest.raises(ScalingError):
            scale_time_window(build_trace(), 1e9)

    def test_invalid_window(self):
        with pytest.raises(ScalingError):
            scale_time_window(build_trace(), -5.0)


class TestScaleLoad:
    def test_thinning_keeps_roughly_fraction(self):
        trace = build_trace(n_small=900, n_big=100)
        scaled, plan = scale_load(trace, 0.3, seed=0)
        assert 0.2 * len(trace) < len(scaled) < 0.4 * len(trace)
        assert plan.factor == 0.3

    def test_classes_preserved(self):
        scaled, _ = scale_load(build_trace(), 0.01, seed=0)
        assert {job.cluster_label for job in scaled} == {"Small jobs", "Huge"}

    def test_invalid_fraction(self):
        with pytest.raises(ScalingError):
            scale_load(build_trace(), 0.0)
        with pytest.raises(ScalingError):
            scale_load(build_trace(), 1.5)


class TestScaleCluster:
    def test_data_scaled_by_machine_ratio(self):
        trace = build_trace()
        scaled, plan = scale_cluster(trace, source_machines=100, target_machines=10)
        assert plan.factor == pytest.approx(0.1)
        assert scaled.machines == 10
        assert scaled.bytes_moved() == pytest.approx(0.1 * trace.bytes_moved(), rel=1e-6)
        # Durations and submit times are untouched.
        assert scaled.submit_times().tolist() == trace.submit_times().tolist()

    def test_invalid_machines(self):
        with pytest.raises(ScalingError):
            scale_cluster(build_trace(), 0, 10)


class TestSwimSynthesizer:
    def test_plan_contents(self):
        source = build_trace(n_small=500, n_big=20)
        plan = SwimSynthesizer(source, seed=0).synthesize(
            n_jobs=300, horizon_s=2 * HOUR, target_machines=10)
        assert len(plan.trace) == 300
        assert plan.target_machines == 10
        assert plan.layout.n_files > 0
        assert plan.layout.total_bytes > 0
        assert len(plan.scale_plans) == 2  # load resample + cluster scaling
        assert "Synthetic workload" in plan.describe()

    def test_small_job_share_preserved(self):
        source = build_trace(n_small=950, n_big=50)
        plan = SwimSynthesizer(source, seed=1).synthesize(n_jobs=400, horizon_s=HOUR)
        source_share = np.mean([job.total_bytes <= 10 * GB for job in source])
        synth_share = np.mean([job.total_bytes <= 10 * GB for job in plan.trace])
        assert abs(source_share - synth_share) < 0.1

    def test_no_cluster_scaling_when_target_matches(self):
        plan = SwimSynthesizer(build_trace(), seed=0).synthesize(
            n_jobs=50, horizon_s=HOUR, target_machines=100)
        assert len(plan.scale_plans) == 1

    def test_requires_known_source_machines(self):
        trace = build_trace()
        trace.machines = None
        with pytest.raises(SynthesisError):
            SwimSynthesizer(trace)

    def test_invalid_arguments(self):
        synthesizer = SwimSynthesizer(build_trace(), seed=0)
        with pytest.raises(SynthesisError):
            synthesizer.synthesize(n_jobs=0, horizon_s=HOUR)
        with pytest.raises(SynthesisError):
            synthesizer.synthesize(n_jobs=10, horizon_s=0.0)
        with pytest.raises(SynthesisError):
            SwimSynthesizer(Trace([], name="e"))


class TestScalePlan:
    def test_describe_mentions_method_and_counts(self):
        plan = ScalePlan(source_name="x", method="load", factor=0.5,
                         source_jobs=100, result_jobs=50, notes="test")
        text = plan.describe()
        assert "load" in text and "100" in text and "50" in text
