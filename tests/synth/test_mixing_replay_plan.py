"""Tests for framework-mix synthesis and SWIM-style replay-plan rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SynthesisError
from repro.synth import (
    PAPER_MIXES,
    FrameworkMix,
    FrameworkMixModel,
    ReplayPlan,
    SwimSynthesizer,
    build_replay_plan,
    mix_from_trace,
    parse_replay_plan,
)
from repro.traces import Job, Trace
from repro.units import GB, MB


def unnamed_trace(n_jobs=400, seed_offset=0):
    jobs = [
        Job(job_id="j%d" % (index + seed_offset), submit_time_s=index * 10.0, duration_s=30.0,
            input_bytes=200 * MB, shuffle_bytes=20 * MB, output_bytes=20 * MB,
            map_task_seconds=60.0, reduce_task_seconds=20.0, map_tasks=2, reduce_tasks=1,
            input_path="/data/%03d" % (index % 37))
        for index in range(n_jobs)
    ]
    return Trace(jobs, name="unnamed", machines=25)


class TestFrameworkMix:
    def test_shares_normalized(self):
        mix = FrameworkMix({"insert": 2.0, "piglatin": 1.0, "oozie": 1.0})
        assert sum(mix.shares.values()) == pytest.approx(1.0)
        assert mix.shares["insert"] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(SynthesisError):
            FrameworkMix({})
        with pytest.raises(SynthesisError):
            FrameworkMix({"insert": 0.0})
        with pytest.raises(SynthesisError):
            FrameworkMix({"insert": -1.0, "select": 2.0})

    def test_framework_shares_aggregate_words(self):
        mix = FrameworkMix({"insert": 0.3, "select": 0.2, "piglatin": 0.4, "adhoc": 0.1})
        shares = mix.framework_shares()
        assert shares["hive"] == pytest.approx(0.5)
        assert shares["pig"] == pytest.approx(0.4)
        assert shares["native"] == pytest.approx(0.1)

    def test_paper_mixes_cover_named_workloads(self):
        assert set(PAPER_MIXES) == {"FB-2009", "CC-a", "CC-b", "CC-c", "CC-d", "CC-e"}
        for name, mix in PAPER_MIXES.items():
            assert sum(mix.shares.values()) == pytest.approx(1.0)
            # Figure 10: two frameworks dominate every workload.
            top_two = mix.dominant_frameworks(2)
            assert len(top_two) == 2
            shares = mix.framework_shares()
            assert shares[top_two[0]] + shares[top_two[1]] > 0.4


class TestFrameworkMixModel:
    def test_assignment_matches_mix_for_large_traces(self):
        mix = FrameworkMix({"insert": 0.6, "piglatin": 0.3, "oozie": 0.1})
        named = FrameworkMixModel(mix, seed=11).assign_names(unnamed_trace(3000))
        estimated = mix_from_trace(named)
        assert estimated.framework_shares()["hive"] == pytest.approx(0.6, abs=0.05)
        assert estimated.framework_shares()["pig"] == pytest.approx(0.3, abs=0.05)

    def test_assignment_is_deterministic(self):
        mix = PAPER_MIXES["CC-d"]
        first = FrameworkMixModel(mix, seed=3).assign_names(unnamed_trace())
        second = FrameworkMixModel(mix, seed=3).assign_names(unnamed_trace())
        assert [job.name for job in first] == [job.name for job in second]

    def test_existing_names_are_preserved(self, tiny_trace):
        named = FrameworkMixModel(PAPER_MIXES["CC-a"], seed=1).assign_names(tiny_trace)
        assert [job.name for job in named] == [job.name for job in tiny_trace]

    def test_numeric_dimensions_untouched(self):
        source = unnamed_trace(100)
        named = FrameworkMixModel(PAPER_MIXES["CC-e"], seed=2).assign_names(source)
        assert [job.input_bytes for job in named] == [job.input_bytes for job in source]
        assert [job.submit_time_s for job in named] == [job.submit_time_s for job in source]

    def test_first_words_match_intended_word(self):
        # Every template's first word must reduce to the mix word it encodes,
        # otherwise naming analyses would misclassify the synthetic jobs.
        mix = FrameworkMix({"insert": 0.2, "select": 0.2, "piglatin": 0.2,
                            "oozie": 0.2, "distcp": 0.2})
        named = FrameworkMixModel(mix, seed=5).assign_names(unnamed_trace(500))
        observed_words = {job.first_word for job in named}
        assert observed_words <= {"insert", "select", "piglatin", "oozie", "distcp"}

    def test_empty_trace_rejected(self):
        with pytest.raises(SynthesisError):
            FrameworkMixModel(PAPER_MIXES["CC-a"]).assign_names(Trace([], name="empty"))


class TestMixFromTrace:
    def test_top_n_folding(self, tiny_trace):
        mix = mix_from_trace(tiny_trace, top_n=2)
        assert "[others]" in mix.shares
        assert sum(mix.shares.values()) == pytest.approx(1.0)

    def test_unnamed_trace_rejected(self):
        with pytest.raises(SynthesisError):
            mix_from_trace(unnamed_trace(10))


class TestReplayPlan:
    def _plan(self, n_jobs=150):
        source = unnamed_trace(600)
        synthesizer = SwimSynthesizer(source, seed=9)
        plan = synthesizer.synthesize(n_jobs=n_jobs, horizon_s=1800.0, target_machines=10)
        return build_replay_plan(plan)

    def test_build_from_synthesizer_plan(self):
        plan = self._plan()
        assert plan.n_jobs == 150
        assert plan.layout.n_files > 0
        assert plan.horizon_s <= 1800.0
        assert plan.commands == sorted(plan.commands, key=lambda command: command.at_s)

    def test_build_from_plain_trace(self, tiny_trace):
        plan = build_replay_plan(tiny_trace)
        assert plan.n_jobs == len(tiny_trace)
        assert plan.commands[0].at_s == 0.0

    def test_render_parse_round_trip(self):
        plan = self._plan(80)
        parsed = parse_replay_plan(plan.render())
        assert parsed.name == plan.name
        assert parsed.n_jobs == plan.n_jobs
        assert parsed.layout.n_files == plan.layout.n_files
        assert parsed.layout.total_bytes == pytest.approx(plan.layout.total_bytes)
        for original, round_tripped in zip(plan.commands, parsed.commands):
            assert round_tripped.job_id == original.job_id
            assert round_tripped.at_s == pytest.approx(original.at_s, abs=1e-3)
            assert round_tripped.input_bytes == pytest.approx(original.input_bytes, abs=1.0)

    def test_write_and_read_file(self, tmp_path):
        plan = self._plan(40)
        path = tmp_path / "replay_plan.txt"
        plan.write(str(path))
        parsed = parse_replay_plan(path.read_text(encoding="utf-8"))
        assert parsed.n_jobs == 40

    def test_to_trace_is_replayable(self):
        from repro.simulator import ClusterConfig, WorkloadReplayer
        plan = self._plan(60)
        trace = plan.to_trace()
        assert len(trace) == 60
        metrics = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=5)).replay(trace)
        assert metrics.finished_jobs == 60

    def test_volumes_preserved_into_trace(self, tiny_trace):
        trace = build_replay_plan(tiny_trace).to_trace()
        assert sorted(job.input_bytes for job in trace) == sorted(
            job.input_bytes for job in tiny_trace)

    def test_parse_rejects_malformed_input(self):
        with pytest.raises(SynthesisError):
            parse_replay_plan("submit at=0 id=x\n")  # missing plan header + fields
        with pytest.raises(SynthesisError):
            parse_replay_plan("plan name=x machines=- jobs=0\nfrobnicate foo=1\n")
        with pytest.raises(SynthesisError):
            parse_replay_plan("")

    def test_build_from_unsupported_source_rejected(self):
        with pytest.raises(SynthesisError):
            build_replay_plan(42)

    def test_build_from_empty_trace_rejected(self):
        with pytest.raises(SynthesisError):
            build_replay_plan(Trace([], name="empty"))
