"""Tests for straggler injection, speculative execution, and impact analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator import (
    ClusterConfig,
    SpeculativeExecutionModel,
    StragglerImpact,
    StragglerInjectionStats,
    StragglerModel,
    WorkloadReplayer,
    straggler_impact,
    straggler_task_transform,
)
from repro.simulator.tasks import split_job
from repro.traces import Job, Trace
from repro.units import GB, MB


def make_job(job_id="j1", maps=8, reduces=4, map_seconds=240.0, reduce_seconds=120.0,
             input_bytes=1 * GB, submit=0.0):
    return Job(
        job_id=job_id, submit_time_s=submit, duration_s=60.0,
        input_bytes=float(input_bytes), shuffle_bytes=float(input_bytes) / 4,
        output_bytes=float(input_bytes) / 10, map_task_seconds=map_seconds,
        reduce_task_seconds=reduce_seconds, map_tasks=maps, reduce_tasks=reduces,
        input_path="/data/%s" % job_id,
    )


class TestStragglerModel:
    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError):
            StragglerModel(probability=1.5)
        with pytest.raises(SimulationError):
            StragglerModel(probability=-0.1)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(SimulationError):
            StragglerModel(slowdown_factor=0.5)

    def test_speculation_validation(self):
        with pytest.raises(SimulationError):
            SpeculativeExecutionModel(min_comparable_tasks=1)
        with pytest.raises(SimulationError):
            SpeculativeExecutionModel(rescue_cap_factor=0.9)
        with pytest.raises(SimulationError):
            SpeculativeExecutionModel(relaunch_overhead_s=-1.0)


class TestStragglerInjection:
    def test_zero_probability_changes_nothing(self):
        sim_job = split_job(make_job())
        original = [task.duration_s for task in sim_job.map_tasks + sim_job.reduce_tasks]
        transform = straggler_task_transform(StragglerModel(probability=0.0, seed=1))
        transform(sim_job)
        assert [task.duration_s for task in sim_job.map_tasks + sim_job.reduce_tasks] == original
        assert transform.stats.stragglers_injected == 0

    def test_probability_one_slows_every_task(self):
        sim_job = split_job(make_job())
        original = [task.duration_s for task in sim_job.map_tasks]
        transform = straggler_task_transform(
            StragglerModel(probability=1.0, slowdown_factor=3.0, seed=1), speculation=None)
        transform(sim_job)
        assert all(task.duration_s == pytest.approx(3.0 * before)
                   for task, before in zip(sim_job.map_tasks, original))
        assert transform.stats.straggler_rate == pytest.approx(1.0)
        assert transform.stats.jobs_affected == 1

    def test_injection_is_deterministic_given_seed(self):
        durations = []
        for _ in range(2):
            sim_job = split_job(make_job())
            transform = straggler_task_transform(
                StragglerModel(probability=0.3, slowdown_factor=4.0, seed=42))
            transform(sim_job)
            durations.append([task.duration_s for task in sim_job.map_tasks])
        assert durations[0] == durations[1]

    def test_speculation_caps_detectable_stragglers(self):
        sim_job = split_job(make_job(maps=16, reduces=0, map_seconds=480.0, reduce_seconds=0.0))
        normal = sim_job.map_tasks[0].duration_s
        speculation = SpeculativeExecutionModel(min_comparable_tasks=4,
                                                rescue_cap_factor=1.5,
                                                relaunch_overhead_s=0.0)
        transform = straggler_task_transform(
            StragglerModel(probability=1.0, slowdown_factor=10.0, seed=0), speculation)
        transform(sim_job)
        assert all(task.duration_s <= 1.5 * normal + 1e-9 for task in sim_job.map_tasks)
        assert transform.stats.stragglers_rescued == len(sim_job.map_tasks)

    def test_single_task_job_cannot_be_rescued(self):
        # The §6.2 argument: one task has no siblings to compare against.
        sim_job = split_job(make_job(maps=1, reduces=0, map_seconds=30.0, reduce_seconds=0.0))
        speculation = SpeculativeExecutionModel(min_comparable_tasks=4)
        transform = straggler_task_transform(
            StragglerModel(probability=1.0, slowdown_factor=10.0, seed=0), speculation)
        transform(sim_job)
        assert sim_job.map_tasks[0].duration_s == pytest.approx(300.0)
        assert transform.stats.stragglers_rescued == 0
        assert transform.stats.stragglers_undetectable == 1

    def test_rescue_never_slower_than_straggling(self):
        # With a huge overhead the "rescue" would be slower; it must not be applied.
        sim_job = split_job(make_job(maps=8, reduces=0, map_seconds=80.0, reduce_seconds=0.0))
        speculation = SpeculativeExecutionModel(min_comparable_tasks=2,
                                                rescue_cap_factor=1.0,
                                                relaunch_overhead_s=1e6)
        transform = straggler_task_transform(
            StragglerModel(probability=1.0, slowdown_factor=2.0, seed=0), speculation)
        transform(sim_job)
        assert all(task.duration_s == pytest.approx(20.0) for task in sim_job.map_tasks)

    @given(probability=st.floats(min_value=0.0, max_value=1.0),
           slowdown=st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_durations_never_shrink_without_speculation(self, probability, slowdown):
        sim_job = split_job(make_job(maps=6, reduces=3))
        before = [task.duration_s for task in sim_job.map_tasks + sim_job.reduce_tasks]
        transform = straggler_task_transform(
            StragglerModel(probability=probability, slowdown_factor=slowdown, seed=3))
        transform(sim_job)
        after = [task.duration_s for task in sim_job.map_tasks + sim_job.reduce_tasks]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(before, after))


class TestStragglerImpact:
    def _replay_pair(self, trace, probability):
        config = ClusterConfig(n_nodes=10)
        baseline = WorkloadReplayer(cluster_config=config).replay(trace)
        stats = StragglerInjectionStats()
        transform = straggler_task_transform(
            StragglerModel(probability=probability, slowdown_factor=5.0, seed=2),
            SpeculativeExecutionModel(), stats)
        perturbed = WorkloadReplayer(cluster_config=config, task_transform=transform).replay(trace)
        return baseline, perturbed, stats

    def test_impact_of_injection_is_nonnegative(self):
        jobs = [make_job("small%d" % i, maps=1, reduces=0, map_seconds=30.0,
                         reduce_seconds=0.0, input_bytes=50 * MB, submit=i * 10.0)
                for i in range(20)]
        jobs += [make_job("large%d" % i, maps=60, reduces=20, map_seconds=3600.0,
                          reduce_seconds=1200.0, input_bytes=200 * GB, submit=i * 40.0)
                 for i in range(5)]
        trace = Trace(jobs, name="mixed", machines=10)
        baseline, perturbed, stats = self._replay_pair(trace, probability=0.5)
        impact = straggler_impact(baseline, perturbed, small_job_threshold_bytes=10 * GB)
        assert stats.stragglers_injected > 0
        assert impact.mean_slowdown_small >= 1.0 - 1e-9
        assert impact.mean_slowdown_large >= 1.0 - 1e-9
        assert 0.0 <= impact.fraction_small_affected <= 1.0

    def test_no_injection_means_no_slowdown(self):
        jobs = [make_job("j%d" % i, submit=i * 30.0) for i in range(10)]
        trace = Trace(jobs, name="clean", machines=10)
        baseline, perturbed, _ = self._replay_pair(trace, probability=0.0)
        impact = straggler_impact(baseline, perturbed)
        assert impact.mean_slowdown_small == pytest.approx(1.0)
        assert impact.fraction_small_affected == 0.0

    def test_disjoint_runs_rejected(self):
        trace_a = Trace([make_job("a")], name="a")
        trace_b = Trace([make_job("b")], name="b")
        config = ClusterConfig(n_nodes=5)
        metrics_a = WorkloadReplayer(cluster_config=config).replay(trace_a)
        metrics_b = WorkloadReplayer(cluster_config=config).replay(trace_b)
        with pytest.raises(SimulationError):
            straggler_impact(metrics_a, metrics_b)
