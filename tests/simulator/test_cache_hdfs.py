"""Tests for the cache policies and the HDFS model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CacheError, SimulationError
from repro.simulator import (
    Hdfs,
    HdfsConfig,
    LfuCache,
    LruCache,
    NoCache,
    SizeThresholdCache,
    UnlimitedCache,
)
from repro.units import GB, MB


class TestLruCache:
    def test_hit_after_admission(self):
        cache = LruCache(capacity_bytes=10 * MB)
        assert cache.access("/a", 1 * MB, 0.0) is False
        assert cache.access("/a", 1 * MB, 1.0) is True
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_order_is_lru(self):
        cache = LruCache(capacity_bytes=2 * MB)
        cache.access("/a", 1 * MB, 0.0)
        cache.access("/b", 1 * MB, 1.0)
        cache.access("/a", 1 * MB, 2.0)   # /a becomes most recent
        cache.access("/c", 1 * MB, 3.0)   # evicts /b
        assert cache.contains("/a")
        assert not cache.contains("/b")
        assert cache.stats.evictions == 1

    def test_oversized_file_never_cached(self):
        cache = LruCache(capacity_bytes=1 * MB)
        cache.access("/big", 10 * MB, 0.0)
        assert not cache.contains("/big")
        assert cache.used_bytes == 0.0

    def test_invalidate(self):
        cache = LruCache(capacity_bytes=10 * MB)
        cache.access("/a", 1 * MB, 0.0)
        cache.invalidate("/a")
        assert not cache.contains("/a")
        assert cache.used_bytes == 0.0

    def test_capacity_never_exceeded(self):
        cache = LruCache(capacity_bytes=5 * MB)
        for index in range(50):
            cache.access("/f%d" % index, 1 * MB, float(index))
            assert cache.used_bytes <= 5 * MB

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            LruCache(capacity_bytes=-1.0)


class TestOtherPolicies:
    def test_no_cache_never_hits(self):
        cache = NoCache()
        for index in range(5):
            assert cache.access("/a", 1 * MB, float(index)) is False
        assert cache.stats.hit_rate == 0.0
        assert cache.stats.admissions_rejected == 5

    def test_unlimited_cache_always_hits_after_first(self):
        cache = UnlimitedCache()
        cache.access("/a", 100 * GB, 0.0)
        assert cache.access("/a", 100 * GB, 1.0)
        assert cache.used_bytes == pytest.approx(100 * GB)

    def test_lfu_keeps_frequent_file(self):
        cache = LfuCache(capacity_bytes=2 * MB)
        for t in range(5):
            cache.access("/hot", 1 * MB, float(t))
        cache.access("/cold1", 1 * MB, 10.0)
        cache.access("/cold2", 1 * MB, 11.0)   # evicts a cold file, not /hot
        assert cache.contains("/hot")

    def test_size_threshold_rejects_large_files(self):
        cache = SizeThresholdCache(capacity_bytes=100 * GB, size_threshold_bytes=1 * GB)
        cache.access("/small", 100 * MB, 0.0)
        cache.access("/large", 50 * GB, 1.0)
        assert cache.contains("/small")
        assert not cache.contains("/large")
        assert cache.stats.admissions_rejected == 1

    def test_size_threshold_validation(self):
        with pytest.raises(CacheError):
            SizeThresholdCache(capacity_bytes=1 * GB, size_threshold_bytes=0.0)

    def test_byte_hit_rate(self):
        cache = LruCache(capacity_bytes=10 * MB)
        cache.access("/a", 4 * MB, 0.0)
        cache.access("/a", 4 * MB, 1.0)
        assert cache.stats.byte_hit_rate == pytest.approx(0.5)

    def test_policy_ordering_on_skewed_stream(self):
        """The paper's argument: with popular small files, a size-threshold cache
        beats no cache and the unlimited cache upper-bounds everything."""
        accesses = []
        for round_index in range(30):
            for hot in range(5):
                accesses.append(("/hot/%d" % hot, 100 * MB))
            accesses.append(("/big/%d" % round_index, 500 * GB))
        policies = {
            "none": NoCache(),
            "threshold": SizeThresholdCache(5 * GB, 1 * GB),
            "unlimited": UnlimitedCache(),
        }
        for name, cache in policies.items():
            for t, (path, size) in enumerate(accesses):
                cache.access(path, size, float(t))
        assert policies["none"].stats.hit_rate == 0.0
        assert policies["threshold"].stats.hit_rate > 0.7
        assert policies["unlimited"].stats.hit_rate >= policies["threshold"].stats.hit_rate


class TestHdfs:
    def test_create_and_read_accounting(self):
        hdfs = Hdfs()
        hdfs.create("/a", 10 * MB, now_s=1.0)
        entry = hdfs.read("/a", now_s=2.0)
        assert entry.access_count == 1
        assert entry.last_access_s == 2.0
        assert hdfs.bytes_read == pytest.approx(10 * MB)
        assert hdfs.total_bytes() == pytest.approx(10 * MB)
        assert hdfs.raw_bytes() == pytest.approx(30 * MB)  # replication 3

    def test_read_unknown_path_autocreates(self):
        hdfs = Hdfs()
        hdfs.read("/preexisting", now_s=0.0, size_bytes=5 * MB)
        assert "/preexisting" in hdfs
        # Pre-existing data does not count as written during the simulation.
        assert hdfs.bytes_written == 0.0

    def test_overwrite_and_delete(self):
        hdfs = Hdfs()
        hdfs.create("/a", 1 * MB)
        hdfs.create("/a", 2 * MB, overwrite=True)
        assert hdfs.get("/a").size_bytes == 2 * MB
        with pytest.raises(SimulationError):
            hdfs.create("/a", 1 * MB, overwrite=False)
        assert hdfs.delete("/a") is True
        assert hdfs.delete("/a") is False

    def test_ensure_grows_file(self):
        hdfs = Hdfs()
        hdfs.ensure("/a", 1 * MB)
        hdfs.ensure("/a", 5 * MB)
        hdfs.ensure("/a", 2 * MB)
        assert hdfs.get("/a").size_bytes == 5 * MB

    def test_read_write_times_scale_with_size_and_parallelism(self):
        hdfs = Hdfs(HdfsConfig(disk_bandwidth_bps=100e6, replication=2, n_datanodes=10))
        assert hdfs.read_time_s(1e9) == pytest.approx(10.0)
        assert hdfs.read_time_s(1e9, parallelism=10) == pytest.approx(1.0)
        assert hdfs.write_time_s(1e9) == pytest.approx(20.0)

    def test_block_placement(self):
        hdfs = Hdfs(HdfsConfig(block_size=1 * MB, replication=3, n_datanodes=5))
        hdfs.create("/a", 2.5 * MB)
        placements = hdfs.block_placement("/a")
        assert len(placements) == 3
        for nodes in placements:
            assert len(nodes) == 3
            assert len(set(nodes)) == 3
        with pytest.raises(SimulationError):
            hdfs.block_placement("/missing")

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            HdfsConfig(block_size=0)
        with pytest.raises(SimulationError):
            HdfsConfig(replication=0)


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
                      min_size=1, max_size=60),
       capacity=st.floats(min_value=1e3, max_value=1e9))
def test_property_cache_capacity_invariant(sizes, capacity):
    """Under any access stream the LRU cache never exceeds its capacity and its
    hit+miss count always equals the number of accesses."""
    cache = LruCache(capacity_bytes=capacity)
    for index, size in enumerate(sizes):
        cache.access("/f%d" % (index % 7), size, float(index))
        assert cache.used_bytes <= capacity + 1e-6
    assert cache.stats.accesses == len(sizes)
