"""Tests for the cluster energy model and the power-down policy evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator import (
    ClusterConfig,
    PowerDownPolicy,
    PowerModel,
    SimulationMetrics,
    WorkloadReplayer,
    energy_from_metrics,
    evaluate_power_down,
)
from repro.traces import Job, Trace
from repro.units import GB, HOUR


def metrics_with_samples(samples, total_slots=600):
    metrics = SimulationMetrics(total_slots=total_slots)
    for time_s, busy in samples:
        metrics.record_utilization(time_s, busy)
    metrics.horizon_s = samples[-1][0]
    return metrics


CONFIG = ClusterConfig(n_nodes=100)  # 600 slots


class TestPowerModel:
    def test_validation(self):
        with pytest.raises(SimulationError):
            PowerModel(idle_node_watts=-1.0)
        with pytest.raises(SimulationError):
            PowerModel(idle_node_watts=200.0, peak_node_watts=100.0)

    def test_idle_and_peak_cluster_power(self):
        power = PowerModel(idle_node_watts=100.0, peak_node_watts=300.0)
        assert power.cluster_power_watts(0, CONFIG) == pytest.approx(100.0 * 100)
        assert power.cluster_power_watts(CONFIG.total_slots, CONFIG) == pytest.approx(300.0 * 100)

    def test_power_is_monotone_in_load(self):
        power = PowerModel()
        values = [power.cluster_power_watts(busy, CONFIG) for busy in (0, 150, 300, 450, 600)]
        assert values == sorted(values)

    def test_negative_busy_slots_rejected(self):
        with pytest.raises(SimulationError):
            PowerModel().cluster_power_watts(-1, CONFIG)


class TestEnergyFromMetrics:
    def test_constant_full_load(self):
        metrics = metrics_with_samples([(0.0, 600), (HOUR, 600)])
        report = energy_from_metrics(metrics, CONFIG, PowerModel(idle_node_watts=100.0,
                                                                 peak_node_watts=300.0))
        assert report.energy_joules == pytest.approx(300.0 * 100 * HOUR)
        assert report.mean_utilization == pytest.approx(1.0)
        assert report.savings_vs_peak == pytest.approx(0.0)
        assert report.proportionality_gap == pytest.approx(0.0)

    def test_idle_cluster_energy_and_proportionality_gap(self):
        metrics = metrics_with_samples([(0.0, 0), (HOUR, 0)])
        report = energy_from_metrics(metrics, CONFIG, PowerModel(idle_node_watts=100.0,
                                                                 peak_node_watts=300.0))
        assert report.energy_joules == pytest.approx(100.0 * 100 * HOUR)
        assert report.proportional_joules == pytest.approx(0.0)
        assert report.proportionality_gap == pytest.approx(1.0)
        assert report.savings_vs_peak == pytest.approx(2.0 / 3.0)

    def test_energy_bounded_by_references(self):
        metrics = metrics_with_samples([(0.0, 60), (HOUR, 500), (2 * HOUR, 30), (3 * HOUR, 30)])
        report = energy_from_metrics(metrics, CONFIG)
        assert report.proportional_joules <= report.energy_joules <= report.always_peak_joules
        assert 0.0 <= report.mean_utilization <= 1.0

    def test_requires_two_samples(self):
        metrics = SimulationMetrics(total_slots=600)
        metrics.record_utilization(0.0, 10)
        with pytest.raises(SimulationError):
            energy_from_metrics(metrics, CONFIG)

    def test_kwh_conversion(self):
        metrics = metrics_with_samples([(0.0, 600), (HOUR, 600)])
        report = energy_from_metrics(metrics, CONFIG, PowerModel(idle_node_watts=300.0,
                                                                 peak_node_watts=300.0))
        assert report.energy_kwh == pytest.approx(30.0)  # 30 kW for one hour

    @given(busy=st.lists(st.integers(min_value=0, max_value=600), min_size=2, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_energy_never_negative_and_bounded(self, busy):
        samples = [(float(hour) * HOUR, value) for hour, value in enumerate(busy)]
        metrics = metrics_with_samples(samples)
        report = energy_from_metrics(metrics, CONFIG)
        assert report.energy_joules >= 0.0
        assert report.energy_joules <= report.always_peak_joules + 1e-6


class TestPowerDownPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            PowerDownPolicy(min_nodes_fraction=0.0)
        with pytest.raises(SimulationError):
            PowerDownPolicy(min_nodes_fraction=1.5)
        with pytest.raises(SimulationError):
            PowerDownPolicy(headroom_fraction=-0.1)

    def test_bursty_load_saves_energy(self):
        # One busy hour followed by nine idle hours: the §5.2 shape.
        samples = [(0.0, 550)] + [(float(hour) * HOUR, 10) for hour in range(1, 10)]
        samples.append((10.0 * HOUR, 10))
        metrics = metrics_with_samples(samples)
        evaluation = evaluate_power_down(metrics, CONFIG)
        assert evaluation.policy_joules < evaluation.baseline_joules
        assert evaluation.savings_fraction > 0.3
        assert evaluation.mean_nodes_on < CONFIG.n_nodes

    def test_flat_full_load_saves_nothing(self):
        metrics = metrics_with_samples([(0.0, 600), (HOUR, 600), (2 * HOUR, 600)])
        evaluation = evaluate_power_down(metrics, CONFIG)
        assert evaluation.savings_fraction == pytest.approx(0.0, abs=0.02)
        assert evaluation.mean_nodes_on == pytest.approx(CONFIG.n_nodes)

    def test_min_nodes_floor_respected(self):
        samples = [(float(hour) * HOUR, 0) for hour in range(6)]
        metrics = metrics_with_samples(samples)
        policy = PowerDownPolicy(min_nodes_fraction=0.5)
        evaluation = evaluate_power_down(metrics, CONFIG, policy=policy)
        assert evaluation.mean_nodes_on >= 0.5 * CONFIG.n_nodes - 1e-6

    def test_transition_cost_reduces_savings(self):
        samples = []
        for hour in range(12):
            samples.append((float(hour) * HOUR, 500 if hour % 2 == 0 else 10))
        metrics = metrics_with_samples(samples)
        cheap = evaluate_power_down(metrics, CONFIG,
                                    policy=PowerDownPolicy(transition_energy_joules=0.0))
        expensive = evaluate_power_down(metrics, CONFIG,
                                        policy=PowerDownPolicy(transition_energy_joules=1e7))
        assert expensive.policy_joules > cheap.policy_joules
        assert expensive.transitions == cheap.transitions > 0


class TestEnergyOnReplayedWorkload:
    def test_end_to_end_with_replayer(self):
        jobs = [
            Job(job_id="j%d" % index, submit_time_s=index * 120.0, duration_s=60.0,
                input_bytes=1 * GB, shuffle_bytes=0.0, output_bytes=100e6,
                map_task_seconds=300.0, reduce_task_seconds=0.0, map_tasks=5, reduce_tasks=0)
            for index in range(30)
        ]
        trace = Trace(jobs, name="energy-e2e", machines=10)
        metrics = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=10)).replay(trace)
        report = energy_from_metrics(metrics, ClusterConfig(n_nodes=10))
        evaluation = evaluate_power_down(metrics, ClusterConfig(n_nodes=10))
        assert report.energy_joules > 0
        assert 0.0 <= evaluation.savings_fraction < 1.0
