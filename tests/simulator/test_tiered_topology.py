"""Tests for the tiered-cluster replay and the rack topology / shuffle profile."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator import (
    ClusterConfig,
    RackTopology,
    TieredClusterConfig,
    TieredReplayer,
    compare_tiered_vs_unified,
    locality_fractions,
    shuffle_cross_rack_bytes,
    workload_shuffle_profile,
)
from repro.traces import Job, Trace
from repro.units import GB, MB, TB


def small_job(index, submit):
    return Job(job_id="small%d" % index, submit_time_s=submit, duration_s=30.0,
               input_bytes=100 * MB, shuffle_bytes=10 * MB, output_bytes=10 * MB,
               map_task_seconds=60.0, reduce_task_seconds=20.0, map_tasks=2, reduce_tasks=1)


def huge_job(index, submit):
    return Job(job_id="huge%d" % index, submit_time_s=submit, duration_s=7200.0,
               input_bytes=5 * TB, shuffle_bytes=1 * TB, output_bytes=100 * GB,
               map_task_seconds=400000.0, reduce_task_seconds=150000.0,
               map_tasks=400, reduce_tasks=100)


@pytest.fixture()
def dichotomy_trace():
    """A head-of-line-blocking scenario: one huge job, then many small ones."""
    jobs = [huge_job(0, 0.0)]
    jobs += [small_job(index, 5.0 + index * 2.0) for index in range(60)]
    return Trace(jobs, name="dichotomy", machines=20)


class TestTieredClusterConfig:
    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            TieredClusterConfig(small_job_threshold_bytes=0.0)

    def test_unified_equivalent_preserves_node_count(self):
        config = TieredClusterConfig(performance=ClusterConfig(n_nodes=30),
                                     capacity=ClusterConfig(n_nodes=70))
        unified = config.unified_equivalent()
        assert unified.n_nodes == 100
        assert config.total_slots == unified.total_slots


class TestTieredReplayer:
    def test_split_routes_by_size(self, dichotomy_trace):
        replayer = TieredReplayer(TieredClusterConfig(small_job_threshold_bytes=10 * GB))
        parts = replayer.split_trace(dichotomy_trace)
        assert len(parts["performance"]) == 60
        assert len(parts["capacity"]) == 1

    def test_replay_produces_both_tier_metrics(self, dichotomy_trace):
        config = TieredClusterConfig(performance=ClusterConfig(n_nodes=5),
                                     capacity=ClusterConfig(n_nodes=15))
        result = TieredReplayer(config).replay(dichotomy_trace)
        assert result.n_small_jobs == 60 and result.n_large_jobs == 1
        assert result.performance is not None and result.capacity is not None
        assert result.performance.finished_jobs == 60
        assert result.small_job_median_completion() > 0

    def test_all_small_trace_has_empty_capacity_tier(self):
        trace = Trace([small_job(index, index * 5.0) for index in range(20)], name="small-only")
        result = TieredReplayer(TieredClusterConfig(
            performance=ClusterConfig(n_nodes=4), capacity=ClusterConfig(n_nodes=4))).replay(trace)
        assert result.capacity is None
        assert result.n_large_jobs == 0
        assert result.small_job_mean_wait() >= 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            TieredReplayer().replay(Trace([], name="empty"))


class TestTieredVsUnified:
    def test_split_protects_small_jobs_from_head_of_line_blocking(self, dichotomy_trace):
        # §6.2: under FIFO a single large job blocks hundreds of interactive
        # jobs; the physical split removes that interference.
        config = TieredClusterConfig(performance=ClusterConfig(n_nodes=5),
                                     capacity=ClusterConfig(n_nodes=15))
        comparison = compare_tiered_vs_unified(dichotomy_trace, config)
        assert comparison.small_job_wait_tiered <= comparison.small_job_wait_unified
        assert comparison.small_job_wait_improvement >= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            compare_tiered_vs_unified(Trace([], name="empty"))


class TestRackTopology:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RackTopology(n_nodes=0)
        with pytest.raises(SimulationError):
            RackTopology(nodes_per_rack=0)
        with pytest.raises(SimulationError):
            RackTopology(cross_rack_bandwidth_bps=0.0)

    def test_rack_count_and_membership(self):
        topology = RackTopology(n_nodes=45, nodes_per_rack=20)
        assert topology.n_racks == 3
        assert topology.rack_of(0) == 0
        assert topology.rack_of(19) == 0
        assert topology.rack_of(20) == 1
        assert topology.rack_of(44) == 2
        with pytest.raises(SimulationError):
            topology.rack_of(45)

    def test_oversubscription_ratio(self):
        topology = RackTopology(intra_rack_bandwidth_bps=125e6, cross_rack_bandwidth_bps=25e6)
        assert topology.oversubscription == pytest.approx(5.0)


class TestLocalityFractions:
    def test_fractions_sum_to_one(self):
        fractions = locality_fractions(RackTopology(), n_map_tasks=10, replication=3)
        assert fractions.node_local + fractions.rack_local + fractions.remote == pytest.approx(1.0)

    def test_delay_scheduling_improves_node_locality(self):
        topology = RackTopology(n_nodes=100)
        without = locality_fractions(topology, 10, replication=3, delay_scheduling_attempts=0)
        with_delay = locality_fractions(topology, 10, replication=3, delay_scheduling_attempts=10)
        assert with_delay.node_local > without.node_local

    def test_full_replication_is_always_node_local(self):
        topology = RackTopology(n_nodes=10, nodes_per_rack=5)
        fractions = locality_fractions(topology, 4, replication=10)
        assert fractions.node_local == pytest.approx(1.0)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SimulationError):
            locality_fractions(RackTopology(), 0)
        with pytest.raises(SimulationError):
            locality_fractions(RackTopology(), 5, replication=0)
        with pytest.raises(SimulationError):
            locality_fractions(RackTopology(), 5, delay_scheduling_attempts=-1)

    @given(replication=st.integers(min_value=1, max_value=10),
           attempts=st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_fractions_always_valid(self, replication, attempts):
        fractions = locality_fractions(RackTopology(n_nodes=60, nodes_per_rack=20), 8,
                                       replication=replication,
                                       delay_scheduling_attempts=attempts)
        for value in (fractions.node_local, fractions.rack_local, fractions.remote):
            assert -1e-9 <= value <= 1.0 + 1e-9


class TestShuffleTraffic:
    def test_map_only_jobs_produce_no_cross_rack_shuffle(self):
        assert shuffle_cross_rack_bytes(RackTopology(), 0.0, 10, 5) == 0.0
        assert shuffle_cross_rack_bytes(RackTopology(), 1 * GB, 10, 0) == 0.0

    def test_single_rack_cluster_has_no_cross_rack_traffic(self):
        topology = RackTopology(n_nodes=10, nodes_per_rack=10)
        assert shuffle_cross_rack_bytes(topology, 1 * GB, 100, 10) == 0.0

    def test_cross_rack_fraction_bounded_by_total(self):
        topology = RackTopology(n_nodes=100, nodes_per_rack=20)
        cross = shuffle_cross_rack_bytes(topology, 10 * GB, 200, 50)
        assert 0.0 < cross < 10 * GB

    def test_negative_volume_rejected(self):
        with pytest.raises(SimulationError):
            shuffle_cross_rack_bytes(RackTopology(), -1.0, 5, 5)

    def test_workload_profile_separates_map_only_share(self):
        jobs = [
            Job(job_id="shuffle", submit_time_s=0.0, duration_s=600.0, input_bytes=1 * GB,
                shuffle_bytes=2 * GB, output_bytes=1 * GB, map_task_seconds=600.0,
                reduce_task_seconds=300.0, map_tasks=40, reduce_tasks=10),
            Job(job_id="maponly", submit_time_s=10.0, duration_s=300.0, input_bytes=4 * GB,
                shuffle_bytes=0.0, output_bytes=4 * GB, map_task_seconds=400.0,
                reduce_task_seconds=0.0, map_tasks=30, reduce_tasks=0),
        ]
        profile = workload_shuffle_profile(Trace(jobs, name="profile"))
        assert profile.map_only_job_fraction == pytest.approx(0.5)
        assert profile.map_only_bytes_fraction == pytest.approx(8 / 12, rel=1e-3)
        assert profile.shuffle_bytes == pytest.approx(2 * GB)
        assert 0.0 < profile.mean_cross_rack_fraction <= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            workload_shuffle_profile(Trace([], name="empty"))
