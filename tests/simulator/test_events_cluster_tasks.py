"""Tests for the event engine, the cluster/slot model, and task splitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simulator import Cluster, ClusterConfig, EventQueue, split_job
from repro.simulator.tasks import MAX_TASKS_PER_STAGE
from repro.traces import Job


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10.0, lambda: fired.append("b"))
        queue.schedule(5.0, lambda: fired.append("a"))
        queue.schedule(20.0, lambda: fired.append("c"))
        queue.run()
        assert fired == ["a", "b", "c"]
        assert queue.now == 20.0
        assert queue.processed_events == 3

    def test_tie_break_by_priority_then_insertion(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("low"), priority=1)
        queue.schedule(1.0, lambda: fired.append("high"), priority=0)
        queue.schedule(1.0, lambda: fired.append("low2"), priority=1)
        queue.run()
        assert fired == ["high", "low", "low2"]

    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        queue.schedule(2.0, lambda: fired.append("y"))
        queue.run()
        assert fired == ["y"]

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: queue.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            queue.run()

    def test_schedule_after_and_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule_after(1.0, lambda: fired.append(1))
        queue.schedule_after(10.0, lambda: fired.append(2))
        queue.run(until_s=5.0)
        assert fired == [1]
        assert queue.now == 5.0
        queue.run()
        assert fired == [1, 2]

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        fired = []
        def chain():
            fired.append(queue.now)
            if queue.now < 3.0:
                queue.schedule_after(1.0, chain)
        queue.schedule(1.0, chain)
        queue.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_after(-1.0, lambda: None)


class TestClusterConfig:
    def test_totals(self):
        config = ClusterConfig(n_nodes=10, map_slots_per_node=4, reduce_slots_per_node=2)
        assert config.total_map_slots == 40
        assert config.total_reduce_slots == 20
        assert config.total_slots == 60

    def test_invalid_configs(self):
        with pytest.raises(SimulationError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(SimulationError):
            ClusterConfig(map_slots_per_node=0)
        with pytest.raises(SimulationError):
            ClusterConfig(disk_bandwidth_bps=0)


class TestCluster:
    def test_acquire_release_accounting(self):
        cluster = Cluster(ClusterConfig(n_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1))
        assert cluster.free_slots("map") == 4
        nodes = [cluster.acquire_slot("map") for _ in range(4)]
        assert all(node is not None for node in nodes)
        assert cluster.free_slots("map") == 0
        assert cluster.acquire_slot("map") is None
        assert cluster.utilization() == pytest.approx(4 / 6)
        cluster.release_slot(nodes[0], "map")
        assert cluster.free_slots("map") == 1

    def test_placement_spreads_across_nodes(self):
        cluster = Cluster(ClusterConfig(n_nodes=4, map_slots_per_node=2, reduce_slots_per_node=1))
        first = cluster.acquire_slot("map")
        second = cluster.acquire_slot("map")
        assert first.node_id != second.node_id

    def test_release_unacquired_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        node = cluster.nodes[0]
        with pytest.raises(SimulationError):
            cluster.release_slot(node, "map")

    def test_unknown_kind_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        with pytest.raises(SimulationError):
            cluster.free_slots("gpu")


class TestSplitJob:
    def make_job(self, **overrides):
        base = dict(job_id="j", submit_time_s=5.0, duration_s=60.0, input_bytes=1e9,
                    shuffle_bytes=1e8, output_bytes=1e7, map_task_seconds=600.0,
                    reduce_task_seconds=120.0, map_tasks=20, reduce_tasks=4)
        base.update(overrides)
        return Job(**base)

    def test_respects_recorded_task_counts(self):
        sim_job = split_job(self.make_job())
        assert len(sim_job.map_tasks) == 20
        assert len(sim_job.reduce_tasks) == 4
        assert sum(task.duration_s for task in sim_job.map_tasks) == pytest.approx(600.0)
        assert sum(task.duration_s for task in sim_job.reduce_tasks) == pytest.approx(120.0)

    def test_default_granularity_without_counts(self):
        sim_job = split_job(self.make_job(map_tasks=None, reduce_tasks=None,
                                          map_task_seconds=300.0, reduce_task_seconds=0.0))
        assert len(sim_job.map_tasks) == 10  # 300 s at 30 s per task
        assert sim_job.reduce_tasks == []

    def test_task_cap_preserves_total_time(self):
        sim_job = split_job(self.make_job(map_tasks=100000, map_task_seconds=1e6))
        assert len(sim_job.map_tasks) == MAX_TASKS_PER_STAGE
        assert sum(task.duration_s for task in sim_job.map_tasks) == pytest.approx(1e6)

    def test_zero_compute_job_gets_placeholder_task(self):
        sim_job = split_job(self.make_job(map_task_seconds=0.0, reduce_task_seconds=0.0,
                                          map_tasks=0, reduce_tasks=0))
        assert len(sim_job.map_tasks) == 1
        assert sim_job.reduce_tasks == []

    def test_progress_bookkeeping(self):
        sim_job = split_job(self.make_job())
        assert sim_job.maps_remaining == 20
        assert not sim_job.map_stage_done
        assert not sim_job.done
        assert sim_job.submit_time_s == 5.0
        assert sim_job.wait_time_s == 0.0
        sim_job.start_time_s = 8.0
        assert sim_job.wait_time_s == pytest.approx(3.0)


@settings(max_examples=20, deadline=None)
@given(map_seconds=st.floats(min_value=0, max_value=1e7, allow_nan=False),
       reduce_seconds=st.floats(min_value=0, max_value=1e7, allow_nan=False))
def test_property_split_preserves_total_task_time(map_seconds, reduce_seconds):
    """Splitting never loses or invents task time (within float tolerance)."""
    job = Job(job_id="p", submit_time_s=0.0, duration_s=10.0, input_bytes=1.0,
              shuffle_bytes=0.0, output_bytes=1.0, map_task_seconds=map_seconds,
              reduce_task_seconds=reduce_seconds)
    sim_job = split_job(job)
    total = (sum(task.duration_s for task in sim_job.map_tasks)
             + sum(task.duration_s for task in sim_job.reduce_tasks))
    expected = map_seconds + reduce_seconds
    if expected == 0:
        assert total == pytest.approx(1.0)  # placeholder task
    else:
        assert total == pytest.approx(expected, rel=1e-9)
