"""Property tests for the metric-accumulator merge algebra.

The sharded replayer's windowed mode (and the scenario sweep before it)
leans on one algebraic claim: folding a sample stream through *any*
partition, merged in *any* order, is equivalent to the unpartitioned fold.
The claim is exact for everything integer-valued — sample counts, min/max
extremes, log-histogram sketch bins and zero counts, observation counts —
and exact-up-to-float-addition-ordering for the float sums (mean totals,
busy-slot seconds, hourly utilization bins), which is the documented
contract of :meth:`SimulationMetrics.merge`.

Hypothesis drives the partition points, merge orders, sample values and
utilization step functions.
"""

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    JobOutcome,
    MetricAccumulator,
    SimulationMetrics,
    UtilizationAccumulator,
)

# Finite, non-negative magnitudes spanning the sketch's dynamic range
# (10^-3 .. 10^16), plus exact zeros for the zero-count path.
sample_values = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False,
              allow_infinity=False),
)
sample_lists = st.lists(sample_values, min_size=0, max_size=200)


def partition(values, cut_points):
    """Split ``values`` at the (deduplicated, sorted) cut indices."""
    cuts = sorted({min(c, len(values)) for c in cut_points})
    parts, last = [], 0
    for cut in cuts:
        parts.append(values[last:cut])
        last = cut
    parts.append(values[last:])
    return parts


def close(a, b):
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


class TestMetricAccumulatorMergeAlgebra:
    @given(values=sample_lists,
           cuts=st.lists(st.integers(min_value=0, max_value=200), max_size=5),
           order_seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(deadline=None, max_examples=150)
    def test_any_partition_any_order_matches_unpartitioned(
            self, values, cuts, order_seed):
        whole = MetricAccumulator()
        for value in values:
            whole.add(value)

        parts = []
        for chunk in partition(values, cuts):
            acc = MetricAccumulator()
            for value in chunk:
                acc.add(value)
            parts.append(acc)
        rng = np.random.default_rng(order_seed)
        rng.shuffle(parts)
        merged = parts[0]
        for acc in parts[1:]:
            merged.merge(acc)

        assert merged.count == whole.count
        assert merged.minimum == whole.minimum  # exact: min of mins
        assert merged.maximum == whole.maximum
        assert np.array_equal(merged.sketch.counts, whole.sketch.counts)
        assert merged.sketch.zero_count == whole.sketch.zero_count
        assert merged.sketch.n == whole.sketch.n
        assert close(merged.total, whole.total)  # float sums: order-sensitive

    @given(values=st.lists(sample_values, min_size=1, max_size=100))
    @settings(deadline=None, max_examples=100)
    def test_scalar_adds_equal_one_batch_update(self, values):
        """add() buffering must be invisible: same states as one update()."""
        scalars = MetricAccumulator()
        for value in values:
            scalars.add(value)
        batched = MetricAccumulator()
        batched.update(np.array(values, dtype=float))
        assert scalars.count == batched.count
        assert scalars.minimum == batched.minimum
        assert scalars.maximum == batched.maximum
        assert np.array_equal(scalars.sketch.counts, batched.sketch.counts)
        assert scalars.sketch.zero_count == batched.sketch.zero_count
        assert close(scalars.total, batched.total)

    @given(values=sample_lists)
    @settings(deadline=None, max_examples=50)
    def test_merging_empty_is_identity(self, values):
        acc = MetricAccumulator()
        acc.update(np.array(values, dtype=float))
        before = (acc.count, acc.total, acc.minimum, acc.maximum,
                  acc.sketch.counts.copy(), acc.sketch.zero_count)
        acc.merge(MetricAccumulator())
        assert acc.count == before[0]
        assert acc.total == before[1]
        assert acc.minimum == before[2]
        assert acc.maximum == before[3]
        assert np.array_equal(acc.sketch.counts, before[4])
        assert acc.sketch.zero_count == before[5]


# A utilization step function: strictly increasing times, integer slot counts.
step_streams = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=50 * 3600.0,
                        allow_nan=False, allow_infinity=False),
              st.integers(min_value=0, max_value=400)),
    min_size=2, max_size=60,
).map(lambda pairs: sorted({t: s for t, s in pairs}.items()))


class TestUtilizationMergeAlgebra:
    @given(stream=step_streams,
           cuts=st.lists(st.integers(min_value=1, max_value=60), max_size=4))
    @settings(deadline=None, max_examples=150)
    def test_split_streams_merge_to_the_unsplit_integral(self, stream, cuts):
        """Splitting an observation stream at observation boundaries — each
        part re-observing the boundary sample as its baseline, exactly how a
        windowed shard would seed its window — merges back to the unsplit
        integral (hour bins included) up to float-addition ordering."""
        whole = UtilizationAccumulator()
        for time_s, slots in stream:
            whole.observe(time_s, slots)

        parts_acc = []
        parts = [p for p in partition(stream, cuts) if p]
        previous_last = None
        for chunk in parts:
            acc = UtilizationAccumulator()
            if previous_last is not None:
                acc.observe(*previous_last)  # baseline: no segment charged
            for time_s, slots in chunk:
                acc.observe(time_s, slots)
            previous_last = chunk[-1]
            parts_acc.append(acc)
        merged = parts_acc[0]
        for acc in parts_acc[1:]:
            merged.merge(acc)

        assert close(merged.busy_slot_seconds, whole.busy_slot_seconds)
        assert merged.first_time_s == whole.first_time_s
        assert merged.last_time_s == whole.last_time_s
        assert len(merged.hourly_slot_seconds) == len(whole.hourly_slot_seconds)
        for got, expected in zip(merged.hourly_slot_seconds,
                                 whole.hourly_slot_seconds):
            assert close(got, expected)

    @given(stream=step_streams)
    @settings(deadline=None, max_examples=50)
    def test_merge_extends_shorter_hour_bins(self, stream):
        early = UtilizationAccumulator()
        early.observe(0.0, 10)
        early.observe(1800.0, 0)  # half an hour of 10 slots
        late = UtilizationAccumulator()
        for time_s, slots in stream:
            late.observe(time_s + 10 * 3600.0, slots)  # shifted past hour 10
        early.merge(late)
        assert early.busy_slot_seconds >= 10 * 1800.0 - 1e-6
        if late.hourly_slot_seconds:
            assert len(early.hourly_slot_seconds) == len(late.hourly_slot_seconds)


def outcome(index, wait, completion):
    submit = float(index)
    return JobOutcome(job_id="j%d" % index, submit_time_s=submit,
                      start_time_s=submit + wait,
                      finish_time_s=submit + wait + completion,
                      wait_time_s=wait, completion_time_s=completion,
                      total_bytes=1e6 * index, n_tasks=1 + index % 7)


class TestSimulationMetricsMergeAlgebra:
    @given(waits=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False), min_size=1, max_size=80),
           cuts=st.lists(st.integers(min_value=0, max_value=80), max_size=3),
           order_seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(deadline=None, max_examples=100)
    def test_outcome_partition_merges_exactly(self, waits, cuts, order_seed):
        outcomes = [outcome(i, wait, wait * 2.0 + 1.0)
                    for i, wait in enumerate(waits)]
        whole = SimulationMetrics(total_slots=600, keep_outcomes=False)
        for item in outcomes:
            whole.record_submission()
            whole.record_job(item)
        whole.finalize()

        parts = []
        for chunk in partition(outcomes, cuts):
            metrics = SimulationMetrics(total_slots=600, keep_outcomes=False)
            for item in chunk:
                metrics.record_submission()
                metrics.record_job(item)
            metrics.finalize()
            parts.append(metrics)
        rng = np.random.default_rng(order_seed)
        rng.shuffle(parts)
        merged = parts[0]
        for metrics in parts[1:]:
            merged.merge(metrics)

        assert merged.jobs_submitted == whole.jobs_submitted
        assert merged.finished_jobs == whole.finished_jobs
        assert merged.wait.count == whole.wait.count
        assert merged.completion.count == whole.completion.count
        assert merged.wait.minimum == whole.wait.minimum
        assert merged.wait.maximum == whole.wait.maximum
        assert np.array_equal(merged.wait.sketch.counts,
                              whole.wait.sketch.counts)
        assert np.array_equal(merged.completion.sketch.counts,
                              whole.completion.sketch.counts)
        assert merged.wait.sketch.zero_count == whole.wait.sketch.zero_count
        assert close(merged.wait.total, whole.wait.total)
        assert close(merged.completion.total, whole.completion.total)
