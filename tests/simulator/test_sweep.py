"""Scenario sweep: spec parsing, grid expansion, parallel fan-out, report."""

import json

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore, ParallelExecutor
from repro.errors import SimulationError
from repro.simulator import (
    Scenario,
    ScenarioSweep,
    StreamingReplayer,
    expand_grid,
    load_sweep_spec,
)
from repro.simulator.cache import LruCache, NoCache, SizeThresholdCache
from repro.simulator.scheduler import CapacityScheduler, FairScheduler, FifoScheduler
from repro.traces import load_workload


@pytest.fixture(scope="module")
def trace():
    return load_workload("CC-e", seed=5, scale=0.08)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sweep-stores") / "cc-e.store"
    return ChunkedTraceStore.write(directory, trace, chunk_rows=200)


class TestScenario:
    def test_builds_named_schedulers(self):
        assert isinstance(Scenario("a").build_scheduler(), FifoScheduler)
        assert isinstance(Scenario("a", scheduler="fair").build_scheduler(),
                          FairScheduler)
        capacity = Scenario("a", scheduler="capacity",
                            scheduler_kwargs={"interactive_share": 0.25})
        assert isinstance(capacity.build_scheduler(), CapacityScheduler)

    def test_builds_named_caches(self):
        assert isinstance(Scenario("a").build_cache(), NoCache)
        lru = Scenario("a", cache="lru", cache_gb=2.0).build_cache()
        assert isinstance(lru, LruCache)
        assert lru.capacity_bytes == pytest.approx(2e9)
        threshold = Scenario("a", cache="size-threshold", cache_gb=1.0,
                             cache_kwargs={"size_threshold_bytes": 1e6}).build_cache()
        assert isinstance(threshold, SizeThresholdCache)

    def test_unknown_names_rejected(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            Scenario("a", scheduler="lottery").build_scheduler()
        with pytest.raises(SimulationError, match="unknown cache"):
            Scenario("a", cache="belady").build_cache()

    def test_build_replayer_is_streaming(self):
        replayer = Scenario("a", nodes=10, max_jobs=5).build_replayer()
        assert isinstance(replayer, StreamingReplayer)
        assert replayer.cluster_config.n_nodes == 10
        assert replayer.max_simulated_jobs == 5

    def test_round_trips_through_dict(self):
        scenario = Scenario("x", scheduler="fair", cache="lru", cache_gb=3.5,
                            nodes=40, max_jobs=100)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SimulationError, match="unknown scenario fields"):
            Scenario.from_dict({"name": "x", "sched": "fifo"})


class TestSpecLoading:
    def test_expand_grid_crosses_axes(self):
        scenarios = expand_grid({"schedulers": ["fifo", "fair"],
                                 "caches": ["none", {"cache": "lru", "cache_gb": 1}],
                                 "nodes": [50, 100]})
        assert len(scenarios) == 8
        names = [scenario.name for scenario in scenarios]
        assert "fifo/none/50n" in names and "fair/lru/100n" in names

    def test_repeated_policy_axis_entries_get_unique_names(self):
        scenarios = expand_grid({"caches": [{"cache": "lru", "cache_gb": 512},
                                            {"cache": "lru", "cache_gb": 1024}]})
        assert [scenario.name for scenario in scenarios] == \
            ["fifo/lru-512GB", "fifo/lru-1024GB"]
        # Same name and same capacity but different kwargs: counter suffix.
        scenarios = expand_grid({
            "schedulers": [{"scheduler": "capacity"},
                           {"scheduler": "capacity",
                            "scheduler_kwargs": {"interactive_share": 0.2}}]})
        assert [scenario.name for scenario in scenarios] == \
            ["capacity/none", "capacity#2/none"]
        # A sizing sweep round-trips through load_sweep_spec without a
        # duplicate-name rejection.
        loaded = load_sweep_spec({"grid": {"caches": [
            {"cache": "lru", "cache_gb": 1}, {"cache": "lru", "cache_gb": 2}]}})
        assert len(loaded) == 2

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "grid": {"schedulers": ["fifo"], "caches": ["none"]},
            "scenarios": [{"name": "big-cache", "cache": "unlimited"}],
        }))
        scenarios = load_sweep_spec(str(path))
        assert [scenario.name for scenario in scenarios] == ["fifo/none", "big-cache"]

    def test_empty_and_duplicate_specs_rejected(self, tmp_path):
        with pytest.raises(SimulationError, match="no scenarios"):
            load_sweep_spec({})
        with pytest.raises(SimulationError, match="duplicate scenario names"):
            load_sweep_spec({"scenarios": [{"name": "a"}, {"name": "a"}]})
        with pytest.raises(SimulationError, match="cannot read sweep spec"):
            load_sweep_spec(str(tmp_path / "missing.json"))


class TestScenarioSweep:
    def test_store_sweep_matches_direct_replays(self, store):
        scenarios = expand_grid({"schedulers": ["fifo", "fair"]})
        result = ScenarioSweep(scenarios).run(store.directory)
        assert len(result) == 2
        direct = scenarios[0].build_replayer().replay_store(store)
        assert result["fifo/none"].summary == direct.summary()

    def test_parallel_and_serial_sweeps_agree(self, store):
        scenarios = expand_grid({"schedulers": ["fifo", "fair"],
                                 "caches": [{"cache": "lru", "cache_gb": 0.5}]})
        serial = ScenarioSweep(scenarios, executor=ParallelExecutor(processes=1))
        parallel = ScenarioSweep(scenarios, executor=ParallelExecutor(processes=2))
        serial_result = serial.run(store.directory)
        parallel_result = parallel.run(store.directory)
        for scenario in scenarios:
            assert (serial_result[scenario.name].summary
                    == parallel_result[scenario.name].summary)
            assert np.array_equal(
                serial_result[scenario.name].metrics.completion.sketch.counts,
                parallel_result[scenario.name].metrics.completion.sketch.counts)

    def test_trace_source_runs_serially(self, trace, store):
        scenarios = [Scenario("only")]
        from_trace = ScenarioSweep(scenarios).run(trace)
        from_store = ScenarioSweep(scenarios).run(store.directory)
        assert from_trace["only"].summary == from_store["only"].summary

    def test_render_and_json(self, store):
        scenarios = expand_grid({"schedulers": ["fifo"],
                                 "caches": [{"cache": "lru", "cache_gb": 0.5}]})
        result = ScenarioSweep(scenarios).run(store.directory)
        text = result.render()
        assert "scenario sweep" in text and "fifo/lru" in text
        payload = json.loads(result.to_json())
        assert payload[0]["scenario"]["name"] == "fifo/lru"
        assert payload[0]["summary"]["finished_jobs"] > 0

    def test_missing_store_fails_fast(self, tmp_path):
        sweep = ScenarioSweep([Scenario("a")])
        with pytest.raises(Exception):
            sweep.run(str(tmp_path / "not-a-store"))

    def test_needs_scenarios(self):
        with pytest.raises(SimulationError, match="at least one scenario"):
            ScenarioSweep([])
