"""Tests for the schedulers and the workload replayer."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.simulator import (
    CapacityScheduler,
    ClusterConfig,
    FairScheduler,
    FifoScheduler,
    LruCache,
    SizeThresholdCache,
    WorkloadReplayer,
    replay,
    split_job,
)
from repro.traces import Job, Trace
from repro.units import GB, MB


def make_job(job_id, submit, map_seconds, reduce_seconds=0.0, maps=None, reduces=None,
             input_bytes=1 * MB, input_path=None, output_path=None, output_bytes=1 * MB):
    return Job(job_id=job_id, submit_time_s=submit, duration_s=map_seconds + reduce_seconds,
               input_bytes=input_bytes, shuffle_bytes=0.0 if reduce_seconds == 0 else 1 * MB,
               output_bytes=output_bytes, map_task_seconds=map_seconds,
               reduce_task_seconds=reduce_seconds, map_tasks=maps, reduce_tasks=reduces,
               input_path=input_path, output_path=output_path)


class TestFifoScheduler:
    def test_strict_submission_order(self):
        scheduler = FifoScheduler()
        job_a = split_job(make_job("a", 0.0, 60.0, maps=2))
        job_b = split_job(make_job("b", 1.0, 60.0, maps=2))
        scheduler.add_job(job_a)
        scheduler.add_job(job_b)
        picked, _ = scheduler.next_task("map", 2.0)
        assert picked.job_id == "a"
        picked, _ = scheduler.next_task("map", 2.0)
        assert picked.job_id == "a"
        picked, _ = scheduler.next_task("map", 2.0)
        assert picked.job_id == "b"

    def test_reduce_waits_for_map_barrier(self):
        scheduler = FifoScheduler()
        sim_job = split_job(make_job("a", 0.0, 30.0, reduce_seconds=30.0, maps=1, reduces=1))
        scheduler.add_job(sim_job)
        assert scheduler.next_task("reduce", 0.0) is None
        _, map_task = scheduler.next_task("map", 0.0)
        sim_job.maps_remaining -= 1
        picked, _ = scheduler.next_task("reduce", 30.0)
        assert picked.job_id == "a"

    def test_pending_jobs_and_finish(self):
        scheduler = FifoScheduler()
        sim_job = split_job(make_job("a", 0.0, 30.0, maps=1))
        scheduler.add_job(sim_job)
        assert scheduler.pending_jobs() == 1
        scheduler.next_task("map", 0.0)
        assert scheduler.pending_jobs() == 0
        scheduler.job_finished(sim_job)
        assert scheduler.next_task("map", 1.0) is None


class TestFairScheduler:
    def test_slot_goes_to_job_with_fewest_running_tasks(self):
        scheduler = FairScheduler()
        job_a = split_job(make_job("a", 0.0, 300.0, maps=10))
        job_b = split_job(make_job("b", 1.0, 300.0, maps=10))
        scheduler.add_job(job_a)
        scheduler.add_job(job_b)
        first, _ = scheduler.next_task("map", 2.0)
        second, _ = scheduler.next_task("map", 2.0)
        assert {first.job_id, second.job_id} == {"a", "b"}


class TestCapacityScheduler:
    def test_small_jobs_go_to_interactive_pool(self):
        scheduler = CapacityScheduler(total_map_slots=10, total_reduce_slots=4,
                                      interactive_share=0.5,
                                      small_job_threshold_bytes=10 * GB)
        small = split_job(make_job("small", 0.0, 30.0, maps=1, input_bytes=1 * MB))
        big = split_job(make_job("big", 0.0, 3000.0, maps=10, input_bytes=100 * GB))
        scheduler.add_job(big)
        scheduler.add_job(small)
        # Both pools are below their limits; the emptier pool (either) serves
        # first, and both jobs eventually get tasks scheduled.
        picked_ids = set()
        for _ in range(4):
            picked = scheduler.next_task("map", 1.0)
            assert picked is not None
            picked_ids.add(picked[0].job_id)
        assert "small" in picked_ids and "big" in picked_ids

    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            CapacityScheduler(total_map_slots=0, total_reduce_slots=1)
        with pytest.raises(SchedulingError):
            CapacityScheduler(total_map_slots=1, total_reduce_slots=1, interactive_share=1.5)


class TestReplayer:
    def simple_trace(self):
        jobs = [
            make_job("a", 0.0, 60.0, maps=2, input_path="/in/a", output_path="/out/a"),
            make_job("b", 10.0, 120.0, reduce_seconds=60.0, maps=4, reduces=2,
                     input_path="/in/b", output_path="/out/b"),
            make_job("c", 20.0, 30.0, maps=1, input_path="/in/a", output_path="/out/c"),
        ]
        return Trace(jobs, name="sim-test", machines=2)

    def test_all_jobs_finish(self):
        metrics = replay(self.simple_trace(), ClusterConfig(n_nodes=2))
        assert metrics.finished_jobs == 3
        assert len(metrics.outcomes) == 3
        assert all(outcome.completion_time_s is not None for outcome in metrics.outcomes)

    def test_completion_time_at_least_critical_path(self):
        metrics = replay(self.simple_trace(), ClusterConfig(n_nodes=2))
        outcome_b = next(outcome for outcome in metrics.outcomes if outcome.job_id == "b")
        # Job b has 120 s of map work over 4 tasks (30 s each) and 60 s of
        # reduce work over 2 tasks; with ample slots the critical path is
        # one map wave plus one reduce wave = 60 s.
        assert outcome_b.completion_time_s >= 60.0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            replay(Trace([], name="e"))

    def test_slot_contention_creates_waits(self):
        # One node with one map slot and many simultaneous jobs: later jobs wait.
        jobs = [make_job("j%d" % index, 0.0, 60.0, maps=1) for index in range(5)]
        config = ClusterConfig(n_nodes=1, map_slots_per_node=1, reduce_slots_per_node=1)
        metrics = replay(Trace(jobs, name="contention"), config)
        assert metrics.finished_jobs == 5
        assert metrics.mean_wait_time() > 0.0
        assert max(outcome.wait_time_s for outcome in metrics.outcomes) >= 4 * 60.0

    def test_utilization_between_zero_and_one(self):
        metrics = replay(self.simple_trace(), ClusterConfig(n_nodes=2))
        assert 0.0 <= metrics.mean_utilization() <= 1.0
        assert metrics.hourly_active_slots().size >= 1

    def test_cache_sees_input_accesses(self):
        cache = LruCache(capacity_bytes=1 * GB)
        replayer = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=2), cache=cache)
        metrics = replayer.replay(self.simple_trace())
        # Jobs a and c read the same path: the second read is a hit.
        assert metrics.cache_stats.accesses == 3
        assert metrics.cache_stats.hits == 1

    def test_max_simulated_jobs_caps_replay(self):
        replayer = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=2),
                                    max_simulated_jobs=2)
        metrics = replayer.replay(self.simple_trace())
        assert len(metrics.outcomes) == 2

    def test_fair_scheduler_reduces_small_job_wait(self):
        """Section 6.2 motivation: under FIFO a large job head-of-line blocks
        small jobs; fair sharing lets small jobs through."""
        jobs = [make_job("huge", 0.0, 20000.0, maps=100, input_bytes=1e12)]
        jobs += [make_job("small%d" % index, 10.0 + index, 30.0, maps=1)
                 for index in range(20)]
        trace = Trace(jobs, name="hol")
        config = ClusterConfig(n_nodes=2, map_slots_per_node=4, reduce_slots_per_node=2)
        fifo_metrics = replay(trace, config, scheduler=FifoScheduler())
        fair_metrics = replay(trace, config, scheduler=FairScheduler())
        def small_mean_wait(metrics):
            waits = [outcome.wait_time_s for outcome in metrics.outcomes
                     if outcome.job_id.startswith("small")]
            return sum(waits) / len(waits)
        assert small_mean_wait(fair_metrics) < small_mean_wait(fifo_metrics)

    def test_size_threshold_cache_on_generated_workload(self, cc_b_small_trace):
        """Integration: replaying a generated workload with the paper's cache
        policy produces hits (re-accessed small files) without exceeding capacity."""
        cache = SizeThresholdCache(capacity_bytes=50 * GB, size_threshold_bytes=4 * GB)
        replayer = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=20),
                                    cache=cache, max_simulated_jobs=800)
        metrics = replayer.replay(cc_b_small_trace)
        assert metrics.cache_stats.accesses == 800
        assert metrics.cache_stats.hit_rate > 0.0
        assert cache.used_bytes <= 50 * GB
