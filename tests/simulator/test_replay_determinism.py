"""Seeded-RNG determinism of replays, and where RNG streams must split.

Straggler injection is the simulator's only stochastic component; cache
eviction is deterministic given the access sequence.  Under a fixed seed a
replay must therefore be a pure function of its inputs: identical digests
across repeated runs, and — for *exact* sharding, which preserves the
input-order pull sequence — across shard counts.

The shared sequential RNG stream is only valid while jobs are transformed in
input order.  Windowed sharding replays each window independently, so its
workers would consume the shared stream in a different order than a serial
run; that is why :func:`straggler_task_transform` grows ``per_job_streams``,
which seeds each job's draws from ``(seed, crc32(job_id))`` and makes the
injected slowdowns a pure function of (seed, job_id) — invariant to any
partitioning.  These tests pin both regimes.
"""

import pytest

from repro.engine import ChunkedTraceStore
from repro.simulator import (
    LruCache,
    ShardedReplayer,
    StragglerModel,
    StreamingReplayer,
    straggler_task_transform,
    split_job,
)
from repro.traces import load_workload
from repro.units import GB


@pytest.fixture(scope="module")
def trace():
    return load_workload("CC-e", seed=13, scale=0.04)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("determinism") / "cc-e.store"
    return ChunkedTraceStore.write(directory, trace, chunk_rows=64)


def build_replayer(cls=StreamingReplayer, seed=42, per_job_streams=False,
                   **kwargs):
    transform = straggler_task_transform(
        StragglerModel(probability=0.2, slowdown_factor=4.0, seed=seed),
        per_job_streams=per_job_streams)
    return cls(task_transform=transform, cache=LruCache(capacity_bytes=GB),
               **kwargs)


class TestFixedSeedDeterminism:
    def test_two_runs_identical_digests(self, store):
        first = build_replayer().replay_store(store).digest()
        second = build_replayer().replay_store(store).digest()
        assert first == second

    def test_different_seeds_differ(self, store):
        first = build_replayer(seed=1).replay_store(store).digest()
        second = build_replayer(seed=2).replay_store(store).digest()
        assert first != second

    def test_exact_shards_preserve_the_shared_stream(self, store):
        """Exact sharding pulls jobs in input order regardless of the shard
        count, so even the shared sequential RNG stream stays valid."""
        serial = build_replayer().replay_store(store).digest()
        for shards in (1, 2, 5):
            sharded = build_replayer(cls=ShardedReplayer, shards=shards,
                                     mode="exact")
            assert sharded.replay_store(store).digest() == serial, shards

    def test_per_job_streams_deterministic_across_runs(self, store):
        first = build_replayer(per_job_streams=True).replay_store(store).digest()
        second = build_replayer(per_job_streams=True).replay_store(store).digest()
        assert first == second


class TestPerJobStreamIndependence:
    """The unit-level reason windowed sharding needs per-job streams."""

    def transform_durations(self, jobs, order, per_job_streams):
        transform = straggler_task_transform(
            StragglerModel(probability=0.5, slowdown_factor=3.0, seed=7),
            per_job_streams=per_job_streams)
        durations = {}
        for index in order:
            sim_job = split_job(jobs[index])
            transform(sim_job)
            durations[sim_job.job_id] = (
                [task.duration_s for task in sim_job.map_tasks],
                [task.duration_s for task in sim_job.reduce_tasks])
        return durations

    def test_per_job_streams_are_order_invariant(self, trace):
        jobs = trace.jobs[:40]
        forward = self.transform_durations(jobs, range(len(jobs)), True)
        backward = self.transform_durations(jobs, reversed(range(len(jobs))), True)
        assert forward == backward

    def test_shared_stream_is_order_sensitive(self, trace):
        """Documents the hazard: the shared stream depends on transform
        order, which is exactly what windowed sharding changes."""
        jobs = trace.jobs[:40]
        forward = self.transform_durations(jobs, range(len(jobs)), False)
        backward = self.transform_durations(jobs, reversed(range(len(jobs))), False)
        assert forward != backward

    def test_windowed_shards_with_per_job_streams_are_shard_count_invariant(
            self, store):
        """With per-job streams the *injected durations* are partition-pure,
        so two windowed replays with the same cuts agree run-to-run, and
        job/task counts agree across shard counts (completion-time floats
        still shift with the cuts, because windowed mode drops cross-boundary
        contention — that part is the documented approximation)."""
        def run(shards):
            replayer = build_replayer(cls=ShardedReplayer, shards=shards,
                                      mode="windowed", per_job_streams=True,
                                      processes=1)
            return replayer.replay_store(store)
        once, again = run(3), run(3)
        assert once.digest() == again.digest()
        other = run(5)
        assert other.jobs_submitted == once.jobs_submitted
        assert other.finished_jobs == once.finished_jobs
        assert other.wait.count == once.wait.count
