"""Differential replay equivalence: the vectorized engine vs the legacy loop.

The vectorized engine in :mod:`repro.simulator.replay` replaced the original
closure-per-event loop (preserved verbatim in :mod:`repro.simulator.legacy`).
These tests pin the new engine — and both sharded disciplines built on it —
to the old semantics *bit for bit* via :meth:`SimulationMetrics.digest`,
which covers every published number: job counts, float metric sums in fold
order, min/max extremes, log-histogram sketch bins, hourly utilization bins,
busy-slot seconds, and cache statistics.

Grids cover scheduler × cache × lookahead (the three axes that change event
interleaving), shard boundaries dropped mid-burst and exactly on an arrival
tie, and duplicate-submit-time tie-breaking.
"""

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore
from repro.errors import SimulationError
from repro.simulator import (
    CapacityScheduler,
    ClusterConfig,
    FairScheduler,
    FifoScheduler,
    LfuCache,
    LruCache,
    NoCache,
    ShardedReplayer,
    StreamingReplayer,
    WorkloadReplayer,
    legacy_replay_jobs,
)
from repro.traces import Job, Trace, load_workload
from repro.units import GB


# ---------------------------------------------------------------------------
# fixtures and factories
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace():
    """~540 jobs of the smallest Cloudera workload: bursts, idle gaps, and a
    long tail of large jobs — enough contention to queue on every scheduler."""
    return load_workload("CC-e", seed=11, scale=0.05)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("equiv") / "cc-e.store"
    return ChunkedTraceStore.write(directory, trace, chunk_rows=64)


def make_scheduler(name):
    if name == "fifo":
        return FifoScheduler()
    if name == "fair":
        return FairScheduler()
    config = ClusterConfig()
    return CapacityScheduler(total_map_slots=config.total_map_slots,
                             total_reduce_slots=config.total_reduce_slots)


def make_cache(name):
    if name == "none":
        return NoCache()
    if name == "lru":
        return LruCache(capacity_bytes=GB)
    return LfuCache(capacity_bytes=GB)


def job(job_id, submit, map_s=60.0, reduce_s=0.0, input_b=1e9, output_b=1e8):
    return Job(job_id=job_id, submit_time_s=submit, duration_s=map_s + reduce_s,
               input_bytes=input_b, shuffle_bytes=0.0, output_bytes=output_b,
               map_task_seconds=map_s, reduce_task_seconds=reduce_s,
               input_path="/in/%s" % job_id, output_path="/out/%s" % job_id)


# ---------------------------------------------------------------------------
# vectorized engine == legacy event loop
# ---------------------------------------------------------------------------
class TestVectorizedMatchesLegacy:
    """The tentpole bar: every digest bit matches the pre-vectorization loop
    across the axes that change event interleaving."""

    @pytest.mark.parametrize("scheduler", ["fifo", "fair", "capacity"])
    @pytest.mark.parametrize("cache", ["none", "lru"])
    def test_scheduler_cache_grid(self, trace, scheduler, cache):
        new = WorkloadReplayer(scheduler=make_scheduler(scheduler),
                               cache=make_cache(cache)).replay_jobs(trace.jobs)
        old = legacy_replay_jobs(
            WorkloadReplayer(scheduler=make_scheduler(scheduler),
                             cache=make_cache(cache)), trace.jobs)
        assert new.digest() == old.digest()

    @pytest.mark.parametrize("lookahead", [1, 7, 4096])
    def test_lookahead_grid(self, trace, lookahead):
        new = WorkloadReplayer(lookahead=lookahead).replay_jobs(trace.jobs)
        old = legacy_replay_jobs(WorkloadReplayer(lookahead=lookahead),
                                 trace.jobs)
        assert new.digest() == old.digest()

    def test_lfu_cache_and_fair(self, trace):
        new = WorkloadReplayer(scheduler=FairScheduler(),
                               cache=make_cache("lfu")).replay_jobs(trace.jobs)
        old = legacy_replay_jobs(
            WorkloadReplayer(scheduler=FairScheduler(), cache=make_cache("lfu")),
            trace.jobs)
        assert new.digest() == old.digest()

    def test_outcomes_match_in_finish_order(self, trace):
        """record_job folds happen in job-finish event order on both paths."""
        new = WorkloadReplayer().replay(trace)
        old = legacy_replay_jobs(WorkloadReplayer(), trace.jobs)
        assert [outcome.job_id for outcome in new.outcomes] == \
            [outcome.job_id for outcome in old.outcomes]
        assert [outcome.finish_time_s for outcome in new.outcomes] == \
            [outcome.finish_time_s for outcome in old.outcomes]

    def test_negative_submit_clamped_like_legacy(self):
        jobs = [job("early", -5.0), job("later", 2.0)]
        new = WorkloadReplayer().replay_jobs(jobs)
        old = legacy_replay_jobs(WorkloadReplayer(), jobs)
        assert new.digest() == old.digest()

    def test_unsorted_stream_rejected_with_same_message(self):
        jobs = [job("a", 10.0), job("b", 3.0)]
        with pytest.raises(SimulationError) as new_err:
            WorkloadReplayer().replay_jobs(jobs)
        with pytest.raises(SimulationError) as old_err:
            legacy_replay_jobs(WorkloadReplayer(), jobs)
        assert str(new_err.value) == str(old_err.value)


# ---------------------------------------------------------------------------
# sharded replay == serial replay
# ---------------------------------------------------------------------------
class TestExactShardingMatchesSerial:
    """Exact mode threads one engine across boundaries: digests must be
    invariant to the shard count and to where the boundaries land."""

    @pytest.fixture(scope="class")
    def serial_digest(self, store):
        return StreamingReplayer().replay_store(store).digest()

    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_shard_counts(self, store, serial_digest, shards):
        sharded = ShardedReplayer(shards=shards, mode="exact")
        assert sharded.replay_store(store).digest() == serial_digest
        assert len(sharded.handoffs) == max(0, shards - 1)

    def test_boundary_mid_burst(self, store):
        """A boundary dropped inside a dense burst (in-flight tasks and busy
        slots crossing it) must not perturb the digest.

        A two-node cluster keeps a standing queue, so the mid-trace boundary
        is guaranteed to cross active jobs and queued completions.
        """
        config = ClusterConfig(n_nodes=2, map_slots_per_node=2,
                               reduce_slots_per_node=1)
        times = store.read_chunk(store.n_chunks // 2).column("submit_time_s")
        burst = float(np.median(times)) + 0.5  # mid-chunk, mid-activity
        serial = StreamingReplayer(
            cluster_config=config).replay_store(store).digest()
        sharded = ShardedReplayer(cluster_config=config, shards=2,
                                  mode="exact", boundaries=[burst])
        assert sharded.replay_store(store).digest() == serial
        handoff = sharded.handoffs[0]
        assert handoff.boundary_s == burst
        # The interesting case actually happened: work crossed the boundary.
        assert handoff.active_jobs > 0
        assert handoff.pending_completion_events > 0
        assert handoff.busy_map_slots > 0 or handoff.busy_reduce_slots > 0

    def test_boundary_exactly_on_arrival_tie(self, tmp_path):
        """Jobs submitted exactly at a boundary belong to the next shard, and
        an arrival tie sitting on the boundary never splits across shards."""
        jobs = [job("a", 0.0), job("b", 10.0), job("c", 10.0, reduce_s=30.0),
                job("d", 10.0), job("e", 25.0)]
        store = ChunkedTraceStore.write(tmp_path / "tie.store",
                                        Trace(jobs, name="tie"), chunk_rows=2)
        serial = StreamingReplayer().replay_store(store).digest()
        sharded = ShardedReplayer(shards=2, mode="exact", boundaries=[10.0])
        assert sharded.replay_store(store).digest() == serial
        # All of the 10.0 tie went to shard 1: only "a" fed before the cut.
        assert sharded.handoffs[0].jobs_submitted == 1

    def test_scheduler_and_cache_state_cross_boundaries(self, store):
        def build(**kwargs):
            return kwargs.get("cls", StreamingReplayer)(
                scheduler=FairScheduler(), cache=LruCache(capacity_bytes=GB),
                **{k: v for k, v in kwargs.items() if k != "cls"})
        serial = build().replay_store(store).digest()
        sharded = ShardedReplayer(scheduler=FairScheduler(),
                                  cache=LruCache(capacity_bytes=GB),
                                  shards=3, mode="exact")
        assert sharded.replay_store(store).digest() == serial

    def test_explicit_boundaries_validated(self):
        with pytest.raises(SimulationError):
            ShardedReplayer(shards=3, boundaries=[5.0])  # needs 2
        with pytest.raises(SimulationError):
            ShardedReplayer(shards=3, boundaries=[9.0, 5.0])  # not increasing
        with pytest.raises(SimulationError):
            ShardedReplayer(shards=0)
        with pytest.raises(SimulationError):
            ShardedReplayer(mode="bogus")

    def test_replay_jobs_needs_boundaries(self, trace):
        with pytest.raises(SimulationError):
            ShardedReplayer(shards=2).replay_jobs(trace.jobs)
        serial = WorkloadReplayer().replay_jobs(trace.jobs).digest()
        submits = [j.submit_time_s for j in trace.jobs]
        cut = submits[len(submits) // 2] + 0.25
        sharded = ShardedReplayer(shards=2, boundaries=[cut])
        assert sharded.replay_jobs(trace.jobs).digest() == serial


class TestWindowedSharding:
    """Windowed mode trades cross-boundary contention for parallelism: exact
    counts and conservation laws hold; float sums may differ."""

    def test_jobs_conserved_and_merged(self, store, trace):
        sharded = ShardedReplayer(shards=4, mode="windowed", processes=2)
        metrics = sharded.replay_store(store)
        assert metrics.jobs_submitted == len(trace.jobs)
        assert metrics.finished_jobs == len(trace.jobs)
        assert len(sharded.handoffs) == 4
        serial = StreamingReplayer().replay_store(store)
        # Sketch bins count jobs, so totals are conserved even though
        # individual completions shift without cross-window queueing.
        assert metrics.completion.count == serial.completion.count
        assert metrics.wait.count == serial.wait.count

    def test_empty_windows_skipped(self, tmp_path):
        jobs = [job("a", 0.0), job("b", 1.0), job("c", 100.0)]
        store = ChunkedTraceStore.write(tmp_path / "gap.store",
                                        Trace(jobs, name="gap"), chunk_rows=2)
        sharded = ShardedReplayer(shards=4, mode="windowed", processes=1,
                                  boundaries=[10.0, 20.0, 99.0])
        metrics = sharded.replay_store(store)
        assert metrics.jobs_submitted == 3
        # Two interior windows ([10,20) and [20,99)) held no jobs.
        assert len(sharded.handoffs) == 2

    def test_windowed_needs_store(self, trace):
        with pytest.raises(SimulationError):
            ShardedReplayer(shards=2, mode="windowed").replay_jobs(trace.jobs)


# ---------------------------------------------------------------------------
# duplicate-submit-time tie-breaking (look-ahead regression)
# ---------------------------------------------------------------------------
class TestSubmitTimeTies:
    """Jobs sharing a submit time are admitted in input order, regardless of
    the look-ahead window size — pinned against the legacy loop, which gets
    this from event-queue FIFO tie-breaking."""

    @pytest.fixture()
    def tie_jobs(self):
        # Twelve jobs across three tie groups on a small cluster, so the
        # admission order is visible in wait times and finish order.
        jobs = [job("t0-%d" % i, 0.0, map_s=40.0 + i) for i in range(4)]
        jobs += [job("t1-%d" % i, 30.0, map_s=25.0 + i) for i in range(4)]
        jobs += [job("t2-%d" % i, 30.0 + 1e-9, map_s=10.0) for i in range(4)]
        return jobs

    @pytest.mark.parametrize("lookahead", [1, 2, 3, 4096])
    def test_ties_break_in_input_order(self, tie_jobs, lookahead):
        config = ClusterConfig(n_nodes=1, map_slots_per_node=2,
                               reduce_slots_per_node=1)
        new = WorkloadReplayer(cluster_config=config,
                               lookahead=lookahead).replay_jobs(tie_jobs)
        old = legacy_replay_jobs(
            WorkloadReplayer(cluster_config=config, lookahead=lookahead),
            tie_jobs)
        assert new.digest() == old.digest()
        assert [o.job_id for o in new.outcomes] == [o.job_id for o in old.outcomes]

    def test_lookahead_invariant_under_ties(self, tie_jobs):
        config = ClusterConfig(n_nodes=1, map_slots_per_node=2,
                               reduce_slots_per_node=1)
        digests = {
            lookahead: WorkloadReplayer(
                cluster_config=config,
                lookahead=lookahead).replay_jobs(tie_jobs).digest()
            for lookahead in (1, 2, 5, 4096)
        }
        assert len({repr(sorted(d.items())) for d in digests.values()}) == 1

    def test_store_sort_is_stable_on_ties(self, tie_jobs, tmp_path):
        """Store conversion keeps input order within equal submit times
        (np.argsort kind="stable" in ColumnTable), so a store round-trip
        cannot reorder a tie group."""
        shuffled = tie_jobs[8:] + tie_jobs[:8]  # groups out of order, ties intact
        store = ChunkedTraceStore.write(tmp_path / "ties.store",
                                        Trace(shuffled, name="ties"),
                                        chunk_rows=5)
        ids = []
        for block in store.iter_chunks(columns=["job_id", "submit_time_s"]):
            ids.extend(block.column("job_id").tolist())
        expected = [j.job_id for j in sorted(
            shuffled, key=lambda j: j.submit_time_s)]
        # Python's sorted() is stable too: equal keys stay in input order.
        assert ids == expected

    def test_store_replay_matches_iterator_replay_on_ties(self, tie_jobs, tmp_path):
        store = ChunkedTraceStore.write(tmp_path / "ties2.store",
                                        Trace(tie_jobs, name="ties"),
                                        chunk_rows=3)
        config = ClusterConfig(n_nodes=1, map_slots_per_node=2,
                               reduce_slots_per_node=1)
        streamed = StreamingReplayer(
            cluster_config=config).replay_store(store).digest()
        direct = WorkloadReplayer(
            cluster_config=config).replay_jobs(tie_jobs).digest()
        assert streamed == direct
