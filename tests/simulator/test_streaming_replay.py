"""Streaming replay: bounded-memory equivalence with materialized replay,
and the mergeable metric accumulators it is built on."""

import numpy as np
import pytest

from repro.engine import ChunkedTraceStore
from repro.errors import SimulationError
from repro.simulator import (
    ClusterConfig,
    FairScheduler,
    LruCache,
    MetricAccumulator,
    SimulationMetrics,
    StreamingReplayer,
    UtilizationAccumulator,
    WorkloadReplayer,
    energy_from_metrics,
    replay_store,
)
from repro.simulator.metrics import JobOutcome
from repro.traces import Job, Trace, load_workload
from repro.traces.io import write_trace
from repro.units import GB, HOUR


@pytest.fixture(scope="module")
def trace():
    return load_workload("CC-e", seed=11, scale=0.15)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("stores") / "cc-e.store"
    return ChunkedTraceStore.write(directory, trace, chunk_rows=256)


def job(job_id, submit, map_s=60.0, reduce_s=0.0, input_b=1e9):
    return Job(job_id=job_id, submit_time_s=submit, duration_s=map_s + reduce_s,
               input_bytes=input_b, shuffle_bytes=0.0, output_bytes=1e8,
               map_task_seconds=map_s, reduce_task_seconds=reduce_s)


class TestStreamedEqualsMaterialized:
    """The acceptance bar: streamed replay reproduces materialized replay
    exactly — counts, sums, utilization, and sketch bins bit for bit."""

    def test_store_replay_matches_materialized(self, trace, store):
        materialized = WorkloadReplayer().replay(trace)
        streamed = StreamingReplayer().replay_store(store)
        assert streamed.summary() == materialized.summary()
        assert np.array_equal(streamed.completion.sketch.counts,
                              materialized.completion.sketch.counts)
        assert np.array_equal(streamed.wait.sketch.counts,
                              materialized.wait.sketch.counts)
        assert np.array_equal(streamed.hourly_active_slots(),
                              materialized.hourly_active_slots())
        assert streamed.utilization.busy_slot_seconds == \
            materialized.utilization.busy_slot_seconds

    def test_tiny_lookahead_changes_nothing(self, trace, store):
        baseline = StreamingReplayer().replay_store(store)
        tiny = StreamingReplayer(lookahead=1).replay_store(store)
        assert tiny.summary() == baseline.summary()
        assert np.array_equal(tiny.completion.sketch.counts,
                              baseline.completion.sketch.counts)

    def test_replay_path_streams_trace_files(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        write_trace(trace, path)
        streamed = StreamingReplayer().replay_path(str(path))
        materialized = WorkloadReplayer().replay(trace)
        assert streamed.summary() == materialized.summary()

    def test_same_scheduler_and_cache_effects(self, trace, store):
        def build(cls):
            return cls(scheduler=FairScheduler(), cache=LruCache(capacity_bytes=GB))
        materialized = build(WorkloadReplayer).replay(trace)
        streamed = build(StreamingReplayer).replay_store(store)
        assert streamed.summary() == materialized.summary()
        assert streamed.cache_stats.hits == materialized.cache_stats.hits
        assert streamed.cache_stats.misses == materialized.cache_stats.misses

    def test_replay_store_convenience_and_directory_arg(self, store):
        by_handle = replay_store(store)
        by_dir = replay_store(store.directory)
        assert by_handle.summary() == by_dir.summary()


class TestStreamingBehaviour:
    def test_no_outcomes_or_samples_retained(self, store):
        metrics = StreamingReplayer().replay_store(store)
        assert metrics.keep_outcomes is False
        assert metrics.outcomes == []
        assert metrics.utilization_samples == []
        assert metrics.finished_jobs > 0
        assert metrics.n_jobs == metrics.jobs_submitted

    def test_streaming_percentiles_close_to_exact(self, trace, store):
        exact = WorkloadReplayer().replay(trace)
        streamed = StreamingReplayer().replay_store(store)
        for q in (50.0, 95.0, 99.0):
            approx = streamed.percentile_completion_time(q)
            truth = exact.percentile_completion_time(q)
            # sketch resolution is one part in 10**(1/32) ~ 7.5%
            assert approx == pytest.approx(truth, rel=0.08)

    def test_streaming_hdfs_does_not_retain_implicit_files(self):
        jobs = [job("j%d" % i, float(i)) for i in range(50)]
        replayer = StreamingReplayer()
        replayer.replay_jobs(iter(jobs))
        assert len(replayer.hdfs) == 0

    def test_unsorted_stream_rejected(self):
        jobs = [job("a", 100.0), job("b", 50.0)]
        with pytest.raises(SimulationError, match="arrival-time order"):
            StreamingReplayer().replay_jobs(iter(jobs))

    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError, match="empty job stream"):
            StreamingReplayer().replay_jobs(iter([]))

    def test_max_jobs_caps_streamed_replay(self, store):
        metrics = StreamingReplayer(max_simulated_jobs=10).replay_store(store)
        assert metrics.jobs_submitted == 10

    def test_slowdown_needs_retained_outcomes(self, store):
        metrics = StreamingReplayer().replay_store(store)
        with pytest.raises(SimulationError, match="retained per-job outcomes"):
            metrics.slowdown_of_small_jobs(GB)

    def test_energy_from_streaming_metrics(self, store):
        """Energy integration falls back to hour-granular accumulator steps."""
        config = ClusterConfig()
        metrics = StreamingReplayer(cluster_config=config).replay_store(store)
        report = energy_from_metrics(metrics, config)
        assert report.energy_joules > 0
        assert 0.0 <= report.mean_utilization <= 1.0


def outcome(job_id, submit, wait, completion, total_bytes=1e9):
    return JobOutcome(job_id=job_id, submit_time_s=submit, start_time_s=submit + wait,
                      finish_time_s=submit + completion, wait_time_s=wait,
                      completion_time_s=completion, total_bytes=total_bytes, n_tasks=1)


class TestMetricAccumulatorMerge:
    """Merge equivalence: folding a partition of the stream and merging is
    exact for counts/extremes/sketch bins (and for dyadic-rational sums)."""

    def test_merge_equals_serial_fold(self):
        # Dyadic rationals with bounded magnitude: float addition is exact,
        # so even the float sums must match the serial fold bit for bit.
        values = (np.arange(10_000, dtype=float) % 4096) / 8.0
        serial = MetricAccumulator()
        serial.update(values)
        parts = [MetricAccumulator() for _ in range(4)]
        for index, part in enumerate(parts):
            part.update(values[index * 2500:(index + 1) * 2500])
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        assert merged.count == serial.count == 10_000
        assert merged.total == serial.total
        assert merged.minimum == serial.minimum
        assert merged.maximum == serial.maximum
        assert np.array_equal(merged.sketch.counts, serial.sketch.counts)
        assert merged.sketch.zero_count == serial.sketch.zero_count

    def test_scalar_adds_equal_batch_update(self):
        values = np.linspace(0.0, 500.0, 9000)
        one_by_one = MetricAccumulator()
        for value in values:
            one_by_one.add(float(value))
        batched = MetricAccumulator()
        batched.update(values)
        assert one_by_one.count == batched.count
        assert np.array_equal(one_by_one.sketch.counts, batched.sketch.counts)
        assert one_by_one.minimum == batched.minimum
        assert one_by_one.maximum == batched.maximum

    def test_percentile_clamped_to_observed_range(self):
        acc = MetricAccumulator()
        acc.update(np.array([10.0, 20.0, 30.0]))
        assert 10.0 <= acc.percentile(50.0) <= 30.0
        assert acc.percentile(0.0) == 10.0
        assert acc.percentile(100.0) == 30.0


class TestSimulationMetricsMerge:
    def test_streamed_shard_merge_equals_materialized_whole(self):
        """Satellite acceptance: merging per-shard streamed metrics equals a
        single materialized replay's accumulators, exactly."""
        # Dyadic times/waits keep every float sum exact under regrouping.
        outcomes = [outcome("j%d" % i, float(i), (i % 8) / 4.0, 16.0 + (i % 32) / 2.0)
                    for i in range(1000)]
        whole = SimulationMetrics(total_slots=600, keep_outcomes=True)
        for entry in outcomes:
            whole.record_submission()
            whole.record_job(entry)
        shards = [SimulationMetrics(total_slots=600, keep_outcomes=False)
                  for _ in range(3)]
        for index, entry in enumerate(outcomes):
            shards[index % 3].record_submission()
            shards[index % 3].record_job(entry)
        merged = shards[0]
        merged.merge(shards[1])
        merged.merge(shards[2])
        assert merged.jobs_submitted == whole.jobs_submitted
        assert merged.finished_jobs == whole.finished_jobs
        assert merged.wait.total == whole.wait.total
        assert merged.completion.total == whole.completion.total
        assert np.array_equal(merged.completion.sketch.counts,
                              whole.completion.sketch.counts)
        assert np.array_equal(merged.wait.sketch.counts, whole.wait.sketch.counts)
        assert merged.mean_wait_time() == whole.mean_wait_time()
        assert merged.mean_completion_time() == whole.mean_completion_time()

    def test_mixed_retention_merge_demotes_and_clears_lists(self):
        """Merging a streaming shard into a materialized one must not leave a
        partial outcome/sample list behind — summaries would silently cover
        only one side."""
        keeping = SimulationMetrics(total_slots=600, keep_outcomes=True)
        keeping.record_submission()
        keeping.record_job(outcome("a", 0.0, 1.0, 10.0))
        keeping.record_utilization(0.0, 3)
        keeping.record_utilization(HOUR, 0)
        streaming = SimulationMetrics(total_slots=600, keep_outcomes=False)
        streaming.record_submission()
        streaming.record_job(outcome("b", HOUR, 2.0, 20.0))
        keeping.merge(streaming)
        assert keeping.keep_outcomes is False
        assert keeping.outcomes == []
        assert keeping.utilization_samples == []
        # Summaries still cover both jobs via the accumulators, and
        # utilization_steps() falls back to the merged hourly bins instead of
        # trusting the stale (half-coverage) sample list.
        assert keeping.wait.count == 2
        assert keeping.utilization_steps()[0][2] == pytest.approx(3.0)

    def test_merge_combines_cache_stats_and_utilization(self):
        left = SimulationMetrics(total_slots=10)
        right = SimulationMetrics(total_slots=10)
        left.record_utilization(0.0, 5)
        left.record_utilization(HOUR, 5)
        right.record_utilization(HOUR, 2)
        right.record_utilization(2 * HOUR, 2)
        from repro.simulator import CacheStats
        left.cache_stats = CacheStats(hits=3, misses=1)
        right.cache_stats = CacheStats(hits=1, misses=5)
        left.merge(right)
        assert left.cache_stats.hits == 4 and left.cache_stats.misses == 6
        assert left.utilization.busy_slot_seconds == 7 * HOUR
        hourly = left.hourly_active_slots()
        assert hourly[0] == 5.0 and hourly[1] == 2.0


class TestUtilizationAccumulator:
    def test_hour_splitting_matches_step_integral(self):
        acc = UtilizationAccumulator()
        acc.observe(0.0, 4)
        acc.observe(1.5 * HOUR, 2)      # 4 slots for 1.5 h
        acc.observe(3.0 * HOUR, 0)      # 2 slots for 1.5 h
        assert acc.busy_slot_seconds == 4 * 1.5 * HOUR + 2 * 1.5 * HOUR
        hourly = acc.hourly_active_slots()
        assert hourly.tolist() == [4.0, 3.0, 2.0]
        assert acc.mean_utilization(total_slots=4) == pytest.approx(0.75)

    def test_out_of_order_observation_rejected(self):
        acc = UtilizationAccumulator()
        acc.observe(100.0, 1)
        with pytest.raises(SimulationError):
            acc.observe(50.0, 1)

    def test_idle_tail_extends_hourly_bins(self):
        acc = UtilizationAccumulator()
        acc.observe(0.0, 3)
        acc.observe(HOUR, 0)
        acc.observe(3 * HOUR, 0)
        assert len(acc.hourly_slot_seconds) == 3
        assert acc.hourly_active_slots().tolist() == [3.0, 0.0, 0.0]
