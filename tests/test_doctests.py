"""Run the usage doctests embedded in the docs-bearing modules and docs files.

The CI docs job runs the same set via ``python -m pytest tests/test_doctests.py``;
keeping the doctests inside the tier-1 suite means the examples in the module
docstrings (the ones README.md and docs/ point readers at) can never rot
silently.
"""

import doctest
import importlib
import os

import pytest

#: Modules whose docstrings carry runnable usage examples.
DOCS_BEARING_MODULES = [
    "repro.engine",
    "repro.engine.source",
    "repro.simulator",
    "repro.simulator.metrics",
    "repro.simulator.replay",
    "repro.simulator.sweep",
]

#: Markdown documents whose ``>>>`` examples are runnable doctests.
DOCS_BEARING_FILES = [
    "docs/pipeline.md",
]

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


@pytest.mark.parametrize("module_name", DOCS_BEARING_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, "%s advertises doctests but has none" % module_name
    assert result.failed == 0, "%d doctest failure(s) in %s" % (result.failed, module_name)


@pytest.mark.parametrize("relative_path", DOCS_BEARING_FILES)
def test_docs_file_doctests(relative_path):
    result = doctest.testfile(os.path.join(REPO_ROOT, relative_path),
                              module_relative=False, verbose=False)
    assert result.attempted > 0, "%s advertises doctests but has none" % relative_path
    assert result.failed == 0, "%d doctest failure(s) in %s" % (result.failed,
                                                                relative_path)
