"""Cross-module integration tests for the extension subsystems.

These exercise the end-to-end pipelines that span several subpackages:
generation -> naming synthesis -> characterization, anonymization ->
aggregation -> offsite comparison, SWIM synthesis -> replay-plan -> simulator,
and the CLI entry points for the new commands.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import (
    analyze_naming,
    characterize,
    consolidation_study,
    select_workload_suite,
    workload_features,
)
from repro.simulator import ClusterConfig, WorkloadReplayer
from repro.synth import (
    PAPER_MIXES,
    FrameworkMixModel,
    SwimSynthesizer,
    build_replay_plan,
    parse_replay_plan,
)
from repro.traces import (
    AggregatedMetrics,
    Anonymizer,
    aggregate_trace,
    anonymize_trace,
    load_workload,
    read_trace,
)


class TestNamingSynthesisPipeline:
    def test_mix_assignment_feeds_naming_analysis(self, cc_b_small_trace):
        # Strip names, re-assign them from the paper mix, and verify the §6.1
        # analysis sees two dominant frameworks as Figure 10 reports.
        from repro.traces import Job, Trace
        unnamed = Trace([Job.from_dict({**job.to_dict(), "name": None, "framework": None})
                         for job in cc_b_small_trace], name="CC-b-unnamed")
        named = FrameworkMixModel(PAPER_MIXES["CC-b"], seed=1).assign_names(unnamed)
        analysis = analyze_naming(named)
        dominant = analysis.dominant_frameworks("jobs", 2)
        shares = analysis.framework_shares["jobs"]
        assert shares[dominant[0]] + shares[dominant[1]] > 0.4


class TestOffsiteSharingPipeline:
    def test_two_sites_compare_aggregates(self, cc_b_small_trace, fb_2009_small_trace):
        payloads = []
        for trace, salt in ((cc_b_small_trace, "site-1"), (fb_2009_small_trace, "site-2")):
            anonymized = anonymize_trace(trace, Anonymizer(salt=salt))
            payloads.append(aggregate_trace(anonymized).to_json())
        received = [AggregatedMetrics.from_json(payload) for payload in payloads]
        # The offsite consumer can still rank the sites by job count and
        # compare their burstiness, without ever seeing a raw path.
        assert received[1].n_jobs != received[0].n_jobs
        for payload in payloads:
            assert "/data" not in payload
        for record in received:
            assert record.peak_to_median_task_seconds() >= 1.0


class TestSwimReplayPlanPipeline:
    def test_synthesize_render_parse_replay(self, cc_b_small_trace):
        synthesizer = SwimSynthesizer(cc_b_small_trace, seed=5)
        plan = synthesizer.synthesize(n_jobs=300, horizon_s=3600.0, target_machines=10)
        rendered = build_replay_plan(plan).render()
        parsed = parse_replay_plan(rendered)
        metrics = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=10)).replay(parsed.to_trace())
        assert metrics.finished_jobs == 300
        assert metrics.mean_utilization() > 0.0


class TestSuiteAndConsolidationOnPaperWorkloads:
    def test_suite_selection_over_generated_workloads(self, cc_b_small_trace,
                                                      cc_e_trace, fb_2009_small_trace):
        features = [workload_features(trace)
                    for trace in (cc_b_small_trace, cc_e_trace, fb_2009_small_trace)]
        suite = select_workload_suite(features, 2)
        assert len(suite.selected) == 2
        study = consolidation_study([cc_b_small_trace, fb_2009_small_trace])
        assert study.consolidated_burstiness.peak_to_median > 1.0


class TestCliExtensions:
    def test_anonymize_command_writes_trace_and_aggregate(self, tmp_path, capsys):
        out_trace = tmp_path / "anon.jsonl"
        out_aggregate = tmp_path / "agg.json"
        exit_code = cli_main([
            "anonymize", "--workload", "CC-a", "--scale", "0.2", "--seed", "3",
            "--salt", "cli-salt", "--output", str(out_trace), "--aggregate", str(out_aggregate),
        ])
        assert exit_code == 0
        reloaded = read_trace(str(out_trace))
        assert len(reloaded) > 0
        assert all("/" not in (job.name or "") for job in reloaded)
        aggregate = json.loads(out_aggregate.read_text(encoding="utf-8"))
        assert aggregate["n_jobs"] == len(reloaded)

    def test_compare_command_prints_summary(self, capsys):
        exit_code = cli_main([
            "compare", "--before-workload", "FB-2009", "--after-workload", "FB-2010",
            "--scale", "0.002", "--seed", "3",
        ])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Evolution" in captured
        assert "orders of magnitude" in captured

    def test_characterize_still_works_after_cli_changes(self, capsys):
        exit_code = cli_main(["characterize", "--workload", "CC-a", "--scale", "0.2",
                              "--seed", "3", "--no-cluster"])
        assert exit_code == 0
        assert "CC-a" in capsys.readouterr().out


class TestCharacterizationOnSynthesizedNames:
    def test_full_characterize_of_decorated_synthetic_workload(self, cc_b_small_trace):
        # Decorate the SWIM output with a framework mix, then run the full
        # paper characterization on it — the pipeline a benchmark user follows.
        plan = SwimSynthesizer(cc_b_small_trace, seed=2).synthesize(
            n_jobs=400, horizon_s=2 * 3600.0, target_machines=20)
        named = FrameworkMixModel(PAPER_MIXES["CC-b"], seed=2).assign_names(plan.trace)
        report = characterize(named, cluster=True, max_k=6)
        assert report.clustering is not None
        assert report.naming is not None
        assert report.data_sizes is not None
