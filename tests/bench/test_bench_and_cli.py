"""Tests for the benchmark harness (tables, figures, suite) and the CLI."""

import pytest

from repro.bench import (
    ExperimentResult,
    burstiness_metric_ablation,
    cache_policy_ablation,
    figure1,
    figure2,
    figure5,
    figure6,
    figure8,
    figure9,
    figure10,
    k_selection_ablation,
    run_suite,
    render_suite,
    series_preview,
    swim_replay,
    table1,
    table2,
)
from repro.cli import main
from repro.traces import load_workload


@pytest.fixture(scope="module")
def small_traces():
    """Two small workloads generated once for all harness tests."""
    return {
        "CC-b": load_workload("CC-b", seed=3, scale=0.08),
        "CC-e": load_workload("CC-e", seed=3, scale=0.2),
    }


class TestExperimentResult:
    def test_render_contains_table_and_notes(self):
        result = ExperimentResult(experiment_id="x", title="t", headers=["a"],
                                  rows=[["1"]], notes=["hello"])
        text = result.render()
        assert "== x: t ==" in text and "hello" in text

    def test_series_preview_thins_points(self):
        points = [(float(index), float(index)) for index in range(100)]
        preview = series_preview(points, max_points=4)
        assert preview.count("(") <= 6
        assert "(99," in preview


class TestTableExperiments:
    def test_table1_rows_per_workload(self, small_traces):
        result = table1(small_traces, scales={"CC-b": 0.08, "CC-e": 0.2})
        assert len(result.rows) == 2
        assert result.rows[0][0] == "CC-b"

    def test_table2_small_jobs_dominate(self, small_traces):
        result = table2(small_traces, max_k=6, max_jobs_per_workload=3000)
        assert any("Small jobs" in row[-1] for row in result.rows)
        assert all("small-job fraction" in note for note in result.notes)


class TestFigureExperiments:
    def test_figure1_has_cdfs_for_each_workload(self, small_traces):
        result = figure1(small_traces)
        assert len(result.rows) == 2
        assert "CC-b/input_bytes" in result.series

    def test_figure2_reports_slopes(self, small_traces):
        result = figure2(small_traces)
        assert any(row[0] == "CC-b" and row[1] == "input" for row in result.rows)
        slopes = [float(row[4]) for row in result.rows if row[4] != "-"]
        assert all(0.2 < slope < 2.0 for slope in slopes)

    def test_figure5_and_6_reaccess(self, small_traces):
        intervals = figure5(small_traces)
        fractions = figure6(small_traces)
        assert intervals.rows and fractions.rows
        for row in fractions.rows:
            for cell in row[1:]:
                assert cell.endswith("%")

    def test_figure8_includes_sine_references(self, small_traces):
        result = figure8(small_traces)
        labels = [row[0] for row in result.rows]
        assert "sine + 2" in labels and "sine + 20" in labels
        workload_peak = float(result.rows[0][1].split(":")[0])
        assert workload_peak > 1.0

    def test_figure9_has_average_row(self, small_traces):
        result = figure9(small_traces)
        assert result.rows[-1][0] == "average"

    def test_figure10_panels(self, small_traces):
        result = figure10(small_traces)
        weightings = {row[1] for row in result.rows}
        assert weightings == {"jobs", "bytes", "task-time"}


class TestSimulationExperiments:
    def test_swim_replay_rows(self, small_traces):
        result = swim_replay(small_traces["CC-e"], n_jobs=300, horizon_s=3600.0,
                             target_machines=10, seed=0)
        as_dict = dict((row[0], row[1]) for row in result.rows)
        assert as_dict["synthetic jobs"] == "300"
        assert int(as_dict["finished jobs"]) == 300

    def test_cache_ablation_orderings(self, small_traces):
        result = cache_policy_ablation(small_traces["CC-e"], max_simulated_jobs=600,
                                       n_nodes=20)
        rates = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
        assert rates["no-cache"] == 0.0
        assert rates["unlimited"] >= rates["size-threshold+lru"] >= 0.0
        assert rates["size-threshold+lru"] > 0.0

    def test_burstiness_ablation_rows(self, small_traces):
        result = burstiness_metric_ablation(small_traces["CC-b"])
        assert any("outlier" in row[0] for row in result.rows)

    def test_k_selection_ablation(self, small_traces):
        result = k_selection_ablation(small_traces["CC-e"], max_k=6, max_jobs=1500)
        assert len(result.rows) == 5


class TestSuiteAndCli:
    def test_run_suite_subset_with_provided_traces(self, small_traces):
        results = run_suite(traces=small_traces, experiments=["table1", "figure8", "figure9"],
                            include_ablations=False, include_simulation=False)
        ids = [result.experiment_id for result in results]
        assert ids == ["table1", "figure8", "figure9"]
        report = render_suite(results)
        assert "figure9" in report

    def test_cli_generate_and_characterize(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        assert main(["generate", "CC-e", "--scale", "0.02", "--seed", "1",
                     "--output", str(out)]) == 0
        assert out.exists()
        assert main(["characterize", "--trace", str(out), "--no-cluster"]) == 0
        captured = capsys.readouterr().out
        assert "Per-job data sizes" in captured

    def test_cli_synthesize_and_replay(self, tmp_path, capsys):
        out = tmp_path / "synthetic.jsonl"
        assert main(["synthesize", "--workload", "CC-e", "--scale", "0.05",
                     "--jobs", "150", "--hours", "1", "--machines", "5",
                     "--output", str(out)]) == 0
        assert out.exists()
        assert main(["replay", "--trace", str(out), "--nodes", "5"]) == 0
        captured = capsys.readouterr().out
        assert "replayed" in captured

    def test_cli_bench_subset(self, tmp_path, capsys):
        report_path = tmp_path / "report.txt"
        assert main(["bench", "--scale", "0.02", "--experiments", "figure9",
                     "--no-simulation", "--output", str(report_path)]) == 0
        assert report_path.exists()
        assert "figure9" in report_path.read_text()
