"""CLI coverage for the ``repro replay`` path: materialized, streamed from a
trace file, streamed from a chunked store, and scenario sweeps."""

import json

import pytest

from repro.cli import main
from repro.engine import ChunkedTraceStore
from repro.traces import load_workload
from repro.traces.io import write_trace


@pytest.fixture(scope="module")
def trace():
    return load_workload("CC-e", seed=9, scale=0.05)


@pytest.fixture(scope="module")
def trace_path(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-replay") / "trace.jsonl.gz"
    write_trace(trace, path)
    return str(path)


@pytest.fixture(scope="module")
def store_dir(trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-replay") / "trace.store"
    ChunkedTraceStore.write(directory, trace, chunk_rows=128)
    return str(directory)


class TestSingleReplay:
    def test_trace_backed_materialized(self, trace_path, capsys):
        assert main(["replay", "--trace", trace_path, "--nodes", "10"]) == 0
        captured = capsys.readouterr().out
        assert "replayed" in captured and "materialized" in captured

    def test_trace_backed_streaming(self, trace_path, capsys):
        assert main(["replay", "--trace", trace_path, "--streaming"]) == 0
        captured = capsys.readouterr().out
        assert "streamed" in captured

    def test_store_backed_streams_and_matches_trace_replay(
            self, trace_path, store_dir, capsys):
        assert main(["replay", "--store", store_dir]) == 0
        store_out = capsys.readouterr().out
        assert main(["replay", "--trace", trace_path]) == 0
        trace_out = capsys.readouterr().out
        # Same jobs, same scheduler: the accumulator-exact fields (mean wait,
        # mean utilization) agree; the median is sketch-approximate when
        # streaming, so it is excluded from the comparison.
        store_fields = store_out.splitlines()[1].split(", ")
        trace_fields = trace_out.splitlines()[1].split(", ")
        assert store_fields[0] == trace_fields[0]    # mean wait
        assert store_fields[2] == trace_fields[2]    # mean utilization
        assert "replayed %d" % 0 not in store_out

    def test_scheduler_and_cache_flags(self, store_dir, capsys):
        assert main(["replay", "--store", store_dir, "--scheduler", "fair",
                     "--cache", "lru", "--cache-gb", "0.5"]) == 0
        captured = capsys.readouterr().out
        assert "scheduler=fair" in captured and "cache=lru" in captured
        assert "cache hit rate" in captured

    def test_max_jobs_and_lookahead(self, store_dir, capsys):
        assert main(["replay", "--store", store_dir, "--max-jobs", "7",
                     "--lookahead", "2"]) == 0
        assert "replayed 7 jobs" in capsys.readouterr().out


class TestSweepReplay:
    def test_store_backed_sweep(self, store_dir, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({
            "grid": {"schedulers": ["fifo", "fair"],
                     "caches": ["none", {"cache": "lru", "cache_gb": 0.5}]}
        }))
        out_path = tmp_path / "results.json"
        assert main(["replay", "--store", store_dir, "--sweep", str(spec),
                     "--output", str(out_path)]) == 0
        captured = capsys.readouterr().out
        assert "scenario sweep" in captured
        for name in ("fifo/none", "fifo/lru", "fair/none", "fair/lru"):
            assert name in captured
        payload = json.loads(out_path.read_text())
        assert len(payload) == 4

    def test_sweep_rejects_single_replay_flags(self, store_dir, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"grid": {"schedulers": ["fifo"]}}))
        with pytest.raises(SystemExit):
            main(["replay", "--store", store_dir, "--sweep", str(spec),
                  "--scheduler", "fair"])
        assert "define them per scenario" in capsys.readouterr().err

    def test_trace_backed_sweep(self, trace_path, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps({"scenarios": [
            {"name": "fifo-small", "nodes": 10, "max_jobs": 50},
        ]}))
        assert main(["replay", "--trace", trace_path, "--sweep", str(spec)]) == 0
        assert "fifo-small" in capsys.readouterr().out
