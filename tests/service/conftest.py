"""Fixtures for the service-daemon tests.

A catalog with two small stores ("fb" and "cc") is rebuilt per test from
session-cached traces, so mutation tests (appends, invalidation) never leak
into each other while trace synthesis still happens only once.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import ChunkedTraceStore
from repro.traces import Trace, load_workload


@pytest.fixture(scope="session")
def fb_service_trace() -> Trace:
    """A heavily down-scaled FB-2010 trace (~a few hundred jobs)."""
    return load_workload("FB-2010", seed=0, scale=0.002)


@pytest.fixture(scope="session")
def cc_service_trace() -> Trace:
    """A down-scaled CC-b trace with a very different workload mixture."""
    return load_workload("CC-b", seed=1, scale=0.01)


@pytest.fixture()
def catalog_dir(tmp_path, fb_service_trace, cc_service_trace) -> str:
    catalog = tmp_path / "catalog"
    catalog.mkdir()
    ChunkedTraceStore.write(str(catalog / "fb"), fb_service_trace,
                            chunk_rows=512)
    ChunkedTraceStore.write(str(catalog / "cc"), cc_service_trace,
                            chunk_rows=512)
    return str(catalog)


@pytest.fixture()
def service(catalog_dir):
    """A running daemon on the two-store catalog (quiet logs, short window)."""
    from repro.service import ServiceThread

    with open(os.devnull, "w") as sink:
        with ServiceThread(catalog_dir, batch_window_s=0.02,
                           log_stream=sink) as thread:
            yield thread


@pytest.fixture()
def client(service):
    from repro.service import ServiceClient

    return ServiceClient(port=service.port)
