"""Store catalog + the machine-readable CLI surfaces (`engine info --json`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.engine import ChunkedTraceStore, StoreCatalog, append_store
from repro.engine.catalog import CatalogEntry
from repro.errors import TraceFormatError


class TestStoreCatalog:
    def test_discovers_named_stores(self, catalog_dir):
        catalog = StoreCatalog(catalog_dir)
        assert catalog.names() == ["cc", "fb"]
        assert len(catalog) == 2
        assert "fb" in catalog and "nope" not in catalog

    def test_missing_catalog_directory_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="does not exist"):
            StoreCatalog(str(tmp_path / "nowhere"))

    def test_unknown_store_name_lists_known_names(self, catalog_dir):
        catalog = StoreCatalog(catalog_dir)
        with pytest.raises(TraceFormatError, match="has no store named"):
            catalog.entry("nope")
        with pytest.raises(TraceFormatError, match="cc, fb"):
            catalog.entry("nope")

    def test_state_directory_is_not_a_store(self, catalog_dir):
        os.makedirs(os.path.join(catalog_dir, ".service"), exist_ok=True)
        assert StoreCatalog(catalog_dir).names() == ["cc", "fb"]

    def test_refresh_picks_up_new_stores(self, catalog_dir, fb_service_trace):
        catalog = StoreCatalog(catalog_dir)
        ChunkedTraceStore.write(os.path.join(catalog_dir, "late"),
                                fb_service_trace, chunk_rows=512)
        # entry() rescans once before failing, so no explicit refresh needed.
        assert catalog.entry("late").name == "late"
        assert "late" in catalog.names()

    def test_entry_caches_handle_until_manifest_moves(self, catalog_dir,
                                                      cc_service_trace):
        entry = StoreCatalog(catalog_dir).entry("fb")
        first = entry.open()
        assert entry.open() is first  # unchanged manifest: same handle
        append_store(entry.directory, cc_service_trace.jobs[:10])
        fresh = entry.open()
        assert fresh is not first
        assert fresh.manifest_sequence == first.manifest_sequence + 1
        # The old handle still reads the manifest it opened with.
        assert len(first) == len(fresh) - 10

    def test_info_carries_catalog_name_and_identity(self, catalog_dir):
        infos = StoreCatalog(catalog_dir).info()
        assert [info["catalog_name"] for info in infos] == ["cc", "fb"]
        for info in infos:
            assert info["store_uid"]
            assert info["manifest_sequence"] == 0
            assert info["n_jobs"] > 0

    def test_entry_open_reports_unreadable_store(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "manifest.json").write_text("{not json")
        entry = CatalogEntry("broken", str(directory))
        with pytest.raises(TraceFormatError):
            entry.open()


class TestEngineInfoJson:
    def test_json_flag_emits_machine_readable_metadata(self, catalog_dir, capsys):
        store_dir = os.path.join(catalog_dir, "fb")
        assert main(["engine", "info", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store_uid"]
        assert payload["manifest_sequence"] == 0
        assert payload["n_jobs"] > 0
        assert "submit_time_s" in payload["columns"]
        assert "column_sizes" not in payload

    def test_json_with_sizes_includes_per_column_bytes(self, catalog_dir, capsys):
        store_dir = os.path.join(catalog_dir, "fb")
        assert main(["engine", "info", "--store", store_dir, "--json",
                     "--sizes"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["column_sizes"]["submit_time_s"] > 0

    def test_table_output_shows_store_uid(self, catalog_dir, capsys):
        store_dir = os.path.join(catalog_dir, "fb")
        assert main(["engine", "info", "--store", store_dir]) == 0
        assert "store_uid" in capsys.readouterr().out


class TestCliErrorExitCodes:
    def test_repro_error_exits_nonzero_without_traceback(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-store")
        assert main(["engine", "info", "--store", missing]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_serve_requires_existing_catalog(self, tmp_path, capsys):
        assert main(["serve", "--catalog", str(tmp_path / "nowhere")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_successful_commands_still_exit_zero(self, catalog_dir, capsys):
        store_dir = os.path.join(catalog_dir, "cc")
        assert main(["engine", "query", "--store", store_dir,
                     "--agg", "count"]) == 0
        assert "count" in capsys.readouterr().out
