"""Drift monitor semantics + workload features over stores vs. traces."""

from __future__ import annotations

import os

import pytest

from repro.core.comparison import (FEATURE_NAMES, workload_distance,
                                   workload_features)
from repro.engine import ChunkedTraceStore, append_store
from repro.errors import AnalysisError
from repro.service import DriftMonitor
from repro.traces import Trace


class TestWorkloadFeaturesOnStores:
    def test_store_features_match_trace_features(self, catalog_dir,
                                                 fb_service_trace):
        """The streaming (store) path must agree with the in-memory path."""
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        from_trace = workload_features(fb_service_trace)
        from_store = workload_features(store)
        assert set(from_store.values) == set(FEATURE_NAMES)
        # Sketch-backed medians may differ slightly between the in-memory and
        # chunked representations; everything else is exact.
        for name in FEATURE_NAMES:
            assert from_store.values[name] == \
                pytest.approx(from_trace.values[name], rel=0.05, abs=0.05)
        # Far below any realistic drift threshold (the tests use 0.5).
        assert workload_distance(from_trace, from_store) < 0.1

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            workload_features(Trace(jobs=[], name="empty"))


class TestDriftMonitor:
    def _grown(self, catalog_dir, jobs):
        directory = os.path.join(catalog_dir, "fb")
        return append_store(directory, jobs)

    def test_fires_once_per_upward_crossing(self, catalog_dir,
                                            cc_service_trace):
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        monitor = DriftMonitor()
        subscription = monitor.subscribe("fb", store, threshold=0.5)
        assert subscription.last_distance == 0.0
        grown = self._grown(catalog_dir, cc_service_trace.jobs[:200])
        fired = monitor.check_store("fb", grown)
        assert len(fired) == 1
        assert fired[0]["distance"] >= 0.5
        assert fired[0]["manifest_sequence"] == grown.manifest_sequence
        # Same sequence again: the check is skipped, nothing re-fires.
        assert monitor.check_store("fb", grown) == []
        # Still drifted at the next sequence: no *new* crossing, no re-fire.
        grown = self._grown(catalog_dir, cc_service_trace.jobs[200:210])
        assert monitor.check_store("fb", grown) == []
        assert subscription.fired == 1
        assert monitor.notifications() and len(monitor.notifications()) == 1

    def test_below_threshold_appends_do_not_fire(self, catalog_dir,
                                                 fb_service_trace):
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        monitor = DriftMonitor()
        monitor.subscribe("fb", store, threshold=10.0)
        # More of the same workload: the feature vector barely moves.
        grown = self._grown(catalog_dir, fb_service_trace.jobs[:100])
        assert monitor.check_store("fb", grown) == []
        assert monitor.notifications() == []

    def test_invalid_threshold_rejected(self, catalog_dir):
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        monitor = DriftMonitor()
        for bad in (0, -1, "big", None):
            with pytest.raises(AnalysisError):
                monitor.subscribe("fb", store, bad)

    def test_check_without_subscriptions_is_cheap_noop(self, catalog_dir):
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        monitor = DriftMonitor()
        assert monitor.has_subscriptions("fb") is False
        assert monitor.check_store("fb", store) == []

    def test_stale_check_never_regresses_state(self, catalog_dir,
                                               cc_service_trace):
        """A check against an older store handle, arriving after a newer
        sequence has already been checked, must not move the subscription
        backwards (which would duplicate threshold-crossing notifications)."""
        store = ChunkedTraceStore(os.path.join(catalog_dir, "fb"))
        monitor = DriftMonitor()
        subscription = monitor.subscribe("fb", store, threshold=0.5)
        older = self._grown(catalog_dir, cc_service_trace.jobs[:200])
        newer = self._grown(catalog_dir, cc_service_trace.jobs[200:210])
        assert len(monitor.check_store("fb", newer)) == 1
        distance_after_newer = subscription.last_distance
        # The slower, older-sequence check finishes last: a no-op.
        assert monitor.check_store("fb", older) == []
        assert subscription.last_checked_sequence == newer.manifest_sequence
        assert subscription.last_distance == distance_after_newer
        assert subscription.fired == 1
