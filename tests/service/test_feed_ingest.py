"""Feed tailing: offsets, partial lines, malformed input, daemon integration."""

from __future__ import annotations

import json
import os
import time

from repro.engine import ChunkedTraceStore
from repro.service import FeedTailer, ServiceClient, ServiceThread


def _feed_line(job) -> bytes:
    return (json.dumps(job.to_dict()) + "\n").encode("utf-8")


class TestFeedTailer:
    def _tailer(self, tmp_path, catalog_dir):
        feed = tmp_path / "feed.jsonl"
        feed.touch()
        state = tmp_path / "state"
        state.mkdir()
        return FeedTailer("fb", str(feed), os.path.join(catalog_dir, "fb"),
                          str(state)), feed

    def test_appends_complete_lines_and_persists_offset(self, tmp_path,
                                                        catalog_dir,
                                                        cc_service_trace):
        tailer, feed = self._tailer(tmp_path, catalog_dir)
        store_dir = os.path.join(catalog_dir, "fb")
        n_before = len(ChunkedTraceStore(store_dir))
        jobs = cc_service_trace.jobs[:3]
        with open(feed, "ab") as handle:
            for job in jobs:
                handle.write(_feed_line(job))
        assert tailer.poll() == 3
        assert len(ChunkedTraceStore(store_dir)) == n_before + 3
        assert tailer.poll() == 0  # nothing new
        # A restarted tailer resumes from the persisted offset.
        resumed = FeedTailer("fb", str(feed), store_dir,
                             os.path.dirname(tailer.offset_path))
        assert resumed.offset == tailer.offset
        assert resumed.poll() == 0

    def test_partial_trailing_line_waits_for_its_newline(self, tmp_path,
                                                         catalog_dir,
                                                         cc_service_trace):
        tailer, feed = self._tailer(tmp_path, catalog_dir)
        complete = _feed_line(cc_service_trace.jobs[0])
        partial = _feed_line(cc_service_trace.jobs[1])
        with open(feed, "ab") as handle:
            handle.write(complete + partial[:10])  # producer mid-write
        assert tailer.poll() == 1
        offset_after_first = tailer.offset
        assert offset_after_first == len(complete)
        with open(feed, "ab") as handle:
            handle.write(partial[10:])
        assert tailer.poll() == 1
        assert tailer.offset == len(complete) + len(partial)

    def test_malformed_line_recorded_not_consumed(self, tmp_path, catalog_dir):
        tailer, feed = self._tailer(tmp_path, catalog_dir)
        with open(feed, "ab") as handle:
            handle.write(b"{broken json\n")
        assert tailer.poll() == 0
        assert "not valid JSON" in tailer.last_error
        assert tailer.offset == 0  # nothing consumed; retried next poll
        status = tailer.status()
        assert status["store"] == "fb" and status["polls"] == 1

    def test_missing_feed_file_is_not_an_error(self, tmp_path, catalog_dir):
        tailer = FeedTailer("fb", str(tmp_path / "never-created.jsonl"),
                            os.path.join(catalog_dir, "fb"), str(tmp_path))
        assert tailer.poll() == 0
        assert tailer.last_error is None

    def test_invalid_utf8_recorded_not_fatal(self, tmp_path, catalog_dir):
        tailer, feed = self._tailer(tmp_path, catalog_dir)
        with open(feed, "ab") as handle:
            handle.write(b"\xff\xfe not utf-8 \xff\n")
        assert tailer.poll() == 0
        assert "UTF-8" in tailer.last_error
        assert tailer.offset == 0  # nothing consumed

    def test_append_runs_under_the_shared_lock(self, tmp_path, catalog_dir,
                                               cc_service_trace):
        """The daemon's append I/O lock must cover feed-tailer appends too —
        otherwise a tailed store receiving POST /append races the manifest
        swap and silently loses one append."""
        import threading

        class RecordingLock:
            def __init__(self):
                self.entered = 0
                self._lock = threading.Lock()

            def __enter__(self):
                self.entered += 1
                return self._lock.__enter__()

            def __exit__(self, *exc_info):
                return self._lock.__exit__(*exc_info)

        feed = tmp_path / "feed.jsonl"
        feed.touch()
        state = tmp_path / "state"
        state.mkdir()
        lock = RecordingLock()
        tailer = FeedTailer("fb", str(feed), os.path.join(catalog_dir, "fb"),
                            str(state), append_lock=lock)
        with open(feed, "ab") as handle:
            handle.write(_feed_line(cc_service_trace.jobs[0]))
        assert tailer.poll() == 1
        assert lock.entered == 1


class TestDaemonFeedLoop:
    def test_feed_appends_reach_the_store_and_invalidate(self, catalog_dir,
                                                         tmp_path,
                                                         cc_service_trace):
        feed = tmp_path / "fb-feed.jsonl"
        feed.touch()
        with open(os.devnull, "w") as sink:
            with ServiceThread(catalog_dir, batch_window_s=0.02,
                               poll_interval_s=0.05,
                               feeds={"fb": str(feed)},
                               log_stream=sink) as thread:
                # Daemon-driven appends (endpoint + tailer) share one lock.
                assert thread.service.tailers[0].append_lock \
                    is thread.service._append_io_lock
                client = ServiceClient(port=thread.port)
                n_before = client.store_info("fb")["n_jobs"]
                assert client.query("fb", agg=["count"]).cache == "miss"
                assert client.query("fb", agg=["count"]).cache == "hit"
                with open(feed, "ab") as handle:
                    for job in cc_service_trace.jobs[:5]:
                        handle.write(_feed_line(job))
                deadline = time.time() + 15
                while time.time() < deadline:
                    feeds = client.get("/v1/feeds").json()["feeds"]
                    if feeds[0]["appended_jobs"] == 5:
                        break
                    time.sleep(0.05)
                assert feeds[0]["appended_jobs"] == 5
                fresh = client.query("fb", agg=["count"])
                assert fresh.cache == "miss"  # tailer append invalidated fb
                info = client.store_info("fb")
                assert info["n_jobs"] == n_before + 5
                assert info["manifest_sequence"] == 1

    def test_feed_loop_survives_invalid_utf8(self, catalog_dir, tmp_path,
                                             cc_service_trace):
        """A feed line with invalid UTF-8 must not kill the feed task — the
        error is reported via /v1/feeds and tailing resumes once the
        producer fixes the feed."""
        feed = tmp_path / "fb-feed.jsonl"
        feed.write_bytes(b"\xff\xfe broken \xff\n")
        with open(os.devnull, "w") as sink:
            with ServiceThread(catalog_dir, batch_window_s=0.02,
                               poll_interval_s=0.05,
                               feeds={"fb": str(feed)},
                               log_stream=sink) as thread:
                client = ServiceClient(port=thread.port)
                deadline = time.time() + 15
                feeds = []
                while time.time() < deadline:
                    feeds = client.get("/v1/feeds").json()["feeds"]
                    if feeds[0]["last_error"]:
                        break
                    time.sleep(0.05)
                assert "UTF-8" in feeds[0]["last_error"]
                # The producer rewrites the feed with valid lines: the loop
                # is still alive and picks them up.
                with open(feed, "wb") as handle:
                    for job in cc_service_trace.jobs[:2]:
                        handle.write(_feed_line(job))
                deadline = time.time() + 15
                while time.time() < deadline:
                    feeds = client.get("/v1/feeds").json()["feeds"]
                    if feeds[0]["appended_jobs"] == 2:
                        break
                    time.sleep(0.05)
                assert feeds[0]["appended_jobs"] == 2
