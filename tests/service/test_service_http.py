"""End-to-end daemon tests: HTTP endpoints, shared-scan admission, caching,
append invalidation, and drift notifications — through a real socket."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.engine import append_store
from repro.service import ServiceClient, ServiceError, ServiceThread


def _wait_for(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestBasicEndpoints:
    def test_healthz_and_store_listing(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["stores"] == ["cc", "fb"]
        stores = client.stores()["stores"]
        assert [store["catalog_name"] for store in stores] == ["cc", "fb"]
        assert all(store["store_uid"] for store in stores)

    def test_store_info_endpoint(self, client):
        info = client.store_info("fb")
        assert info["catalog_name"] == "fb"
        assert info["manifest_sequence"] == 0
        assert info["n_jobs"] > 0

    def test_unknown_store_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.store_info("nope")
        assert excinfo.value.status == 404
        assert excinfo.value.body["type"] == "unknown_store"

    def test_unknown_route_is_404_and_bad_body_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.get("/v1/bogus")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.post("/v1/stores/fb/query", {"where": ["input_bytes !!! 3"]})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.post("/v1/stores/fb/characterize", {"bogus_field": 1})
        assert excinfo.value.status == 400

    def test_malformed_content_length_is_400(self, service):
        import socket

        def raw_request(headers):
            with socket.create_connection(("127.0.0.1", service.port),
                                          timeout=10) as sock:
                sock.sendall(("GET /healthz HTTP/1.1\r\n%s\r\n\r\n"
                              % headers).encode("latin-1"))
                response = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
            return response.split(b" ", 2)[1]

        assert raw_request("Content-Length: banana") == b"400"
        assert raw_request("Content-Length: -5") == b"400"

    def test_append_with_non_dict_job_record_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.post("/v1/stores/fb/append", {"jobs": [["not", "a", "dict"]]})
        assert excinfo.value.status == 400
        assert "jobs[0]" in excinfo.value.body["error"]

    def test_metrics_endpoint_is_prometheus_text(self, client):
        client.healthz()
        text = client.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_service_uptime_seconds" in text
        assert "repro_cache_entries" in text


class TestCachedEndpoints:
    def test_characterize_hit_is_bit_identical(self, client):
        cold = client.characterize("fb", experiments=["table1", "figure1"])
        assert cold.cache == "miss"
        body = cold.json()
        assert body["manifest_sequence"] == 0
        assert [r["experiment_id"] for r in body["results"]] == \
            ["table1", "figure1"]
        warm = client.characterize("fb", experiments=["figure1", "table1"])
        assert warm.cache == "hit"
        assert warm.data == cold.data  # byte-for-byte, not merely equal JSON

    def test_query_endpoint_caches_and_reports_stats(self, client):
        spec = {"where": ["input_bytes > 1e9"], "agg": ["count", "sum:input_bytes"]}
        cold = client.query("fb", **spec)
        assert cold.cache == "miss"
        body = cold.json()
        assert body["aggregates"]["count"] >= 0
        assert body["stats"]["rows_scanned"] > 0
        warm = client.query("fb", **spec)
        assert warm.cache == "hit"
        assert warm.data == cold.data

    def test_query_group_by_and_rows_shapes(self, client):
        groups = client.query("fb", group_by="workload").json()["groups"]
        assert sum(value["count"] for value in groups.values()) == \
            client.store_info("fb")["n_jobs"]
        rows = client.query("fb", top_k="input_bytes:3").json()["rows"]
        assert len(rows) == 3
        assert rows[0]["input_bytes"] >= rows[1]["input_bytes"]

    def test_replay_endpoint_caches(self, client):
        cold = client.replay("cc", scheduler="fifo", cache="none", nodes=20)
        assert cold.cache == "miss"
        summary = cold.json()["summary"]
        assert summary["jobs"] > 0
        warm = client.replay("cc", scheduler="fifo", cache="none", nodes=20)
        assert warm.cache == "hit"
        assert warm.data == cold.data

    def test_caches_are_per_store(self, client):
        assert client.query("fb", agg=["count"]).cache == "miss"
        assert client.query("cc", agg=["count"]).cache == "miss"
        assert client.query("fb", agg=["count"]).cache == "hit"
        assert client.query("cc", agg=["count"]).cache == "hit"


class TestAppendInvalidation:
    def test_append_endpoint_invalidates_only_that_store(self, client,
                                                         cc_service_trace):
        assert client.characterize("fb", experiments=["figure1"]).cache == "miss"
        assert client.characterize("cc", experiments=["figure1"]).cache == "miss"
        appended = client.append("fb", cc_service_trace.jobs[:50])
        assert appended["appended"] == 50
        assert appended["manifest_sequence"] == 1
        fresh = client.characterize("fb", experiments=["figure1"])
        assert fresh.cache == "miss"  # fb entries dropped by the append
        assert fresh.json()["manifest_sequence"] == 1
        assert client.characterize("cc", experiments=["figure1"]).cache == "hit"

    def test_external_ingest_is_observed_lazily(self, service, client,
                                                cc_service_trace):
        assert client.query("fb", agg=["count"]).cache == "miss"
        assert client.query("fb", agg=["count"]).cache == "hit"
        # Simulate `repro engine ingest` run outside the daemon: the store
        # directory changes on disk with no endpoint involved.
        directory = os.path.join(service.service.catalog.directory, "fb")
        append_store(directory, cc_service_trace.jobs[:25])
        fresh = client.query("fb", agg=["count"])
        assert fresh.cache == "miss"
        assert fresh.json()["manifest_sequence"] == 1
        assert client.metric("repro_appends_observed_total") == 1
        assert client.metric("repro_cache_invalidations_total") >= 1

    def test_drift_subscription_fires_on_threshold(self, client,
                                                   cc_service_trace):
        subscription = client.subscribe_drift("fb", threshold=0.5)["subscription"]
        assert subscription["store"] == "fb"
        assert set(subscription["baseline_features"])  # non-empty vector
        listing = client.get("/v1/stores/fb/drift").json()["subscriptions"]
        assert [sub["subscription_id"] for sub in listing] == \
            [subscription["subscription_id"]]
        # A slug of CC-b jobs shifts the FB-2010 feature vector well past 0.5.
        client.append("fb", cc_service_trace.jobs[:200])
        assert _wait_for(lambda: client.notifications()["notifications"])
        notes = client.notifications(clear=True)["notifications"]
        assert notes[0]["store"] == "fb"
        assert notes[0]["distance"] >= 0.5
        assert notes[0]["subscription_id"] == subscription["subscription_id"]
        assert client.notifications()["notifications"] == []  # drained

    def test_bad_drift_threshold_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.subscribe_drift("fb", threshold=-1)
        assert excinfo.value.status == 400


class TestCatalogCompare:
    def test_get_compares_whole_catalog_and_caches(self, client):
        first = client.catalog_compare()
        assert first.status == 200
        assert first.cache == "miss"
        payload = first.json()
        assert sorted(m["name"] for m in payload["members"]) == ["cc", "fb"]
        assert {v["name"] for v in payload["members_versions"]} == {"cc", "fb"}
        assert len(payload["distances"]) == 1
        assert 0.0 <= payload["distances"][0]["distance"]
        second = client.catalog_compare()
        assert second.cache == "hit"
        assert second.data == first.data  # bit-identical replay

    def test_post_spec_members_pairs_and_suite(self, client):
        response = client.catalog_compare(members=["fb", "cc"],
                                          pairs=["cc,fb"], suite_size=1)
        assert response.status == 200
        payload = response.json()
        (pair,) = payload["pairs"]
        assert (pair["a"], pair["b"]) == ("cc", "fb")
        assert set(pair["deltas"])  # directional per-feature deltas
        assert len(payload["suite"]["selected"]) == 1
        assert set(payload["suite"]["assignment"]) == {"cc", "fb"}
        # Member order is normalized: the permuted spec replays from cache.
        assert client.catalog_compare(members=["cc", "fb"], pairs=["cc,fb"],
                                      suite_size=1).cache == "hit"

    def test_append_to_any_member_invalidates_compare(self, client,
                                                      cc_service_trace):
        before = client.catalog_compare()
        assert client.catalog_compare().cache == "hit"
        client.append("fb", cc_service_trace.jobs[:50])
        fresh = client.catalog_compare()
        assert fresh.cache == "miss"  # member versions are in the fingerprint
        versions = {v["name"]: v["manifest_sequence"]
                    for v in fresh.json()["members_versions"]}
        assert versions["fb"] == 1
        fb_jobs = {m["name"]: m["n_jobs"] for m in fresh.json()["members"]}
        old_jobs = {m["name"]: m["n_jobs"] for m in before.json()["members"]}
        assert fb_jobs["fb"] == old_jobs["fb"] + 50

    def test_bad_specs_and_methods(self, client):
        for body, fragment in [
                ({"members": ["fb"]}, "at least two member stores"),
                ({"members": ["fb", "fb"]}, "repeat a name"),
                ({"pairs": ["fb"]}, "pairs must be"),
                ({"suite_size": 0}, "suite"),
                ({"bogus": 1}, "unknown"),
        ]:
            with pytest.raises(ServiceError) as excinfo:
                client.post("/v1/catalog/compare", body)
            assert excinfo.value.status == 400, body
            assert fragment in excinfo.value.body["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.catalog_compare(members=["fb", "nope"])
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.request("DELETE", "/v1/catalog/compare")
        assert excinfo.value.status == 405

    def test_compare_rides_shared_scan_admission(self, client):
        client.catalog_compare(suite_size=2)
        started = client.metric("repro_scans_started_total")
        # One profiling scan per member, not per (member, request).
        assert started == 2
        # A cached replay starts no further scans.
        assert client.catalog_compare(suite_size=2).cache == "hit"
        assert client.metric("repro_scans_started_total") == started


class TestSharedScanAdmission:
    @pytest.fixture()
    def windowed_service(self, catalog_dir):
        # A generous batch window so concurrent requests reliably land in the
        # same admission batch.
        with open(os.devnull, "w") as sink:
            with ServiceThread(catalog_dir, batch_window_s=0.5,
                               log_stream=sink) as thread:
                yield thread

    def _fire_concurrently(self, port, specs):
        client = ServiceClient(port=port)
        results = [None] * len(specs)

        def run(index, spec):
            results[index] = client.characterize("fb", **spec)

        threads = [threading.Thread(target=run, args=(i, spec))
                   for i, spec in enumerate(specs)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return client, results

    def test_identical_concurrent_requests_share_one_scan(self, windowed_service):
        client, results = self._fire_concurrently(
            windowed_service.port,
            [{"experiments": ["figure1"]}, {"experiments": ["figure1"]}])
        assert client.metric("repro_scans_started_total") == 1
        states = sorted(response.cache for response in results)
        assert states == ["coalesced", "miss"]
        assert results[0].data == results[1].data

    def test_different_experiments_batch_onto_one_scan(self, windowed_service):
        client, results = self._fire_concurrently(
            windowed_service.port,
            [{"experiments": ["figure1"]}, {"experiments": ["figure2"]},
             {"experiments": ["figure1", "figure2"]}])
        # Three distinct fingerprints -> three cache misses, but the admission
        # layer merged them into ONE decode of the store.
        assert client.metric("repro_scans_started_total") == 1
        ids = [[r["experiment_id"] for r in response.json()["results"]]
               for response in results]
        assert ids == [["figure1"], ["figure2"], ["figure1", "figure2"]]

    def test_requests_admitted_before_append_use_old_manifest(
            self, windowed_service, cc_service_trace):
        client = ServiceClient(port=windowed_service.port)
        n_before = client.store_info("fb")["n_jobs"]
        holder = {}

        def characterize():
            holder["response"] = client.characterize(
                "fb", experiments=["figure1"])

        worker = threading.Thread(target=characterize)
        worker.start()
        time.sleep(0.15)  # inside the 0.5 s batch window: scan not started yet
        client.append("fb", cc_service_trace.jobs[:50])
        worker.join()
        body = holder["response"].json()
        # The request was admitted at sequence 0 and completes against it,
        # even though the append committed before the scan ran.
        assert body["manifest_sequence"] == 0
        assert body["n_jobs"] == n_before
        fresh = client.characterize("fb", experiments=["figure1"])
        assert fresh.json()["manifest_sequence"] == 1
        assert fresh.json()["n_jobs"] == n_before + 50


class TestStructuredLogs:
    def test_each_request_emits_one_json_line(self, catalog_dir, tmp_path):
        log_path = tmp_path / "requests.log"
        with open(log_path, "w") as sink:
            with ServiceThread(catalog_dir, batch_window_s=0.02,
                               log_stream=sink) as thread:
                client = ServiceClient(port=thread.port)
                client.healthz()
                client.query("fb", agg=["count"])
        records = [json.loads(line) for line in
                   log_path.read_text().splitlines()]
        requests = [r for r in records if r["event"] == "request"]
        assert len(requests) == 2
        assert requests[0]["path"] == "/healthz"
        assert requests[0]["status"] == 200
        assert requests[1]["cache"] == "miss"
        assert requests[1]["duration_ms"] >= 0


class TestPlannerIntegration:
    def test_query_stats_carry_plan_and_scan_metric(self, client):
        body = client.query("fb", agg=["count"],
                            where=["input_bytes > 1e9"]).json()
        plan = body["stats"]["plan"]
        assert plan is not None
        assert plan["access_path"] in ("scan", "zone-scan")
        assert plan["used_index"] is False
        assert "repro_full_scans_total" in client.metrics_text()

    def test_indexed_store_probes_and_counts_metric(self, catalog_dir, client):
        from repro.engine import ChunkedTraceStore, build_indexes

        build_indexes(
            ChunkedTraceStore(os.path.join(catalog_dir, "fb"))).save()
        body = client.query("fb", agg=["count"],
                            where=["input_bytes > 1e9"]).json()
        plan = body["stats"]["plan"]
        assert plan["used_index"] is True
        assert plan["access_path"] == "index-count"
        assert body["stats"]["chunks_scanned"] == 0
        assert "repro_index_probes_total" in client.metrics_text()

    def test_store_info_exposes_indexes(self, catalog_dir, client):
        from repro.engine import ChunkedTraceStore, build_indexes

        assert client.store_info("fb")["indexes"] is None
        build_indexes(
            ChunkedTraceStore(os.path.join(catalog_dir, "fb"))).save()
        info = client.store_info("fb")
        assert info["indexes"]["fresh"] is True
        assert info["indexes"]["on_disk_bytes"] > 0
