"""Unit tests: request normalization/fingerprints, the result cache, metrics."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, SimulationError
from repro.service import (ResultCache, ServiceMetrics, fingerprint,
                           normalize_characterize, normalize_query,
                           normalize_replay)


class TestNormalizeCharacterize:
    def test_defaults_to_full_experiment_set(self):
        spec = normalize_characterize(None)
        assert spec["seed"] == 0 and spec["series"] is False
        assert "table1" in spec["experiments"]
        assert "figure1" in spec["experiments"]

    def test_equivalent_requests_share_a_fingerprint(self):
        first = normalize_characterize({"experiments": ["figure1", "table1"]})
        second = normalize_characterize({"experiments": ["table1", "figure1"]})
        assert first == second
        assert fingerprint("characterize", first) == \
            fingerprint("characterize", second)

    def test_different_seed_changes_the_fingerprint(self):
        base = normalize_characterize({"experiments": ["table1"]})
        other = normalize_characterize({"experiments": ["table1"], "seed": 7})
        assert fingerprint("characterize", base) != \
            fingerprint("characterize", other)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(AnalysisError, match="unknown characterization"):
            normalize_characterize({"experiments": ["figure99"]})

    def test_unknown_field_rejected(self):
        with pytest.raises(AnalysisError, match="unknown characterize"):
            normalize_characterize({"experimnts": ["table1"]})

    def test_bad_seed_rejected(self):
        with pytest.raises(AnalysisError, match="seed must be an integer"):
            normalize_characterize({"seed": "lots"})

    def test_empty_selection_rejected(self):
        with pytest.raises(AnalysisError, match="selects no experiments"):
            normalize_characterize({"experiments": []})


class TestNormalizeQuery:
    def test_string_scalars_promoted_to_lists(self):
        spec = normalize_query({"where": "input_bytes > 1e9", "agg": "count"})
        assert spec["where"] == ["input_bytes > 1e9"]
        assert spec["agg"] == ["count"]

    def test_bad_clause_rejected_before_caching(self):
        with pytest.raises(AnalysisError, match="cannot parse where clause"):
            normalize_query({"where": ["input_bytes !!! 3"]})

    def test_row_and_aggregate_shapes_conflict(self):
        with pytest.raises(AnalysisError, match="cannot be combined"):
            normalize_query({"top_k": "duration_s:3", "agg": ["count"]})

    def test_unknown_field_rejected(self):
        with pytest.raises(AnalysisError, match="unknown query"):
            normalize_query({"filter": ["x > 1"]})


class TestNormalizeReplay:
    def test_defaults_filled_and_wrapper_accepted(self):
        bare = normalize_replay({"scheduler": "fifo", "nodes": 10})
        wrapped = normalize_replay(
            {"scenario": {"scheduler": "fifo", "nodes": 10}})
        assert bare == wrapped
        assert bare["name"] == "service"

    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(SimulationError):
            normalize_replay({"schedular": "fifo"})


class TestResultCache:
    def test_roundtrip_and_stats(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("uid", 0, "fp") is None
        cache.put("uid", 0, "fp", b"payload")
        assert cache.get("uid", 0, "fp") == b"payload"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] == len(b"payload")

    def test_pre_ingest_stores_never_cached(self):
        cache = ResultCache()
        cache.put(None, 0, "fp", b"payload")
        assert cache.get(None, 0, "fp") is None
        assert cache.stats()["entries"] == 0

    def test_sequence_is_part_of_the_key(self):
        cache = ResultCache()
        cache.put("uid", 0, "fp", b"old")
        assert cache.get("uid", 1, "fp") is None

    def test_invalidation_scoped_to_one_store(self):
        cache = ResultCache()
        cache.put("uid-a", 0, "fp1", b"a1")
        cache.put("uid-a", 0, "fp2", b"a2")
        cache.put("uid-b", 0, "fp1", b"b1")
        dropped = cache.invalidate_store("uid-a", current_sequence=1)
        assert dropped == 2
        assert cache.get("uid-a", 0, "fp1") is None
        assert cache.get("uid-b", 0, "fp1") == b"b1"

    def test_invalidation_keeps_current_sequence_entries(self):
        cache = ResultCache()
        cache.put("uid", 0, "fp", b"old")
        cache.put("uid", 1, "fp", b"new")
        assert cache.invalidate_store("uid", current_sequence=1) == 1
        assert cache.get("uid", 1, "fp") == b"new"

    def test_lru_eviction_by_entry_count(self):
        cache = ResultCache(max_entries=2)
        cache.put("uid", 0, "fp1", b"1")
        cache.put("uid", 0, "fp2", b"2")
        assert cache.get("uid", 0, "fp1") == b"1"  # refresh fp1
        cache.put("uid", 0, "fp3", b"3")
        assert cache.get("uid", 0, "fp2") is None  # fp2 was least recent
        assert cache.get("uid", 0, "fp1") == b"1"
        assert cache.stats()["evicted"] == 1

    def test_byte_budget_eviction(self):
        cache = ResultCache(max_entries=100, max_bytes=10)
        cache.put("uid", 0, "fp1", b"12345678")
        cache.put("uid", 0, "fp2", b"87654321")
        assert cache.get("uid", 0, "fp1") is None
        assert cache.get("uid", 0, "fp2") == b"87654321"

    def test_oversize_payload_not_cached(self):
        cache = ResultCache(max_bytes=4)
        cache.put("uid", 0, "fp", b"too large")
        assert cache.stats()["entries"] == 0


class TestServiceMetrics:
    def test_counters_accumulate_per_label_set(self):
        metrics = ServiceMetrics()
        metrics.increment("repro_requests_total", endpoint="query", status="200")
        metrics.increment("repro_requests_total", endpoint="query", status="200")
        metrics.increment("repro_requests_total", endpoint="query", status="400")
        assert metrics.counter("repro_requests_total",
                               endpoint="query", status="200") == 2
        assert metrics.counter_total("repro_requests_total") == 3

    def test_render_is_prometheus_text(self):
        metrics = ServiceMetrics()
        metrics.increment("repro_scans_started_total", store="fb")
        metrics.observe_latency("POST /v1/stores/{name}/query", 0.25)
        text = metrics.render(extra_gauges={"repro_cache_entries": 3})
        assert "# TYPE repro_scans_started_total counter" in text
        assert 'repro_scans_started_total{store="fb"} 1' in text
        assert "repro_cache_entries 3" in text
        assert 'quantile="0.99"' in text
        assert "repro_request_latency_seconds_count" in text

    def test_latency_percentiles_come_from_the_sketch(self):
        metrics = ServiceMetrics()
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            metrics.observe_latency("GET /healthz", value)
        p50 = metrics.latency_percentile("GET /healthz", 50)
        p99 = metrics.latency_percentile("GET /healthz", 99)
        assert 0.05 <= p50 <= 0.5
        assert p99 >= p50
