"""The shared percentile convention: exact paths agree bit-for-bit, the
sketch path agrees to histogram-bin resolution.

See the convention definition in :mod:`repro.core.stats` (lower nearest-rank)
and its sketch-side documentation on
:meth:`repro.engine.aggregates.HistogramSketch.percentile`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import empirical_cdf, percentile, sketch_cdf
from repro.core.stats import SKETCH_RELATIVE_RESOLUTION
from repro.engine import HistogramSketch

QS = (0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.5, 100.0)


class TestExactPathsAgree:
    """stats.percentile and EmpiricalCDF.quantile are the same rank rule."""

    @pytest.mark.parametrize("q", QS)
    def test_percentile_equals_cdf_quantile(self, q):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(10.0, 4.0, size=997)
        cdf = empirical_cdf(samples)
        assert percentile(samples, q) == cdf.quantile(q / 100.0)

    def test_nearest_rank_is_an_observed_value(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in QS:
            assert percentile(samples, q) in samples

    def test_lower_nearest_rank_on_even_sample(self):
        # ceil(0.5 * 4) = 2 -> the 2nd smallest, not the midpoint average.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0

    def test_extremes(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 100.0


class TestSketchPathAgrees:
    """HistogramSketch.percentile matches the exact rule at bin resolution."""

    @pytest.mark.parametrize("q", (1.0, 10.0, 50.0, 90.0, 99.0))
    def test_tolerance_bounded_equivalence(self, q):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(12.0, 5.0, size=20_000)
        sketch = HistogramSketch()
        sketch.update(samples)
        exact = percentile(samples, q)
        approx = sketch.percentile(q)
        # One bin of drift on either side of the chosen rank's bin center.
        assert approx == pytest.approx(exact, rel=2 * SKETCH_RELATIVE_RESOLUTION)

    def test_sketch_cdf_wrapper_matches_sketch(self):
        samples = np.geomspace(1.0, 1e9, 5000)
        cdf = sketch_cdf(samples)
        sketch = HistogramSketch()
        sketch.update(np.asarray(samples))
        for q in (0.1, 0.5, 0.9):
            assert cdf.quantile(q) == sketch.percentile(100.0 * q)
        assert cdf.median() == cdf.quantile(0.5)
        assert cdf.n == 5000

    def test_zero_samples_read_out_as_zero(self):
        samples = np.array([0.0] * 50 + [10.0] * 50)
        sketch = HistogramSketch()
        sketch.update(samples)
        assert sketch.percentile(25.0) == 0.0
        assert percentile(samples, 25.0) == 0.0

    def test_clamped_to_observed_range(self):
        samples = np.array([5.0, 5.1, 5.2])
        sketch = HistogramSketch()
        sketch.update(samples)
        assert sketch.percentile(0.0) >= 5.0
        assert sketch.percentile(100.0) <= 5.2

    def test_fraction_at_or_below_tracks_exact(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(8.0, 3.0, size=10_000)
        exact = empirical_cdf(samples)
        approx = sketch_cdf(samples)
        for value in np.geomspace(samples.min(), samples.max(), 7):
            assert approx.fraction_at_or_below(value) == pytest.approx(
                exact.fraction_at_or_below(value), abs=0.02)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(min_value=0.001, max_value=1e12, allow_nan=False),
                       min_size=1, max_size=300),
       q=st.floats(min_value=0.0, max_value=100.0))
def test_property_exact_paths_identical(values, q):
    """For any sample and any q, the two exact read-outs are the same number."""
    assert percentile(values, q) == empirical_cdf(values).quantile(q / 100.0)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=1e10, allow_nan=False),
                       min_size=20, max_size=500),
       q=st.floats(min_value=1.0, max_value=99.0))
def test_property_sketch_within_bin_resolution(values, q):
    """The sketch read-out never drifts more than ~2 bins from the exact value."""
    sketch = HistogramSketch()
    sketch.update(np.asarray(values))
    exact = percentile(values, q)
    approx = sketch.percentile(q)
    assert approx is not None
    if exact > 0:
        assert abs(approx - exact) / exact <= 2 * SKETCH_RELATIVE_RESOLUTION + 1e-9
    else:
        assert approx == 0.0
