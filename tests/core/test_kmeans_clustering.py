"""Tests for k-means, automatic k selection, and the Table-2 clustering pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    assign_labels,
    cluster_jobs,
    kmeans,
    label_centroid,
    log_standardize,
    mini_batch_kmeans,
    select_k,
)
from repro.errors import ClusteringError
from repro.traces import Trace, load_workload
from repro.units import GB, HOUR, MB, MINUTE, TB


def well_separated_points(seed=0, per_cluster=50):
    """Three obvious clusters in 2-D."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.vstack([
        center + rng.normal(0, 0.3, size=(per_cluster, 2)) for center in centers
    ])
    return points


class TestKMeans:
    def test_recovers_separated_clusters(self):
        points = well_separated_points()
        result = kmeans(points, 3, seed=0)
        assert result.k == 3
        sizes = sorted(result.cluster_sizes().tolist())
        assert sizes == [50, 50, 50]
        assert result.converged

    def test_inertia_decreases_with_k(self):
        points = well_separated_points()
        inertia_1 = kmeans(points, 1, seed=0).inertia
        inertia_3 = kmeans(points, 3, seed=0).inertia
        assert inertia_3 < inertia_1

    def test_k_equals_n_gives_zero_inertia(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert kmeans(points, 3, seed=0).inertia == pytest.approx(0.0, abs=1e-12)

    def test_invalid_inputs(self):
        points = well_separated_points()
        with pytest.raises(ClusteringError):
            kmeans(points, 0)
        with pytest.raises(ClusteringError):
            kmeans(points, points.shape[0] + 1)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((0, 2)), 1)

    def test_deterministic_given_seed(self):
        points = well_separated_points()
        a = kmeans(points, 3, seed=5)
        b = kmeans(points, 3, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_deterministic_given_explicit_rng(self):
        points = well_separated_points()
        a = kmeans(points, 3, rng=np.random.default_rng(42))
        b = kmeans(points, 3, rng=np.random.default_rng(42))
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centroids, b.centroids)

    def test_assign_labels_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 4))
        centroids = rng.normal(size=(5, 4))
        labels, assigned_sq = assign_labels(points, centroids)
        brute = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        assert np.array_equal(labels, np.argmin(brute, axis=1))
        assert np.allclose(assigned_sq, brute.min(axis=1) ** 2)


class TestMiniBatchKMeans:
    def test_recovers_separated_clusters(self):
        points = well_separated_points(per_cluster=200)
        rng = np.random.default_rng(1)
        shuffled = points[rng.permutation(points.shape[0])]
        batches = [shuffled[start:start + 100] for start in range(0, 600, 100)]
        trained = mini_batch_kmeans(batches, 3, seed=0)
        assert trained.k == 3
        assert trained.n_points == 600
        assert trained.n_batches == 6
        labels, _ = assign_labels(points, trained.centroids)
        sizes = sorted(np.bincount(labels, minlength=3).tolist())
        assert sizes == [200, 200, 200]

    def test_deterministic_given_rng(self):
        points = well_separated_points()
        batches = [points[:75], points[75:]]
        a = mini_batch_kmeans(batches, 3, rng=np.random.default_rng(9))
        b = mini_batch_kmeans(batches, 3, rng=np.random.default_rng(9))
        assert np.array_equal(a.centroids, b.centroids)

    def test_empty_stream_rejected(self):
        with pytest.raises(ClusteringError):
            mini_batch_kmeans([], 2)

    def test_small_first_batch_rejected_without_init(self):
        points = well_separated_points()
        with pytest.raises(ClusteringError):
            mini_batch_kmeans([points[:2]], 3)
        # ...but fine with an explicit init batch.
        trained = mini_batch_kmeans([points[:2]], 3, init_batch=points)
        assert trained.k == 3


class TestSelectK:
    def test_finds_three_clusters(self):
        points = well_separated_points()
        # With a 20% diminishing-returns threshold the sweep stops right after
        # the three genuine clusters are separated.
        selection = select_k(points, max_k=8, seed=0, improvement_threshold=0.2)
        assert selection.chosen_k == 3
        assert selection.inertias[0][0] == 1

    def test_single_cluster_data(self):
        rng = np.random.default_rng(0)
        points = rng.normal(0, 1.0, size=(100, 3))
        selection = select_k(points, max_k=6, seed=0, improvement_threshold=0.3)
        assert selection.chosen_k <= 3

    def test_invalid_inputs(self):
        with pytest.raises(ClusteringError):
            select_k(np.zeros((0, 2)))
        with pytest.raises(ClusteringError):
            select_k(well_separated_points(), max_k=1, min_k=2)


class TestLogStandardize:
    def test_output_standardized(self):
        rng = np.random.default_rng(0)
        features = np.exp(rng.normal(10, 3, size=(500, 4)))
        scaled = log_standardize(features)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_stays_finite(self):
        features = np.column_stack([np.ones(10), np.arange(1, 11)])
        scaled = log_standardize(features)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ClusteringError):
            log_standardize(np.ones(5))


class TestLabelCentroid:
    def test_small_jobs(self):
        assert label_centroid((1 * MB, 0, 1 * MB, 30, 20, 0)) == "Small jobs"

    def test_map_only_transform_and_summary(self):
        assert label_centroid((1 * TB, 0, 500 * GB, 30 * MINUTE, 1e5, 0)).startswith("Map only transform")
        assert label_centroid((3 * TB, 0, 200, 5 * MINUTE, 1e5, 0)).startswith("Map only summary")

    def test_aggregate_expand_transform(self):
        assert label_centroid((1 * TB, 100 * GB, 1 * GB, 30 * MINUTE, 1e5, 1e4)).startswith("Aggregate")
        assert label_centroid((1 * GB, 100 * GB, 500 * GB, 30 * MINUTE, 1e5, 1e4)).startswith("Expand")
        assert label_centroid((1 * TB, 1 * TB, 1 * TB, 30 * MINUTE, 1e5, 1e4)).startswith("Transform")

    def test_long_jobs_get_duration_qualifier(self):
        label = label_centroid((1 * TB, 1 * TB, 1 * TB, 20 * HOUR, 1e6, 1e6))
        assert "long" in label


class TestClusterJobs:
    def test_cluster_cc_e_small_jobs_dominate(self, cc_e_trace):
        """Table 2 shape: small jobs form the overwhelming majority."""
        clustering = cluster_jobs(cc_e_trace[:6000], max_k=8, seed=0)
        assert clustering.small_job_fraction > 0.85
        assert clustering.clusters[0].label == "Small jobs"
        assert clustering.k >= 2
        assert sum(cluster.n_jobs for cluster in clustering.clusters) == len(cc_e_trace[:6000])

    def test_fixed_k(self, cc_b_small_trace):
        clustering = cluster_jobs(cc_b_small_trace, k=4, seed=0)
        assert clustering.k <= 4
        fractions = [cluster.fraction for cluster in clustering.clusters]
        assert sum(fractions) == pytest.approx(1.0)

    def test_cluster_rows_render(self, cc_b_small_trace):
        clustering = cluster_jobs(cc_b_small_trace, k=3, seed=0)
        for cluster in clustering.clusters:
            row = cluster.as_row()
            assert len(row) == 8
            assert all(isinstance(cell, str) for cell in row)

    def test_empty_trace_rejected(self):
        with pytest.raises(ClusteringError):
            cluster_jobs(Trace([], name="e"))

    def test_recovers_spec_structure(self):
        """Clusters found in a generated workload resemble the generating classes."""
        trace = load_workload("CC-b", seed=11, scale=0.2)
        clustering = cluster_jobs(trace, max_k=8, seed=0)
        # The generating spec has 5 classes; the elbow rule should find a
        # moderate number of clusters, not 1 and not the maximum.
        assert 2 <= clustering.k <= 8
        assert clustering.small_job_fraction > 0.8

    def test_minibatch_method(self, cc_b_small_trace):
        """Streaming clustering: bounded memory, sketch-backed centroids."""
        clustering = cluster_jobs(cc_b_small_trace, k=4, seed=0, method="minibatch")
        assert clustering.k <= 4
        assert sum(cluster.n_jobs for cluster in clustering.clusters) == len(cc_b_small_trace)
        assert sum(cluster.fraction for cluster in clustering.clusters) == pytest.approx(1.0)
        # Small jobs still dominate under the approximate path.
        assert clustering.small_job_fraction > 0.5

    def test_minibatch_requires_explicit_k(self, cc_b_small_trace):
        with pytest.raises(ClusteringError):
            cluster_jobs(cc_b_small_trace, method="minibatch")

    def test_unknown_method_rejected(self, cc_b_small_trace):
        with pytest.raises(ClusteringError):
            cluster_jobs(cc_b_small_trace, k=2, method="approximate")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_kmeans_labels_within_range(seed):
    """Labels are always valid cluster indices and every cluster is non-empty."""
    points = well_separated_points(seed=seed, per_cluster=20)
    result = kmeans(points, 3, seed=seed)
    assert result.labels.min() >= 0
    assert result.labels.max() < 3
    assert all(size > 0 for size in result.cluster_sizes())
