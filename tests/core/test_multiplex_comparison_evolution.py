"""Tests for workload consolidation, cross-workload comparison, and evolution analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    cdf_distance,
    compare_evolution,
    consolidate,
    consolidation_study,
    select_workload_suite,
    workload_distance,
    workload_features,
)
from repro.core.comparison import FEATURE_NAMES
from repro.errors import AnalysisError
from repro.traces import Job, Trace
from repro.units import GB, HOUR, MB, TB


def burst_trace(name, n_hours, jobs_in_burst_hour, base_jobs_per_hour=2, seed=0,
                task_seconds=600.0):
    """A trace with one busy hour and a low baseline, for burstiness checks."""
    rng = np.random.default_rng(seed)
    jobs = []
    counter = 0
    for hour in range(n_hours):
        count = jobs_in_burst_hour if hour == n_hours // 2 else base_jobs_per_hour
        for _ in range(count):
            submit = hour * HOUR + float(rng.uniform(0, HOUR))
            jobs.append(Job(job_id="%s-%d" % (name, counter), submit_time_s=submit,
                            duration_s=60.0, input_bytes=500 * MB, shuffle_bytes=50 * MB,
                            output_bytes=50 * MB, map_task_seconds=task_seconds,
                            reduce_task_seconds=task_seconds / 3, name="select q%d" % counter))
            counter += 1
    return Trace(jobs, name=name, machines=50)


class TestConsolidate:
    def test_merged_trace_preserves_all_jobs_with_unique_ids(self):
        a = burst_trace("wl-a", 24, 30, seed=1)
        b = burst_trace("wl-b", 24, 30, seed=2)
        merged = consolidate([a, b], name="both")
        assert len(merged) == len(a) + len(b)
        assert len({job.job_id for job in merged}) == len(merged)
        assert {job.workload for job in merged} == {"wl-a", "wl-b"}

    def test_align_starts_shifts_to_zero(self):
        a = burst_trace("wl-a", 12, 20, seed=1).shifted(5 * HOUR)
        b = burst_trace("wl-b", 12, 20, seed=2).shifted(90 * HOUR)
        merged = consolidate([a, b], align_starts=True)
        assert merged.jobs[0].submit_time_s == pytest.approx(0.0, abs=HOUR)
        assert merged.duration_s() < 20 * HOUR

    def test_machines_accumulate(self):
        a = burst_trace("wl-a", 6, 10, seed=1)
        b = burst_trace("wl-b", 6, 10, seed=2)
        assert consolidate([a, b]).machines == 100

    def test_needs_two_nonempty_traces(self):
        a = burst_trace("wl-a", 6, 10)
        with pytest.raises(AnalysisError):
            consolidate([a])
        with pytest.raises(AnalysisError):
            consolidate([a, Trace([], name="empty")])


class TestConsolidationStudy:
    def test_multiplexing_desynchronized_bursts_reduces_burstiness(self):
        # Same median load, bursts in different hours: merging smooths the peak.
        sources = [burst_trace("wl-%d" % index, 48, 60, base_jobs_per_hour=3, seed=index)
                   for index in range(4)]
        # Shift each source's burst to a different part of the week.
        shifted = [trace.shifted(0.0) for trace in sources]
        study = consolidation_study(shifted)
        assert study.peak_to_median_reduction > 1.0
        assert study.consolidated_burstiness.peak_to_median < max(
            result.peak_to_median for result in study.source_burstiness.values())

    def test_remains_bursty_flag(self):
        sources = [burst_trace("wl-%d" % index, 48, 200, base_jobs_per_hour=1, seed=index)
                   for index in range(2)]
        study = consolidation_study(sources, bursty_threshold=2.0)
        assert study.remains_bursty is True

    def test_needs_two_sources(self):
        with pytest.raises(AnalysisError):
            consolidation_study([burst_trace("only", 12, 10)])


class TestWorkloadFeatures:
    def test_feature_vector_has_expected_shape_and_ranges(self, tiny_trace):
        features = workload_features(tiny_trace)
        vector = features.vector()
        assert vector.shape == (len(FEATURE_NAMES),)
        assert 0.0 <= features.values["small_job_fraction"] <= 1.0
        assert 0.0 <= features.values["map_only_fraction"] <= 1.0
        assert 0.0 <= features.values["framework_share"] <= 1.0

    def test_unnamed_trace_has_zero_framework_share(self):
        jobs = [Job(job_id="j%d" % index, submit_time_s=index * 600.0, duration_s=30.0,
                    input_bytes=1 * MB, shuffle_bytes=0.0, output_bytes=1 * MB,
                    map_task_seconds=20.0, reduce_task_seconds=0.0)
                for index in range(50)]
        features = workload_features(Trace(jobs, name="unnamed"))
        assert features.values["framework_share"] == 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            workload_features(Trace([], name="empty"))


class TestDistances:
    def test_cdf_distance_identical_samples_is_zero(self):
        values = [1.0, 10.0, 100.0, 1000.0]
        assert cdf_distance(values, values) == pytest.approx(0.0)

    def test_cdf_distance_disjoint_samples_is_one(self):
        assert cdf_distance([1.0, 2.0, 3.0], [100.0, 200.0]) == pytest.approx(1.0)

    def test_cdf_distance_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cdf_distance([], [1.0])

    @given(a=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=40),
           b=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_cdf_distance_bounded_and_symmetric(self, a, b):
        forward = cdf_distance(a, b)
        backward = cdf_distance(b, a)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(backward)

    def test_workload_distance_zero_to_itself(self, tiny_trace):
        features = workload_features(tiny_trace)
        assert workload_distance(features, features) == pytest.approx(0.0)

    def test_workload_distance_positive_for_different_workloads(self, cc_b_small_trace,
                                                                 fb_2009_small_trace):
        a = workload_features(cc_b_small_trace)
        b = workload_features(fb_2009_small_trace)
        assert workload_distance(a, b, [a, b]) > 0.0


class TestSuiteSelection:
    def _population(self):
        traces = [
            burst_trace("bursty-small", 48, 150, base_jobs_per_hour=1, seed=1),
            burst_trace("steady-small", 48, 4, base_jobs_per_hour=3, seed=2),
            burst_trace("bursty-small-2", 48, 140, base_jobs_per_hour=1, seed=3),
        ]
        # A large-job workload that should stand out from the three above.
        jobs = [Job(job_id="big%d" % index, submit_time_s=index * HOUR, duration_s=4 * HOUR,
                    input_bytes=5 * TB, shuffle_bytes=1 * TB, output_bytes=1 * TB,
                    map_task_seconds=3e6, reduce_task_seconds=1e6)
                for index in range(48)]
        traces.append(Trace(jobs, name="huge-batch", machines=500))
        return [workload_features(trace) for trace in traces]

    def test_selection_covers_the_outlier(self):
        features = self._population()
        suite = select_workload_suite(features, suite_size=2)
        assert len(suite.selected) == 2
        assert "huge-batch" in suite.selected
        assert set(suite.assignment.keys()) == {f.workload for f in features}
        assert all(representative in suite.selected for representative in suite.assignment.values())

    def test_coverage_radius_shrinks_with_suite_size(self):
        features = self._population()
        radii = [select_workload_suite(features, size).coverage_radius
                 for size in (1, 2, 3, 4)]
        assert all(earlier >= later - 1e-9 for earlier, later in zip(radii, radii[1:]))
        assert radii[-1] == pytest.approx(0.0, abs=1e-9)

    def test_explicit_first_representative(self):
        features = self._population()
        suite = select_workload_suite(features, 2, first="steady-small")
        assert suite.selected[0] == "steady-small"

    def test_invalid_arguments_rejected(self):
        features = self._population()
        with pytest.raises(AnalysisError):
            select_workload_suite(features, 0)
        with pytest.raises(AnalysisError):
            select_workload_suite(features, len(features) + 1)
        with pytest.raises(AnalysisError):
            select_workload_suite(features, 2, first="unknown")
        with pytest.raises(AnalysisError):
            select_workload_suite([], 1)


class TestEvolution:
    def _snapshot(self, name, input_scale, output_scale, burst, seed):
        rng = np.random.default_rng(seed)
        jobs = []
        for hour in range(72):
            count = burst if hour % 24 == 12 else 3
            for index in range(count):
                jobs.append(Job(
                    job_id="%s-%d-%d" % (name, hour, index),
                    submit_time_s=hour * HOUR + float(rng.uniform(0, HOUR)),
                    duration_s=45.0,
                    input_bytes=input_scale * float(rng.lognormal(0, 0.3)),
                    shuffle_bytes=input_scale / 10 * float(rng.lognormal(0, 0.3)),
                    output_bytes=output_scale * float(rng.lognormal(0, 0.3)),
                    map_task_seconds=120.0, reduce_task_seconds=40.0))
        return Trace(jobs, name=name, machines=100)

    def test_growth_and_shrinkage_detected(self):
        before = self._snapshot("Y1", input_scale=10 * MB, output_scale=1 * GB, burst=60, seed=1)
        after = self._snapshot("Y2", input_scale=10 * GB, output_scale=10 * MB, burst=12, seed=2)
        report = compare_evolution(before, after)
        assert report.shift("input_bytes").grew
        assert report.shift("input_bytes").orders_of_magnitude == pytest.approx(3.0, abs=0.5)
        assert report.shift("output_bytes").shrank
        assert report.burstiness_reduction > 1.0
        assert report.job_count_growth == pytest.approx(len(after) / len(before))
        assert any("grew" in line for line in report.summary_lines())

    def test_facebook_shape_on_paper_workloads(self, fb_2009_small_trace):
        from repro.traces import load_workload
        fb_2010 = load_workload("FB-2010", seed=7, scale=0.002)
        report = compare_evolution(fb_2009_small_trace, fb_2010)
        # §4.1: input and shuffle medians grow, output median shrinks.
        assert report.shift("input_bytes").grew
        assert report.shift("shuffle_bytes").grew
        assert report.shift("output_bytes").shrank

    def test_unknown_dimension_rejected(self):
        before = self._snapshot("Y1", 10 * MB, 1 * GB, 10, 1)
        report = compare_evolution(before, before)
        with pytest.raises(AnalysisError):
            report.shift("not_a_dimension")

    def test_empty_trace_rejected(self):
        before = self._snapshot("Y1", 10 * MB, 1 * GB, 10, 1)
        with pytest.raises(AnalysisError):
            compare_evolution(before, Trace([], name="empty"))
