"""Tests for the shared statistical primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    coefficient_of_variation,
    empirical_cdf,
    geometric_mean,
    hourly_series,
    log_bins,
    pearson_correlation,
    percentile,
    percentile_ratio_curve,
)
from repro.errors import AnalysisError


class TestEmpiricalCDF:
    def test_fractions_reach_one(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert cdf.values.tolist() == [1.0, 2.0, 3.0]
        assert cdf.fractions[-1] == pytest.approx(1.0)

    def test_quantile_and_median(self):
        cdf = empirical_cdf(range(1, 101))
        assert cdf.median() == pytest.approx(50.0, abs=1.0)
        assert cdf.quantile(0.9) == pytest.approx(90.0, abs=1.0)

    def test_fraction_at_or_below(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_or_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(0.5) == 0.0
        assert cdf.fraction_at_or_below(10.0) == 1.0

    def test_nan_dropped(self):
        assert empirical_cdf([1.0, float("nan"), 3.0]).n == 2

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_cdf([])
        with pytest.raises(AnalysisError):
            empirical_cdf([float("nan")])

    def test_quantile_bounds(self):
        cdf = empirical_cdf([1.0, 2.0])
        with pytest.raises(AnalysisError):
            cdf.quantile(1.5)


class TestLogBinsAndPercentiles:
    def test_log_bins_cover_range(self):
        bins = log_bins(1.0, 1e6, bins_per_decade=2)
        assert bins[0] == pytest.approx(1.0)
        assert bins[-1] == pytest.approx(1e6)
        assert np.all(np.diff(np.log10(bins)) > 0)

    def test_log_bins_invalid(self):
        with pytest.raises(AnalysisError):
            log_bins(0.0, 10.0)
        with pytest.raises(AnalysisError):
            log_bins(100.0, 10.0)

    def test_percentile(self):
        assert percentile(range(101), 90) == pytest.approx(90.0)
        with pytest.raises(AnalysisError):
            percentile([], 50)
        with pytest.raises(AnalysisError):
            percentile([1.0], 150)

    def test_percentile_ratio_curve_constant_signal(self):
        curve = percentile_ratio_curve([5.0] * 100)
        ratios = [ratio for ratio, _ in curve]
        assert all(ratio == pytest.approx(1.0) for ratio in ratios)

    def test_percentile_ratio_curve_bursty_signal(self):
        values = [1.0] * 99 + [100.0]
        curve = dict((n, ratio) for ratio, n in percentile_ratio_curve(values))
        assert curve[100.0] == pytest.approx(100.0)
        assert curve[50.0] == pytest.approx(1.0)

    def test_percentile_ratio_curve_zero_median_rejected(self):
        with pytest.raises(AnalysisError):
            percentile_ratio_curve([0.0] * 10)


class TestHourlySeries:
    def test_counts_per_hour(self):
        series = hourly_series([0.0, 10.0, 3600.0, 7300.0], horizon_s=3 * 3600.0)
        assert series.tolist() == [2.0, 1.0, 1.0]

    def test_weights_summed(self):
        series = hourly_series([0.0, 100.0], weights=[5.0, 7.0], horizon_s=3600.0)
        assert series.tolist() == [12.0]

    def test_empty_input_gives_zeros(self):
        series = hourly_series([], horizon_s=2 * 3600.0)
        assert series.tolist() == [0.0, 0.0]

    def test_negative_times_rejected(self):
        with pytest.raises(AnalysisError):
            hourly_series([-1.0])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            hourly_series([1.0, 2.0], weights=[1.0])


class TestCorrelationAndMeans:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_anti_correlation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == pytest.approx(0.0)
        assert coefficient_of_variation([0.0, 0.0]) == 0.0
        with pytest.raises(AnalysisError):
            coefficient_of_variation([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 10.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(AnalysisError):
            geometric_mean([])


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
                       min_size=1, max_size=200))
def test_property_cdf_is_monotone_and_normalized(values):
    """CDF fractions are monotone non-decreasing and end at exactly 1."""
    cdf = empirical_cdf(values)
    assert np.all(np.diff(cdf.fractions) >= 0)
    assert np.all(np.diff(cdf.values) >= 0)
    assert cdf.fractions[-1] == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
                       min_size=2, max_size=200))
def test_property_quantiles_are_order_preserving(values):
    """Higher quantile fractions never map to smaller values."""
    cdf = empirical_cdf(values)
    assert cdf.quantile(0.25) <= cdf.quantile(0.5) <= cdf.quantile(0.9)
