"""Tests for the temporal analyses (Figures 7 and 9)."""

import math

import numpy as np
import pytest

from repro.core import (
    dimension_correlations,
    diurnal_strength,
    hourly_dimensions,
    weekly_view,
)
from repro.errors import AnalysisError
from repro.traces import Job, Trace
from repro.units import DAY, HOUR, WEEK


def periodic_trace(days=14, jobs_per_hour_peak=10):
    """A synthetic trace with a clean daily submission pattern."""
    jobs = []
    job_id = 0
    for hour in range(days * 24):
        count = max(1, int(jobs_per_hour_peak * (0.5 + 0.5 * math.sin(2 * math.pi * hour / 24))))
        for _ in range(count):
            jobs.append(Job(job_id="p%d" % job_id, submit_time_s=hour * 3600.0 + 10.0,
                            duration_s=30.0, input_bytes=1e6, shuffle_bytes=0.0,
                            output_bytes=1e5, map_task_seconds=20.0, reduce_task_seconds=0.0))
            job_id += 1
    return Trace(jobs, name="periodic")


class TestHourlyDimensions:
    def test_series_lengths_and_totals(self, tiny_trace):
        dims = hourly_dimensions(tiny_trace)
        assert dims.jobs_per_hour.sum() == len(tiny_trace)
        assert dims.bytes_per_hour.sum() == pytest.approx(tiny_trace.bytes_moved())
        assert dims.task_seconds_per_hour.sum() == pytest.approx(
            tiny_trace.total_task_seconds())
        assert dims.n_hours == len(dims.bytes_per_hour)

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            hourly_dimensions(Trace([], name="e"))


class TestWeeklyView:
    def test_first_week_capped_at_168_hours(self):
        dims = hourly_dimensions(periodic_trace(days=14))
        week = weekly_view(dims, 0)
        assert week.n_hours == WEEK // HOUR
        assert week.start_hour == 0

    def test_second_week(self):
        dims = hourly_dimensions(periodic_trace(days=14))
        week = weekly_view(dims, 1)
        assert week.start_hour == 168

    def test_short_trace_returns_partial_week(self, tiny_trace):
        week = weekly_view(hourly_dimensions(tiny_trace), 0)
        assert 0 < week.n_hours <= 168

    def test_out_of_range_week_rejected(self, tiny_trace):
        with pytest.raises(AnalysisError):
            weekly_view(hourly_dimensions(tiny_trace), 5)
        with pytest.raises(AnalysisError):
            weekly_view(hourly_dimensions(tiny_trace), -1)


class TestDiurnalStrength:
    def test_periodic_signal_detected(self):
        dims = hourly_dimensions(periodic_trace(days=14))
        analysis = diurnal_strength(dims.jobs_per_hour)
        assert analysis.has_diurnal_pattern
        assert analysis.diurnal_strength > 0.5
        assert analysis.dominant_period_hours == pytest.approx(24.0, rel=0.15)

    def test_flat_signal_not_diurnal(self):
        analysis = diurnal_strength(np.ones(24 * 10))
        assert not analysis.has_diurnal_pattern

    def test_white_noise_not_diurnal(self):
        rng = np.random.default_rng(0)
        analysis = diurnal_strength(rng.uniform(0, 1, 24 * 14))
        assert analysis.diurnal_strength < 0.3

    def test_short_series_reports_zero(self):
        analysis = diurnal_strength(np.ones(10))
        assert analysis.diurnal_strength == 0.0
        assert not analysis.has_diurnal_pattern


class TestCorrelations:
    def test_correlation_result_fields(self, cc_e_trace):
        result = dimension_correlations(hourly_dimensions(cc_e_trace))
        values = result.as_dict()
        assert set(values) == {"jobs-bytes", "jobs-task-seconds", "bytes-task-seconds"}
        assert all(-1.0 <= value <= 1.0 for value in values.values())

    def test_bytes_compute_strongest_for_generated_workload(self, cc_e_trace):
        """Figure 9 shape: data size vs compute time is the strongest pair."""
        result = dimension_correlations(hourly_dimensions(cc_e_trace))
        assert result.strongest_pair() == "bytes-task-seconds"
        assert result.bytes_task_seconds > result.jobs_bytes
        assert result.bytes_task_seconds > result.jobs_task_seconds

    def test_too_few_hours_rejected(self):
        job = Job(job_id="x", submit_time_s=0, duration_s=1, input_bytes=1,
                  shuffle_bytes=0, output_bytes=1, map_task_seconds=1, reduce_task_seconds=0)
        with pytest.raises(AnalysisError):
            dimension_correlations(hourly_dimensions(Trace([job], name="one")))
