"""The cross-store equivalence battery for federated multi-store analytics.

Pins the federation contracts of the seven-cluster comparison:

* a federated N-store scan produces exactly the same per-member statistics
  as scanning each store alone, across on-disk formats v1/v2/v3 and serial
  vs parallel execution;
* store-backed evolution comparison is bit-for-bit the materialized path;
* the comparison metrics (`cdf_distance`, `workload_distance`) and the
  greedy suite selection satisfy their metric/invariance properties
  (hypothesis property tests);
* catalog edge cases: empty catalogs, members with mismatched columns,
  stale index sidecars, appends between scans (old-handle semantics and
  per-member checkpoint resume).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    cdf_distance,
    compare_catalog,
    compare_evolution,
    features_from_profile,
    profile_source,
    select_workload_suite,
    workload_distance,
)
from repro.core.comparison import FEATURE_NAMES, WorkloadFeatures
from repro.core.federation import _member_profile_consumers
from repro.core.profile import profile_consumers, profile_from_scan
from repro.engine import (
    CATALOG_METADATA_NAME,
    ChunkedTraceStore,
    FederatedSource,
    ParallelExecutor,
    Query,
    StoreCatalog,
    append_store,
    build_indexes,
)
from repro.errors import AnalysisError, TraceFormatError
from repro.traces import Job, Trace
from repro.units import GB, HOUR, MB


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------
def varied_jobs(name, n_jobs, seed, query_share=0.5):
    """Jobs with spread-out sizes, names, and a bursty submission pattern."""
    rng = np.random.default_rng(seed)
    jobs = []
    for index in range(n_jobs):
        hour = index % 18
        burst = 4.0 if hour == 9 else 1.0
        submit = hour * HOUR + float(rng.uniform(0, HOUR / burst))
        has_reduce = rng.random() < 0.4
        word = "select" if rng.random() < query_share else "oozie"
        jobs.append(Job(
            job_id="%s-%d" % (name, index),
            submit_time_s=submit,
            duration_s=float(rng.uniform(20, 400)),
            input_bytes=float(rng.lognormal(16.0 + seed % 3, 2.5)),
            shuffle_bytes=float(rng.lognormal(13.0, 2.0)) if has_reduce else 0.0,
            output_bytes=float(rng.lognormal(12.0, 2.5)),
            map_task_seconds=float(rng.uniform(10, 500)),
            reduce_task_seconds=float(rng.uniform(5, 100)) if has_reduce else 0.0,
            name="%s job %d" % (word, index),
        ))
    return jobs


def constant_jobs(name, n_jobs, input_bytes, shuffle_bytes, output_bytes,
                  map_only_every=2):
    """Sizes engineered so sketch medians equal exact medians bit for bit.

    Input and output are one distinct value per store, so the histogram
    sketch's min/max clamp reads out the exact value; shuffle is zero for
    at least half the jobs, so both paths put its median at exactly 0.0.
    All byte values are powers of two, keeping every accumulation exact.
    """
    jobs = []
    for index in range(n_jobs):
        map_only = index % map_only_every == 0
        jobs.append(Job(
            job_id="%s-%d" % (name, index),
            submit_time_s=float(index % 12) * HOUR + 60.0 * (index % 50),
            duration_s=120.0,
            input_bytes=input_bytes,
            shuffle_bytes=0.0 if map_only else shuffle_bytes,
            output_bytes=output_bytes,
            map_task_seconds=300.0,
            reduce_task_seconds=0.0 if map_only else 90.0,
        ))
    return jobs


def build_catalog(root, members, chunk_rows=64):
    """Write ``{name: (jobs, format_version)}`` as stores under ``root``."""
    catalog_dir = os.path.join(str(root), "catalog")
    os.makedirs(catalog_dir, exist_ok=True)
    for name, (jobs, version) in members.items():
        ChunkedTraceStore.write(os.path.join(catalog_dir, name), jobs,
                                chunk_rows=chunk_rows, format_version=version,
                                name=name.split("@")[0])
    return catalog_dir


def three_member_catalog(root, format_version):
    return build_catalog(root, {
        "fb@2009": (varied_jobs("fb09", 150, seed=1, query_share=0.2), format_version),
        "fb@2010": (varied_jobs("fb10", 200, seed=2, query_share=0.6), format_version),
        "cc-b": (varied_jobs("ccb", 120, seed=3, query_share=0.8), format_version),
    })


def report_digest(report):
    return json.dumps(report.to_dict(), sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# the equivalence battery: federated == per-store, all formats, serial/parallel
# ---------------------------------------------------------------------------
class TestFederatedEquivalence:
    @pytest.mark.parametrize("format_version", [1, 2, 3])
    @pytest.mark.parametrize("processes", [0, 2])
    def test_federated_scan_matches_per_store_scans(self, tmp_path,
                                                    format_version, processes):
        """Every member's federated profile == profiling that store alone."""
        catalog_dir = three_member_catalog(tmp_path, format_version)
        executor = ParallelExecutor(processes=processes) if processes else None
        report = compare_catalog(catalog_dir, executor=executor)

        for name in ("cc-b", "fb@2009", "fb@2010"):
            store = ChunkedTraceStore(os.path.join(catalog_dir, name))
            standalone = profile_source(store, name=name)
            assert features_from_profile(standalone) == report.features[name]
            federated = report.profiles[name]
            assert federated.n_jobs == standalone.n_jobs
            assert federated.small_job_fraction == standalone.small_job_fraction
            assert federated.burstiness.peak_to_median == \
                standalone.burstiness.peak_to_median
            assert federated.sizes.medians == standalone.sizes.medians
            assert federated.summary.bytes_moved == standalone.summary.bytes_moved

        # Distances recomputed from the standalone features are identical.
        names = report.member_names()
        population = [report.features[name] for name in names]
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                expected = workload_distance(report.features[a],
                                             report.features[b], population)
                assert report.distances[(a, b)] == expected
                assert report.distances[(b, a)] == expected

    @pytest.mark.parametrize("format_version", [1, 2, 3])
    def test_parallel_report_bit_identical_to_serial(self, tmp_path,
                                                     format_version):
        catalog_dir = three_member_catalog(tmp_path, format_version)
        serial = compare_catalog(catalog_dir, suite_size=2)
        parallel = compare_catalog(catalog_dir, suite_size=2,
                                   executor=ParallelExecutor(processes=2))
        assert report_digest(parallel) == report_digest(serial)

    def test_mixed_format_catalog_compares(self, tmp_path):
        """One catalog mixing v1, v2 and v3 members federates fine."""
        catalog_dir = build_catalog(tmp_path, {
            "a": (varied_jobs("a", 90, seed=4), 1),
            "b": (varied_jobs("b", 90, seed=5), 2),
            "c": (varied_jobs("c", 90, seed=6), 3),
        })
        report = compare_catalog(catalog_dir, suite_size=2)
        assert report.member_names() == ["a", "b", "c"]
        assert len(report.pairs) == 3
        assert set(report.suite.assignment) == {"a", "b", "c"}
        # Same jobs re-profiled store-alone give the same features no matter
        # which format held them.
        for name in ("a", "b", "c"):
            store = ChunkedTraceStore(os.path.join(catalog_dir, name))
            assert features_from_profile(profile_source(store, name=name)) == \
                report.features[name]

    def test_federated_scan_api_per_member_states(self, tmp_path):
        """FederatedSource.scan: fresh consumer states per member."""
        catalog_dir = three_member_catalog(tmp_path, 2)
        federated = FederatedSource.from_catalog(catalog_dir)
        scans = federated.scan(_member_profile_consumers)
        assert set(scans) == {"cc-b", "fb@2009", "fb@2010"}
        for name, scan in scans.items():
            store = ChunkedTraceStore(os.path.join(catalog_dir, name))
            alone = profile_source(store, name=name)
            via_scan = profile_from_scan(scan.result, name, 10 * GB)
            assert features_from_profile(via_scan) == features_from_profile(alone)
            assert scan.result.rows_scanned == len(store)

    def test_member_subset_and_focus_pairs(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 3)
        report = compare_catalog(catalog_dir, members=["fb@2010", "cc-b"],
                                 pairs=[("cc-b", "fb@2010")])
        assert report.member_names() == ["fb@2010", "cc-b"]
        assert len(report.pairs) == 1
        pair = report.pairs[0]
        assert (pair.a, pair.b) == ("cc-b", "fb@2010")
        assert set(pair.deltas) == set(FEATURE_NAMES)
        # Deltas are directional raw feature differences, B - A.
        assert pair.deltas["framework_share"] == pytest.approx(
            report.features["fb@2010"].values["framework_share"]
            - report.features["cc-b"].values["framework_share"])
        with pytest.raises(AnalysisError, match="unknown member"):
            compare_catalog(catalog_dir, pairs=[("cc-b", "nope")])

    def test_drift_chains_follow_epoch_order(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        report = compare_catalog(catalog_dir)
        assert list(report.drift) == ["fb"]
        (evolution,) = report.drift["fb"]
        assert evolution.before_name == "fb@2009"
        assert evolution.after_name == "fb@2010"
        assert evolution.job_count_growth == pytest.approx(200 / 150)


# ---------------------------------------------------------------------------
# store-native evolution == materialized, bit for bit
# ---------------------------------------------------------------------------
class TestEvolutionStoreNative:
    def test_store_backed_evolution_is_bit_identical_to_materialized(self, tmp_path):
        before_jobs = constant_jobs("b", 120, input_bytes=4 * GB,
                                    shuffle_bytes=800 * MB, output_bytes=200 * MB)
        after_jobs = constant_jobs("a", 180, input_bytes=40 * GB,
                                   shuffle_bytes=8 * GB, output_bytes=2 * GB,
                                   map_only_every=2)
        materialized = compare_evolution(Trace(before_jobs, name="fb-2009"),
                                         Trace(after_jobs, name="fb-2010"))
        before_store = ChunkedTraceStore.write(
            str(tmp_path / "before"), before_jobs, chunk_rows=32,
            format_version=3, name="fb-2009")
        after_store = ChunkedTraceStore.write(
            str(tmp_path / "after"), after_jobs, chunk_rows=32,
            format_version=3, name="fb-2010")
        store_backed = compare_evolution(before_store, after_store)

        for dimension, shift in materialized.shifts.items():
            other = store_backed.shifts[dimension]
            assert other.median_before == shift.median_before
            assert other.median_after == shift.median_after
            assert other.orders_of_magnitude == shift.orders_of_magnitude
        assert store_backed.peak_to_median_before == materialized.peak_to_median_before
        assert store_backed.peak_to_median_after == materialized.peak_to_median_after
        assert store_backed.burstiness_reduction == materialized.burstiness_reduction
        assert store_backed.small_job_fraction_before == \
            materialized.small_job_fraction_before
        assert store_backed.small_job_fraction_after == \
            materialized.small_job_fraction_after
        assert store_backed.map_only_fraction_before == \
            materialized.map_only_fraction_before
        assert store_backed.map_only_fraction_after == \
            materialized.map_only_fraction_after
        assert store_backed.job_count_growth == materialized.job_count_growth
        assert store_backed.summary_lines() == materialized.summary_lines()

    def test_empty_trace_message_preserved(self):
        with pytest.raises(AnalysisError,
                           match="evolution comparison needs two non-empty"):
            compare_evolution(Trace([], name="x"),
                              Trace(constant_jobs("y", 5, 1 * GB, 0.0, 1 * MB),
                                    name="y"))

    def test_workload_features_store_equals_trace_on_constant_dimensions(self, tmp_path):
        from repro.core import workload_features

        jobs = constant_jobs("w", 90, input_bytes=2 * GB, shuffle_bytes=500 * MB,
                             output_bytes=100 * MB)
        store = ChunkedTraceStore.write(str(tmp_path / "w"), jobs, chunk_rows=16)
        assert workload_features(store).values == \
            workload_features(Trace(jobs, name="w")).values


# ---------------------------------------------------------------------------
# hypothesis property tests: distances and suite selection
# ---------------------------------------------------------------------------
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
samples = st.lists(finite, min_size=1, max_size=40)


def feature_populations(min_size=1, max_size=8):
    """Distinctly-named WorkloadFeatures populations with finite values."""

    def build(rows):
        return [WorkloadFeatures(workload="w%d" % index,
                                 values=dict(zip(FEATURE_NAMES, row)))
                for index, row in enumerate(rows)]

    vector = st.tuples(*[st.floats(min_value=-100, max_value=100,
                                   allow_nan=False) for _ in FEATURE_NAMES])
    return st.lists(vector, min_size=min_size, max_size=max_size).map(build)


class TestComparisonMetricProperties:
    @given(a=samples)
    @settings(max_examples=40, deadline=None)
    def test_cdf_distance_identity(self, a):
        assert cdf_distance(a, a) == 0.0

    @given(a=samples, b=samples)
    @settings(max_examples=40, deadline=None)
    def test_cdf_distance_symmetric_and_bounded(self, a, b):
        d = cdf_distance(a, b)
        assert d == cdf_distance(b, a)
        assert 0.0 <= d <= 1.0

    @given(population=feature_populations(min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_workload_distance_identity_symmetry_nonnegative(self, population):
        a, b = population[0], population[1]
        assert workload_distance(a, a, population) == 0.0
        d = workload_distance(a, b, population)
        assert d == workload_distance(b, a, population)
        assert d >= 0.0
        # Population scaling bounds every dimension to [0, 1].
        assert d <= np.sqrt(len(FEATURE_NAMES)) + 1e-9

    @given(population=feature_populations(min_size=1, max_size=8),
           data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_suite_invariants(self, population, data):
        suite_size = data.draw(st.integers(min_value=1,
                                           max_value=len(population)))
        suite = select_workload_suite(population, suite_size)
        names = {feature.workload for feature in population}
        assert set(suite.selected) <= names
        assert len(suite.selected) <= suite_size
        assert len(set(suite.selected)) == len(suite.selected)
        assert set(suite.assignment) == names
        assert set(suite.assignment.values()) <= set(suite.selected)
        assert suite.coverage_radius >= 0.0
        # Every selected workload represents itself.
        for name in suite.selected:
            assert suite.assignment[name] == name

    @given(population=feature_populations(min_size=2, max_size=7),
           data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_suite_deterministic_under_permutation(self, population, data):
        suite_size = data.draw(st.integers(min_value=1,
                                           max_value=len(population)))
        shuffled = data.draw(st.permutations(population))
        original = select_workload_suite(population, suite_size)
        permuted = select_workload_suite(shuffled, suite_size)
        assert original.selected == permuted.selected
        assert original.assignment == permuted.assignment
        assert original.coverage_radius == permuted.coverage_radius


# ---------------------------------------------------------------------------
# catalog and federation edge cases
# ---------------------------------------------------------------------------
class TestCatalogMetadata:
    def test_member_names_split_into_cluster_and_epoch(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        catalog = StoreCatalog(catalog_dir)
        assert catalog.clusters() == ["cc-b", "fb"]
        assert [entry.name for entry in catalog.epochs("fb")] == \
            ["fb@2009", "fb@2010"]
        entry = catalog.entry("fb@2009")
        assert (entry.cluster, entry.epoch) == ("fb", "2009")
        assert catalog.entry("cc-b").epoch is None

    def test_catalog_json_overrides_metadata(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        with open(os.path.join(catalog_dir, CATALOG_METADATA_NAME), "w",
                  encoding="utf-8") as handle:
            json.dump({"members": {"cc-b": {"cluster": "cloudera",
                                            "epoch": "2011"}}}, handle)
        catalog = StoreCatalog(catalog_dir)
        entry = catalog.entry("cc-b")
        assert (entry.cluster, entry.epoch) == ("cloudera", "2011")
        assert "cloudera" in catalog.clusters()

    def test_invalid_catalog_json_is_loud(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        with open(os.path.join(catalog_dir, CATALOG_METADATA_NAME), "w",
                  encoding="utf-8") as handle:
            handle.write("{broken")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            StoreCatalog(catalog_dir)


class TestFederationEdgeCases:
    def test_empty_catalog_refuses_comparison(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(AnalysisError, match="at least two member stores"):
            compare_catalog(str(empty))

    def test_single_member_refuses_comparison(self, tmp_path):
        catalog_dir = build_catalog(tmp_path,
                                    {"only": (varied_jobs("o", 40, seed=9), 2)})
        with pytest.raises(AnalysisError, match="has 1"):
            compare_catalog(catalog_dir)

    def test_member_without_name_column_gets_zero_framework_share(self, tmp_path):
        """Mismatched member columns: one store has no job names at all."""
        catalog_dir = build_catalog(tmp_path, {
            "named": (varied_jobs("n", 80, seed=7), 2),
            "bare": (constant_jobs("b", 80, 2 * GB, 300 * MB, 50 * MB), 2),
        })
        report = compare_catalog(catalog_dir)
        assert report.profiles["bare"].naming is None
        assert report.features["bare"].values["framework_share"] == 0.0
        assert report.features["named"].values["framework_share"] > 0.0

    def test_stale_index_sidecar_degrades_member_to_scan(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        indexed = os.path.join(catalog_dir, "cc-b")
        build_indexes(ChunkedTraceStore(indexed), columns=["input_bytes"]).save()
        # Tamper with the sidecar's staleness pin: it no longer matches the
        # store and must be refused (leniently) in favor of the scan path.
        manifest_path = os.path.join(indexed, "index.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["manifest_sequence"] += 7
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        federated = FederatedSource.from_catalog(catalog_dir)
        query = Query().filter("input_bytes", ">", 0.0).aggregate(
            jobs=("count", "input_bytes"))
        results = federated.query(query)
        assert set(results) == {"cc-b", "fb@2009", "fb@2010"}
        stale = results["cc-b"]
        assert stale.plan.stale_index is True
        assert not stale.plan.used_index
        assert stale.aggregates["jobs"] == 120  # all rows, via the scan path
        # Sidecar-less members are unaffected.
        assert results["fb@2009"].plan.stale_index is False

    def test_append_between_scans_keeps_old_handle_semantics(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        federated = FederatedSource.from_catalog(catalog_dir)
        entry = federated.entry("cc-b")
        old_handle = entry.open()
        n_before = len(old_handle)
        append_store(entry.directory, varied_jobs("late", 25, seed=13))
        # The pre-append handle still sees the old manifest; a fresh open
        # (what the next federated scan does) sees the grown store.
        assert len(old_handle) == n_before
        assert len(entry.open()) == n_before + 25

    def test_per_member_checkpoints_resume_and_match_cold(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 3)
        checkpoint_dir = str(tmp_path / "checkpoints")
        compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir)
        for name in ("cc-b", "fb@2009", "fb@2010"):
            assert os.path.exists(os.path.join(
                checkpoint_dir, "%s.checkpoint.json" % name))
        append_store(os.path.join(catalog_dir, "fb@2010"),
                     varied_jobs("fb10x", 40, seed=21, query_share=0.6))
        cold = compare_catalog(catalog_dir)
        resumed = compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir)
        assert report_digest(resumed) == report_digest(cold)
        fb_2010 = resumed.profiles["fb@2010"]
        assert fb_2010.resume is not None and fb_2010.resume["resumed"]
        # Only the appended chunks were decoded on the resumed pass.
        assert fb_2010.rows_scanned == 40

    def test_corrupt_checkpoint_falls_back_to_cold_scan(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        checkpoint_dir = str(tmp_path / "checkpoints")
        baseline = compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir)
        broken = os.path.join(checkpoint_dir, "cc-b.checkpoint.json")
        with open(broken, "w", encoding="utf-8") as handle:
            handle.write("{definitely not a checkpoint")
        report = compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir)
        assert report_digest(report) == report_digest(baseline)
        # The fallback re-checkpointed: the file is valid again.
        with open(broken, "r", encoding="utf-8") as handle:
            assert "chunk_watermark" in handle.read()

    def test_unknown_member_and_duplicate_member_errors(self, tmp_path):
        catalog_dir = three_member_catalog(tmp_path, 2)
        with pytest.raises(TraceFormatError, match="no store named"):
            FederatedSource.from_catalog(catalog_dir, names=["nope"])
        entry = StoreCatalog(catalog_dir).entry("cc-b")
        with pytest.raises(TraceFormatError, match="two members named"):
            FederatedSource([entry, entry])

    def test_consumer_threshold_dependence_invalidates_checkpoint(self, tmp_path):
        """A checkpoint folded at one threshold never serves another."""
        catalog_dir = three_member_catalog(tmp_path, 2)
        checkpoint_dir = str(tmp_path / "checkpoints")
        compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir,
                        small_job_threshold_bytes=10 * GB)
        cold = compare_catalog(catalog_dir, small_job_threshold_bytes=1 * GB)
        resumed = compare_catalog(catalog_dir, checkpoint_dir=checkpoint_dir,
                                  small_job_threshold_bytes=1 * GB)
        # The mismatched threshold forces a full rescan; results match cold.
        assert report_digest(resumed) == report_digest(cold)
