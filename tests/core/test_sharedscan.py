"""Shared-scan equality contract (the PR's acceptance criterion).

Every characterization experiment must produce **identical** table/figure
rows whether it runs

* per-analysis (each experiment folding its own scans, the pre-pipeline path),
* in one shared serial scan (``run_suite(shared_scan=True)``), or
* in one shared scan fanned over worker processes (``processes=2``),

and the same holds for the standalone analysis entry points against the
shared-scan bundle.  Counts, dictionary statistics and sketches merge
exactly; the only permitted divergence is floating-point merge order on
parallel float sums, which the rendered rows absorb.
"""

import numpy as np
import pytest

from repro.bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, run_suite
from repro.core import (
    analyze_data_sizes,
    analyze_naming,
    characterize,
    hourly_dimensions,
    input_rank_frequencies,
    reaccess_fractions,
    reaccess_intervals,
    run_characterization_scan,
    size_access_profile,
)
from repro.engine import ChunkedTraceStore, ParallelExecutor


@pytest.fixture(scope="module")
def cc_e_store(cc_e_trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharedscan") / "cc-e.store"
    return ChunkedTraceStore.write(directory, cc_e_trace, chunk_rows=1024,
                                   name=cc_e_trace.name)


@pytest.fixture(scope="module")
def suite_modes(cc_e_store):
    """Suite results per execution mode over the same store."""
    def run(**kwargs):
        return {
            result.experiment_id: result
            for result in run_suite(traces={cc_e_store.name: cc_e_store},
                                    experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                                    include_ablations=False,
                                    include_simulation=False, **kwargs)
        }

    return {
        "per_analysis": run(shared_scan=False),
        "shared_serial": run(shared_scan=True),
        "shared_parallel": run(shared_scan=True, processes=2),
    }


@pytest.mark.parametrize("experiment_id", CHARACTERIZATION_EXPERIMENT_IDS)
@pytest.mark.parametrize("mode", ("shared_serial", "shared_parallel"))
class TestSuiteRowEquality:
    def test_rows_identical_to_per_analysis(self, suite_modes, mode, experiment_id):
        baseline = suite_modes["per_analysis"][experiment_id]
        shared = suite_modes[mode][experiment_id]
        assert shared.rows == baseline.rows
        assert shared.headers == baseline.headers

    def test_series_identical_to_per_analysis(self, suite_modes, mode, experiment_id):
        baseline = suite_modes["per_analysis"][experiment_id]
        shared = suite_modes[mode][experiment_id]
        assert set(shared.series) == set(baseline.series)
        for key, points in baseline.series.items():
            mine = shared.series[key]
            assert len(mine) == len(points)
            assert np.allclose(np.asarray(mine, dtype=float),
                               np.asarray(points, dtype=float), rtol=1e-9), key


class TestBundleMatchesStandalone:
    """The shared-scan bundle fields equal the standalone entry points."""

    @pytest.fixture(scope="class")
    def bundles(self, cc_e_store):
        return {
            "serial": run_characterization_scan(cc_e_store),
            "parallel": run_characterization_scan(
                cc_e_store, executor=ParallelExecutor(processes=2)),
        }

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_summary(self, bundles, cc_e_store, mode):
        from repro.engine import TraceSource

        assert bundles[mode].value("summary") == TraceSource.wrap(cc_e_store).summary()

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_data_sizes(self, bundles, cc_e_store, mode):
        standalone = analyze_data_sizes(cc_e_store)
        bundled = bundles[mode].value("data_sizes")
        assert bundled.medians == standalone.medians  # sketches merge exactly
        assert bundled.fraction_below_gb == standalone.fraction_below_gb
        assert bundled.map_only_fraction == standalone.map_only_fraction

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_ranks_and_profiles(self, bundles, cc_e_store, mode):
        bundle = bundles[mode]
        ranks = input_rank_frequencies(cc_e_store)
        assert np.array_equal(bundle.value("input_ranks").frequencies, ranks.frequencies)
        assert bundle.value("input_ranks").slope == ranks.slope
        profile = size_access_profile(cc_e_store, "input")
        bundled = bundle.value("input_profile")
        assert np.array_equal(bundled.file_sizes, profile.file_sizes)
        assert bundled.jobs_below_gb_fraction == profile.jobs_below_gb_fraction
        assert bundled.bytes_below_gb_fraction == profile.bytes_below_gb_fraction

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_reaccess(self, bundles, cc_e_store, mode):
        bundle = bundles[mode]
        assert bundle.value("reaccess_fractions") == reaccess_fractions(cc_e_store)
        intervals = reaccess_intervals(cc_e_store)
        bundled = bundle.value("reaccess_intervals")
        assert bundled.fraction_within_6h == intervals.fraction_within_6h
        assert np.array_equal(bundled.input_input.values, intervals.input_input.values)

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_hourly(self, bundles, cc_e_store, mode):
        dims = hourly_dimensions(cc_e_store)
        bundled = bundles[mode].value("hourly")
        assert np.array_equal(bundled.jobs_per_hour, dims.jobs_per_hour)
        assert np.allclose(bundled.bytes_per_hour, dims.bytes_per_hour, rtol=1e-9)
        assert np.allclose(bundled.task_seconds_per_hour,
                           dims.task_seconds_per_hour, rtol=1e-9)

    @pytest.mark.parametrize("mode", ("serial", "parallel"))
    def test_naming(self, bundles, cc_e_store, mode):
        naming = analyze_naming(cc_e_store)
        bundled = bundles[mode].value("naming")
        assert bundled.by_jobs.shares == naming.by_jobs.shares
        for (word, share), (ref_word, ref_share) in zip(bundled.by_bytes.shares,
                                                        naming.by_bytes.shares):
            assert word == ref_word
            assert share == pytest.approx(ref_share, rel=1e-12)

    def test_serial_bundle_matches_standalone_folds_exactly(self, bundles, cc_e_store):
        """Serial shared scan == standalone folds bit-for-bit (same code path)."""
        naming = analyze_naming(cc_e_store)
        assert bundles["serial"].value("naming").by_bytes.shares == naming.by_bytes.shares
        dims = hourly_dimensions(cc_e_store)
        assert np.array_equal(bundles["serial"].value("hourly").bytes_per_hour,
                              dims.bytes_per_hour)


class TestCharacterizeSharedScan:
    def test_store_report_parallel_matches_serial(self, cc_b_small_trace, tmp_path_factory):
        directory = tmp_path_factory.mktemp("charscan") / "cc-b.store"
        store = ChunkedTraceStore.write(directory, cc_b_small_trace, chunk_rows=256,
                                        name=cc_b_small_trace.name)
        serial = characterize(store, max_k=4)
        parallel = characterize(store, max_k=4, processes=2)
        assert parallel.render() == serial.render()

    def test_store_report_matches_trace_counts(self, cc_b_small_trace, tmp_path_factory):
        directory = tmp_path_factory.mktemp("charscan2") / "cc-b.store"
        store = ChunkedTraceStore.write(directory, cc_b_small_trace, chunk_rows=256,
                                        name=cc_b_small_trace.name)
        report = characterize(store, max_k=4)
        baseline = characterize(cc_b_small_trace, max_k=4)
        assert report.summary.n_jobs == baseline.summary.n_jobs
        assert report.access.fractions == baseline.access.fractions
        assert report.clustering.k == baseline.clustering.k


def _reference_reaccess(jobs):
    """Straight per-row port of the paper's sequential re-access walk."""
    last_read, last_write = {}, {}
    input_input, output_input = [], []
    jobs_with_paths = input_hits = output_hits = any_hits = 0
    for job in jobs:
        t, path, out = job.submit_time_s, job.input_path, job.output_path
        if path:
            write_t, read_t = last_write.get(path), last_read.get(path)
            if write_t is not None and (read_t is None or write_t >= read_t):
                output_input.append(t - write_t)
            elif read_t is not None:
                input_input.append(t - read_t)
            if write_t is not None:
                output_hits += 1
            elif read_t is not None:
                input_hits += 1
            if write_t is not None or read_t is not None:
                any_hits += 1
            last_read[path] = t
            jobs_with_paths += 1
        if out:
            last_write[out] = t
    return (sorted(input_input), sorted(output_input),
            jobs_with_paths, input_hits, output_hits, any_hits)


class TestReaccessVectorizedMatchesRowWalk:
    """The chunk-vectorized re-access fold equals the sequential row walk.

    Randomized tie-heavy traces: shared path pools, equal submit times,
    rows whose input path equals their own (or another row's) output path.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_traces(self, seed, tmp_path):
        from repro.traces import Job, Trace

        rng = np.random.default_rng(seed)
        n = 600
        pool = ["/p/%d" % index for index in range(12)]
        times = np.sort(rng.integers(0, 40, size=n)).astype(float)  # many ties
        jobs = []
        for index in range(n):
            has_in = rng.random() < 0.85
            has_out = rng.random() < 0.7
            jobs.append(Job(
                job_id="r%04d" % index, submit_time_s=float(times[index]),
                duration_s=1.0, input_bytes=1.0, shuffle_bytes=0.0,
                output_bytes=1.0, map_task_seconds=1.0, reduce_task_seconds=0.0,
                input_path=pool[rng.integers(len(pool))] if has_in else None,
                output_path=pool[rng.integers(len(pool))] if has_out else None))
        trace = Trace(jobs, name="ref")
        store = ChunkedTraceStore.write(tmp_path / ("s%d" % seed), trace,
                                        chunk_rows=37)  # odd width: many carries
        (ref_in, ref_out, ref_jobs, ref_ihits,
         ref_ohits, ref_any) = _reference_reaccess(trace.jobs)

        intervals = reaccess_intervals(store)
        fractions = reaccess_fractions(store)
        assert fractions.jobs_with_paths == ref_jobs
        assert fractions.input_reaccess == ref_ihits / ref_jobs
        assert fractions.output_reaccess == ref_ohits / ref_jobs
        assert fractions.any_reaccess == ref_any / ref_jobs
        got_in = intervals.input_input.values.tolist() if intervals.input_input else []
        got_out = intervals.output_input.values.tolist() if intervals.output_input else []
        assert got_in == ref_in
        assert got_out == ref_out


class TestSubsetScan:
    def test_experiment_subset_folds_only_needed(self, cc_e_store):
        bundle = run_characterization_scan(cc_e_store, experiments=["figure1"])
        assert bundle.value("data_sizes").medians
        assert not bundle.has("naming")
        assert not bundle.has("hourly")

    def test_unknown_key_raises(self, cc_e_store):
        from repro.errors import AnalysisError

        bundle = run_characterization_scan(cc_e_store, experiments=["figure1"])
        with pytest.raises(AnalysisError, match="did not compute"):
            bundle.value("naming")
