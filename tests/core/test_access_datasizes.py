"""Tests for data-size (Figure 1) and access-pattern (Figures 2-6) analyses."""

import numpy as np
import pytest

from repro.core import (
    analyze_access_patterns,
    analyze_data_sizes,
    eighty_x_rule,
    input_rank_frequencies,
    median_spread_orders,
    reaccess_fractions,
    reaccess_intervals,
    size_access_profile,
)
from repro.errors import AnalysisError
from repro.traces import Job, Trace
from repro.units import GB, KB, MB


class TestDataSizes:
    def test_medians_and_fractions(self, tiny_trace):
        dist = analyze_data_sizes(tiny_trace)
        # The empirical median is one of the observed values, with at least
        # half of the sample at or below it (lower-value convention for even n).
        inputs = sorted(job.input_bytes for job in tiny_trace)
        assert dist.medians["input_bytes"] in inputs
        assert dist.cdfs["input_bytes"].fraction_at_or_below(dist.medians["input_bytes"]) >= 0.5
        assert 0.0 <= dist.fraction_below_gb["input_bytes"] <= 1.0
        # j1, j3 and j5 are map-only (zero shuffle and zero reduce time).
        assert dist.map_only_fraction == pytest.approx(3 / 6)

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_data_sizes(Trace([], name="e"))

    def test_median_spread_orders(self, tiny_trace, cc_e_trace):
        spreads = median_spread_orders(
            [analyze_data_sizes(tiny_trace), analyze_data_sizes(cc_e_trace)], "input_bytes")
        assert spreads >= 0.0

    def test_median_spread_needs_two_workloads(self, tiny_trace):
        with pytest.raises(AnalysisError):
            median_spread_orders([analyze_data_sizes(tiny_trace)], "input_bytes")

    def test_generated_workload_mostly_small_jobs(self, cc_e_trace):
        """Figure 1 shape: most jobs move MB-GB of data."""
        dist = analyze_data_sizes(cc_e_trace)
        assert dist.fraction_below_gb["input_bytes"] > 0.8


class TestSizeAccessProfile:
    def test_profile_on_tiny_trace(self, tiny_trace):
        profile = size_access_profile(tiny_trace, "input")
        assert 0.0 <= profile.jobs_below_gb_fraction <= 1.0
        assert profile.stored_bytes_cdf.fractions[-1] == pytest.approx(1.0)
        assert profile.file_sizes.size == len({job.input_path for job in tiny_trace})

    def test_unknown_kind_rejected(self, tiny_trace):
        with pytest.raises(AnalysisError):
            size_access_profile(tiny_trace, "shuffle")

    def test_no_paths_rejected(self):
        job = Job(job_id="x", submit_time_s=0, duration_s=1, input_bytes=1,
                  shuffle_bytes=0, output_bytes=1, map_task_seconds=1,
                  reduce_task_seconds=0)
        with pytest.raises(AnalysisError):
            size_access_profile(Trace([job], name="np"), "input")

    def test_eighty_x_rule_small_files_dominate_accesses(self):
        """When most accesses hit small files, 80% of accesses touch few bytes."""
        jobs = []
        for index in range(95):
            jobs.append(Job(job_id="s%d" % index, submit_time_s=index, duration_s=1,
                            input_bytes=1 * MB, shuffle_bytes=0, output_bytes=1 * KB,
                            map_task_seconds=1, reduce_task_seconds=0,
                            input_path="/small/%d" % (index % 10)))
        for index in range(5):
            jobs.append(Job(job_id="b%d" % index, submit_time_s=1000 + index, duration_s=1,
                            input_bytes=1000 * GB, shuffle_bytes=0, output_bytes=1 * KB,
                            map_task_seconds=1, reduce_task_seconds=0,
                            input_path="/big/%d" % index))
        trace = Trace(jobs, name="skewed")
        assert eighty_x_rule(trace, "input") < 10.0

    def test_eighty_x_rule_invalid_fraction(self, tiny_trace):
        with pytest.raises(AnalysisError):
            eighty_x_rule(tiny_trace, "input", job_fraction=1.0)

    def test_generated_workload_follows_80_x_rule(self, cc_e_trace):
        """Figure 3/4 shape: 80% of accesses go to a small share of stored bytes."""
        assert eighty_x_rule(cc_e_trace, "input") < 15.0


class TestReaccess:
    def test_intervals_on_tiny_trace(self, tiny_trace):
        intervals = reaccess_intervals(tiny_trace)
        # j3 and j6 re-read /data/a (read at t=0); j5 reads /out/b written by j2.
        assert intervals.input_input is not None
        assert intervals.output_input is not None
        assert intervals.input_input.n == 2
        assert intervals.output_input.n == 1
        assert intervals.output_input.values[0] == pytest.approx(10800.0 - 600.0)
        assert intervals.fraction_within_6h == pytest.approx(1.0)

    def test_fractions_on_tiny_trace(self, tiny_trace):
        fractions = reaccess_fractions(tiny_trace)
        assert fractions.jobs_with_paths == 6
        assert fractions.input_reaccess == pytest.approx(2 / 6)
        assert fractions.output_reaccess == pytest.approx(1 / 6)
        assert fractions.any_reaccess == pytest.approx(3 / 6)

    def test_fractions_require_paths(self):
        job = Job(job_id="x", submit_time_s=0, duration_s=1, input_bytes=1,
                  shuffle_bytes=0, output_bytes=1, map_task_seconds=1,
                  reduce_task_seconds=0)
        with pytest.raises(AnalysisError):
            reaccess_fractions(Trace([job], name="np"))

    def test_generated_workload_reaccess_within_paper_range(self, cc_e_trace):
        """Figure 5/6 shape: majority of re-accesses happen within hours."""
        fractions = reaccess_fractions(cc_e_trace)
        intervals = reaccess_intervals(cc_e_trace)
        assert 0.5 < fractions.any_reaccess < 0.95
        assert intervals.fraction_within_6h > 0.6


class TestCombinedAccessAnalysis:
    def test_all_components_present_with_paths(self, cc_e_trace):
        result = analyze_access_patterns(cc_e_trace)
        assert result.input_ranks is not None and result.input_ranks.slope is not None
        assert result.output_ranks is not None
        assert result.input_profile is not None
        assert result.intervals is not None
        assert result.fractions is not None
        assert result.eighty_x_input is not None
        # Figure 2 shape: Zipf-like slope in a plausible band around 5/6.
        assert 0.4 < result.input_ranks.slope < 1.4

    def test_missing_paths_degrade_to_none(self, fb_2009_small_trace):
        result = analyze_access_patterns(fb_2009_small_trace)
        assert result.input_ranks is None
        assert result.fractions is None

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_access_patterns(Trace([], name="e"))

    def test_input_rank_frequencies_match_manual_counts(self, tiny_trace):
        ranks = input_rank_frequencies(tiny_trace)
        assert ranks.frequencies[0] == 3  # /data/a read three times
        assert ranks.total_accesses == 6
