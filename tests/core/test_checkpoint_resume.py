"""Checkpointed characterization: incremental resume == cold full rescan.

The acceptance contract of the incremental pipeline: after appending chunks
to a store, ``run_characterization_scan(resume_from=checkpoint)`` must
reproduce every analysis — and every suite table/figure row — **bit-identical**
to a cold full rescan of the grown store, while folding only the appended
chunks for the resumable consumers.  Non-resumable consumers (the Table-2
row sample) and ordered consumers facing time-interleaved appends fall back
to a full rescan, and the bundle says so.
"""

import os

import numpy as np
import pytest

from repro.bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, run_suite
from repro.core import characterize, run_characterization_scan
from repro.core.sharedscan import _ALL_KEYS
from repro.engine import Checkpoint, ChunkedTraceStore, ParallelExecutor, append_store
from repro.errors import AnalysisError
from repro.traces import Trace


@pytest.fixture(scope="module")
def split_trace(cc_e_trace):
    """The CC-e jobs split 80/20 at a submit-time boundary."""
    jobs = cc_e_trace.jobs
    cut = int(len(jobs) * 0.8)
    return (Trace(jobs[:cut], name=cc_e_trace.name, machines=cc_e_trace.machines),
            Trace(jobs[cut:], name=cc_e_trace.name, machines=cc_e_trace.machines))


@pytest.fixture(scope="module")
def grown_store(split_trace, tmp_path_factory):
    """A store seeded with 80% of the jobs, checkpointed, then appended to."""
    base, fresh = split_trace
    directory = tmp_path_factory.mktemp("ckresume") / "cc-e.store"
    checkpoint_path = str(tmp_path_factory.mktemp("ckresume-ck") / "scan.ck.json")
    ChunkedTraceStore.write(directory, base, chunk_rows=1024, name=base.name)
    run_characterization_scan(ChunkedTraceStore(directory),
                              checkpoint_to=checkpoint_path)
    store = append_store(directory, fresh)
    return store, checkpoint_path


#: Sample cap below CC-e's job count, so the Table-2 gather consumer exists
#: and its non-resumable full-rescan fallback is exercised.
SAMPLE_CAP = 500


@pytest.fixture(scope="module")
def bundles(grown_store):
    store, checkpoint_path = grown_store
    return {
        "cold": run_characterization_scan(store, cluster_sample_cap=SAMPLE_CAP),
        "resumed": run_characterization_scan(store, resume_from=checkpoint_path,
                                             cluster_sample_cap=SAMPLE_CAP),
        "resumed_parallel": run_characterization_scan(
            store, resume_from=checkpoint_path, cluster_sample_cap=SAMPLE_CAP,
            executor=ParallelExecutor(processes=2)),
    }


class TestIncrementalEqualsCold:
    """Serial incremental resume is bit-identical to a cold full rescan."""

    def test_summary(self, bundles):
        assert bundles["resumed"].value("summary") == bundles["cold"].value("summary")

    def test_data_sizes(self, bundles):
        cold, mine = bundles["cold"].value("data_sizes"), bundles["resumed"].value("data_sizes")
        assert mine.medians == cold.medians
        assert mine.fraction_below_gb == cold.fraction_below_gb
        assert mine.map_only_fraction == cold.map_only_fraction

    def test_ranks_and_profiles(self, bundles):
        for key in ("input_ranks", "output_ranks"):
            cold, mine = bundles["cold"].value(key), bundles["resumed"].value(key)
            assert np.array_equal(mine.frequencies, cold.frequencies)
            assert mine.slope == cold.slope
        for key in ("input_profile", "output_profile"):
            cold, mine = bundles["cold"].value(key), bundles["resumed"].value(key)
            assert np.array_equal(mine.file_sizes, cold.file_sizes)
            assert mine.jobs_below_gb_fraction == cold.jobs_below_gb_fraction
            assert mine.bytes_below_gb_fraction == cold.bytes_below_gb_fraction

    def test_reaccess(self, bundles):
        cold = bundles["cold"].value("reaccess_intervals")
        mine = bundles["resumed"].value("reaccess_intervals")
        assert mine.fraction_within_6h == cold.fraction_within_6h
        for attr in ("input_input", "output_input"):
            a, b = getattr(cold, attr), getattr(mine, attr)
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(b.values, a.values)
        assert bundles["resumed"].value("reaccess_fractions") == \
            bundles["cold"].value("reaccess_fractions")

    def test_hourly(self, bundles):
        cold, mine = bundles["cold"].value("hourly"), bundles["resumed"].value("hourly")
        assert np.array_equal(mine.jobs_per_hour, cold.jobs_per_hour)
        assert np.array_equal(mine.bytes_per_hour, cold.bytes_per_hour)
        assert np.array_equal(mine.task_seconds_per_hour, cold.task_seconds_per_hour)

    def test_naming(self, bundles):
        cold, mine = bundles["cold"].value("naming"), bundles["resumed"].value("naming")
        assert mine.by_jobs.shares == cold.by_jobs.shares
        assert mine.by_bytes.shares == cold.by_bytes.shares
        assert mine.by_task_seconds.shares == cold.by_task_seconds.shares
        assert mine.framework_shares == cold.framework_shares

    def test_cluster_sample(self, bundles):
        cold = bundles["cold"].get("cluster_sample")
        mine = bundles["resumed"].get("cluster_sample")
        assert cold is not None and mine is not None
        for column, values in cold.block.columns.items():
            assert np.array_equal(mine.block.columns[column], values), column


class TestParallelResumeClose:
    """The parallel resumed lane matches up to float merge order (as every
    parallel scan does — the same tolerance the shared-scan tests pin)."""

    def test_counts_exact_floats_close(self, bundles):
        cold = bundles["cold"].value("summary")
        mine = bundles["resumed_parallel"].value("summary")
        assert mine.n_jobs == cold.n_jobs
        assert mine.bytes_moved == pytest.approx(cold.bytes_moved, rel=1e-12)
        naming_cold = bundles["cold"].value("naming")
        naming_mine = bundles["resumed_parallel"].value("naming")
        assert naming_mine.by_jobs.shares == naming_cold.by_jobs.shares
        for (word, share), (ref_word, ref_share) in zip(
                naming_mine.by_bytes.shares, naming_cold.by_bytes.shares):
            assert word == ref_word
            assert share == pytest.approx(ref_share, rel=1e-12)
        hourly_cold = bundles["cold"].value("hourly")
        hourly_mine = bundles["resumed_parallel"].value("hourly")
        assert np.array_equal(hourly_mine.jobs_per_hour, hourly_cold.jobs_per_hour)
        assert np.allclose(hourly_mine.bytes_per_hour, hourly_cold.bytes_per_hour,
                           rtol=1e-9)

    def test_dictionary_and_sample_stats_exact(self, bundles):
        assert bundles["resumed_parallel"].value("reaccess_fractions") == \
            bundles["cold"].value("reaccess_fractions")
        cold = bundles["cold"].get("cluster_sample")
        mine = bundles["resumed_parallel"].get("cluster_sample")
        for column, values in cold.block.columns.items():
            assert np.array_equal(mine.block.columns[column], values), column


class TestSuiteRowsIdentical:
    def test_resumed_suite_rows_bit_identical(self, grown_store, bundles):
        store, _checkpoint_path = grown_store

        def rows(bundle):
            results = run_suite(
                traces={store.name: store},
                experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                include_ablations=False, include_simulation=False,
                analyses={store.name: bundle})
            return {result.experiment_id: (result.rows, result.headers)
                    for result in results}

        assert rows(bundles["resumed"]) == rows(bundles["cold"])


class TestResumeReporting:
    def test_resumed_and_rescanned_sets(self, bundles):
        resume = bundles["resumed"].resume
        assert resume is not None
        assert resume["new_chunks"] >= 1
        for name in ("summary", "data_sizes", "path_stats_input", "hourly",
                     "naming", "reaccess"):
            assert name in resume["resumed"], name
        assert "cluster_sample" in resume["rescanned"]
        assert "not resumable" in resume["rescanned"]["cluster_sample"]

    def test_cold_scan_has_no_resume_info(self, bundles):
        assert bundles["cold"].resume is None

    def test_checkpoint_files_written(self, grown_store):
        _store, checkpoint_path = grown_store
        assert os.path.isfile(checkpoint_path)
        assert os.path.isfile(checkpoint_path + ".npz")
        checkpoint = Checkpoint.load(checkpoint_path)
        assert checkpoint.chunk_watermark >= 1
        assert "summary" in checkpoint.consumers


class TestOrderedFallback:
    def test_interleaved_append_rescans_the_ordered_walk(self, split_trace,
                                                         tmp_path_factory):
        base, fresh = split_trace
        directory = tmp_path_factory.mktemp("interleave") / "store"
        checkpoint_path = str(directory) + ".ck.json"
        ChunkedTraceStore.write(directory, fresh, chunk_rows=1024, name="cc-e")
        run_characterization_scan(ChunkedTraceStore(directory),
                                  checkpoint_to=checkpoint_path)
        # base jobs come *before* the stored ones: the append interleaves
        store = append_store(directory, base)
        assert not store.sorted_by_submit_time
        resumed = run_characterization_scan(store, resume_from=checkpoint_path)
        assert "reaccess" in resumed.resume["rescanned"]
        assert "interleaves in time" in resumed.resume["rescanned"]["reaccess"]
        # the fallback full rescan then fails exactly like a cold scan would
        cold = run_characterization_scan(store)
        assert isinstance(resumed.error("reaccess_intervals"), AnalysisError)
        assert isinstance(cold.error("reaccess_intervals"), AnalysisError)
        # unordered analyses still resume and still match the cold scan
        assert "summary" in resumed.resume["resumed"]
        assert resumed.value("summary") == cold.value("summary")


class TestCheckpointValidation:
    def test_rewritten_store_rejected(self, split_trace, tmp_path):
        base, _fresh = split_trace
        directory = tmp_path / "rewrite"
        checkpoint_path = str(tmp_path / "rw.ck.json")
        ChunkedTraceStore.write(directory, base, chunk_rows=1024, name="cc-e")
        run_characterization_scan(ChunkedTraceStore(directory),
                                  checkpoint_to=checkpoint_path)
        # a rewrite (different chunking) is not an append: prefix rows change
        ChunkedTraceStore.write(directory, base, chunk_rows=700, name="cc-e")
        with pytest.raises(AnalysisError, match="rewritten"):
            run_characterization_scan(ChunkedTraceStore(directory),
                                      resume_from=checkpoint_path)

    def test_materialized_source_rejected(self, split_trace, tmp_path):
        base, _fresh = split_trace
        with pytest.raises(AnalysisError, match="store-backed"):
            run_characterization_scan(base, checkpoint_to=str(tmp_path / "x.json"))

    def test_missing_checkpoint_file(self, split_trace, tmp_path):
        base, _fresh = split_trace
        directory = tmp_path / "missing"
        ChunkedTraceStore.write(directory, base, chunk_rows=1024)
        with pytest.raises(AnalysisError, match="cannot read checkpoint"):
            run_characterization_scan(ChunkedTraceStore(directory),
                                      resume_from=str(tmp_path / "nope.json"))

    def test_same_shape_rewrite_rejected_by_store_uid(self, split_trace, tmp_path):
        """A byte-different store of identical shape must not pass validate."""
        base, _fresh = split_trace
        directory = tmp_path / "sameshape"
        checkpoint_path = str(tmp_path / "ss.ck.json")
        ChunkedTraceStore.write(directory, base, chunk_rows=1024, name="cc-e")
        run_characterization_scan(ChunkedTraceStore(directory),
                                  checkpoint_to=checkpoint_path)
        # regenerate with the SAME chunking and job count: chunk/row
        # watermarks and manifest_sequence all match the checkpoint
        ChunkedTraceStore.write(directory, base, chunk_rows=1024, name="cc-e")
        with pytest.raises(AnalysisError, match="different store"):
            run_characterization_scan(ChunkedTraceStore(directory),
                                      resume_from=checkpoint_path)

    def test_mismatched_json_npz_pair_rejected(self, split_trace, tmp_path):
        """A torn roll-forward (new npz, old JSON) is detected at load."""
        base, _fresh = split_trace
        directory = tmp_path / "torn"
        old_path = str(tmp_path / "old.ck.json")
        new_path = str(tmp_path / "new.ck.json")
        store = ChunkedTraceStore.write(directory, base, chunk_rows=1024)
        run_characterization_scan(store, checkpoint_to=old_path)
        run_characterization_scan(store, checkpoint_to=new_path)
        os.replace(new_path + ".npz", old_path + ".npz")  # simulate the crash
        with pytest.raises(AnalysisError, match="out of sync"):
            Checkpoint.load(old_path)


class TestCharacterizeResume:
    def test_report_matches_cold_and_notes_say_so(self, grown_store):
        store, checkpoint_path = grown_store
        cold = characterize(store, max_k=4)
        resumed = characterize(store, max_k=4, resume_from=checkpoint_path)
        assert resumed.summary == cold.summary
        assert resumed.access.fractions == cold.access.fractions
        assert resumed.clustering.k == cold.clustering.k
        assert any("resumed" in note for note in resumed.notes)

    def test_cli_checkpoint_requires_store(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["characterize", "--workload", "CC-e", "--checkpoint", "x.json"])


class TestAllKeysCovered:
    def test_every_analysis_key_is_exercised(self, bundles):
        """Every shared-scan key either resumed or was explicitly rescanned."""
        resume = bundles["resumed"].resume
        handled = set(resume["resumed"]) | set(resume["rescanned"])
        # analysis keys map onto consumer names; the consumers the suite
        # registers for a full default scan:
        expected = {"summary", "data_sizes", "path_stats_input",
                    "path_stats_output", "reaccess", "hourly", "naming",
                    "cluster_sample"}
        assert expected <= handled
        assert set(_ALL_KEYS) >= {"summary", "data_sizes"}  # sanity
