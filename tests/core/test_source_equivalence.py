"""Source-equivalence contract: every refactored core statistic and every
bench table/figure produces identical results across the three trace
representations — job-list ``Trace``, in-memory ``ColumnarTrace``, and
out-of-core ``ChunkedTraceStore``.

Exceptions, exactly as documented in ``docs/architecture.md``:

* sketch-backed percentiles (store-side Figure-1 medians / below-1GB
  fractions) are tolerance-bounded at histogram-bin resolution;
* float sums folded over different chunkings may differ in the last ulp, so
  byte/task-second totals compare with a tight relative tolerance.
"""

import numpy as np
import pytest

from repro.core import (
    analyze_access_patterns,
    analyze_burstiness,
    analyze_data_sizes,
    analyze_naming,
    characterize,
    cluster_jobs,
    consolidation_study,
    eighty_x_rule,
    hourly_dimensions,
    hourly_task_seconds,
    input_rank_frequencies,
    reaccess_fractions,
    reaccess_intervals,
    size_access_profile,
)
from repro.bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, run_suite
from repro.engine import ChunkedTraceStore, TraceSource

REPRESENTATIONS = ("trace", "columnar", "store")

#: Relative tolerance for sketch-backed percentile read-outs (bin resolution).
SKETCH_REL = 0.16
#: Relative tolerance for float sums folded over different chunk boundaries.
SUM_REL = 1e-9


@pytest.fixture(scope="module")
def cc_e_reps(cc_e_trace, tmp_path_factory):
    """The CC-e workload in all three representations (multi-chunk store)."""
    directory = tmp_path_factory.mktemp("equivalence") / "cc-e.store"
    store = ChunkedTraceStore.write(directory, cc_e_trace, chunk_rows=2048,
                                    name=cc_e_trace.name)
    return {"trace": cc_e_trace,
            "columnar": cc_e_trace.to_columnar(),
            "store": store}


@pytest.fixture(scope="module")
def cc_b_reps(cc_b_small_trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("equivalence") / "cc-b.store"
    store = ChunkedTraceStore.write(directory, cc_b_small_trace, chunk_rows=512,
                                    name=cc_b_small_trace.name)
    return {"trace": cc_b_small_trace,
            "columnar": cc_b_small_trace.to_columnar(),
            "store": store}


@pytest.mark.parametrize("representation", REPRESENTATIONS)
class TestCoreStatisticEquivalence:
    def test_summary(self, cc_e_reps, representation):
        baseline = cc_e_reps["trace"].summary()
        summary = TraceSource.wrap(cc_e_reps[representation]).summary()
        assert summary.n_jobs == baseline.n_jobs
        assert summary.length_s == pytest.approx(baseline.length_s)
        assert summary.bytes_moved == pytest.approx(baseline.bytes_moved, rel=SUM_REL)
        assert summary.total_task_seconds == pytest.approx(
            baseline.total_task_seconds, rel=SUM_REL)

    def test_hourly_dimensions(self, cc_e_reps, representation):
        baseline = hourly_dimensions(cc_e_reps["trace"])
        dims = hourly_dimensions(cc_e_reps[representation])
        assert np.array_equal(dims.jobs_per_hour, baseline.jobs_per_hour)
        assert np.allclose(dims.bytes_per_hour, baseline.bytes_per_hour, rtol=SUM_REL)
        assert np.allclose(dims.task_seconds_per_hour,
                           baseline.task_seconds_per_hour, rtol=SUM_REL)

    def test_burstiness(self, cc_e_reps, representation):
        baseline = analyze_burstiness(cc_e_reps["trace"])
        burst = analyze_burstiness(cc_e_reps[representation])
        assert burst.hours == baseline.hours
        assert burst.peak_to_median == pytest.approx(baseline.peak_to_median, rel=SUM_REL)
        assert burst.p99_to_median == pytest.approx(baseline.p99_to_median, rel=SUM_REL)
        assert np.allclose(hourly_task_seconds(cc_e_reps[representation]),
                           hourly_task_seconds(cc_e_reps["trace"]), rtol=SUM_REL)

    def test_data_sizes(self, cc_e_reps, representation):
        baseline = analyze_data_sizes(cc_e_reps["trace"])
        sizes = analyze_data_sizes(cc_e_reps[representation])
        # Counts are exact for every representation.
        assert sizes.map_only_fraction == baseline.map_only_fraction
        for dimension, exact in baseline.medians.items():
            if representation == "store":  # sketch-backed: bin resolution
                assert sizes.medians[dimension] == pytest.approx(exact, rel=SKETCH_REL)
                assert sizes.fraction_below_gb[dimension] == pytest.approx(
                    baseline.fraction_below_gb[dimension], abs=0.02)
            else:
                assert sizes.medians[dimension] == exact
                assert sizes.fraction_below_gb[dimension] == baseline.fraction_below_gb[dimension]

    def test_zipf_ranks(self, cc_e_reps, representation):
        baseline = input_rank_frequencies(cc_e_reps["trace"])
        ranks = input_rank_frequencies(cc_e_reps[representation])
        assert np.array_equal(ranks.frequencies, baseline.frequencies)
        assert ranks.slope == baseline.slope

    def test_access_patterns(self, cc_e_reps, representation):
        baseline_fracs = reaccess_fractions(cc_e_reps["trace"])
        fracs = reaccess_fractions(cc_e_reps[representation])
        assert fracs == baseline_fracs
        baseline_intervals = reaccess_intervals(cc_e_reps["trace"])
        intervals = reaccess_intervals(cc_e_reps[representation])
        assert intervals.fraction_within_6h == baseline_intervals.fraction_within_6h
        assert np.array_equal(intervals.input_input.values,
                              baseline_intervals.input_input.values)
        assert eighty_x_rule(cc_e_reps[representation]) == eighty_x_rule(cc_e_reps["trace"])
        profile = size_access_profile(cc_e_reps[representation], "input")
        baseline_profile = size_access_profile(cc_e_reps["trace"], "input")
        assert np.array_equal(profile.file_sizes, baseline_profile.file_sizes)
        assert profile.jobs_below_gb_fraction == baseline_profile.jobs_below_gb_fraction

    def test_naming(self, cc_e_reps, representation):
        baseline = analyze_naming(cc_e_reps["trace"])
        naming = analyze_naming(cc_e_reps[representation])
        # Job-count shares are integer-weighted: exact for every chunking.
        assert naming.by_jobs.shares == baseline.by_jobs.shares
        # Byte-weighted shares group per chunk before summing, so a different
        # chunking (store vs in-memory chunk width) may differ in the last ulp.
        assert [word for word, _ in naming.by_bytes.shares] == \
            [word for word, _ in baseline.by_bytes.shares]
        assert [share for _, share in naming.by_bytes.shares] == pytest.approx(
            [share for _, share in baseline.by_bytes.shares], rel=SUM_REL)
        assert set(naming.framework_shares) == set(baseline.framework_shares)
        for weighting, shares in baseline.framework_shares.items():
            mine = naming.framework_shares[weighting]
            assert set(mine) == set(shares)
            for framework, share in shares.items():
                assert mine[framework] == pytest.approx(share, rel=SUM_REL)

    def test_clustering(self, cc_b_reps, representation):
        baseline = cluster_jobs(cc_b_reps["trace"], max_k=6, seed=0)
        clustering = cluster_jobs(cc_b_reps[representation], max_k=6, seed=0)
        assert clustering.k == baseline.k
        assert [cluster.n_jobs for cluster in clustering.clusters] == \
            [cluster.n_jobs for cluster in baseline.clusters]
        assert [cluster.label for cluster in clustering.clusters] == \
            [cluster.label for cluster in baseline.clusters]
        for mine, theirs in zip(clustering.clusters, baseline.clusters):
            assert mine.centroid == pytest.approx(theirs.centroid)

    def test_consolidation_study(self, cc_e_reps, cc_b_reps, representation):
        baseline = consolidation_study([cc_e_reps["trace"], cc_b_reps["trace"]])
        study = consolidation_study([cc_e_reps[representation], cc_b_reps[representation]])
        for name, burst in baseline.source_burstiness.items():
            assert study.source_burstiness[name].peak_to_median == pytest.approx(
                burst.peak_to_median, rel=SUM_REL)
        assert study.consolidated_burstiness.peak_to_median == pytest.approx(
            baseline.consolidated_burstiness.peak_to_median, rel=1e-6)
        assert study.remains_bursty == baseline.remains_bursty


class TestBenchSuiteEquivalence:
    @pytest.fixture(scope="class")
    def suite_results(self, cc_b_reps):
        return {
            representation: run_suite(
                traces={"CC-b": cc_b_reps[representation]},
                experiments=list(CHARACTERIZATION_EXPERIMENT_IDS),
                include_ablations=False, include_simulation=False)
            for representation in REPRESENTATIONS
        }

    @pytest.mark.parametrize("representation", ("columnar", "store"))
    def test_all_rows_identical_except_sketch_backed(self, suite_results, representation):
        baseline = {result.experiment_id: result for result in suite_results["trace"]}
        for result in suite_results[representation]:
            if representation == "store" and result.experiment_id == "figure1":
                continue  # sketch medians: checked numerically in the core tests
            assert result.rows == baseline[result.experiment_id].rows, result.experiment_id

    def test_figure1_store_rows_structurally_equal(self, suite_results):
        baseline = {r.experiment_id: r for r in suite_results["trace"]}["figure1"]
        store_result = {r.experiment_id: r for r in suite_results["store"]}["figure1"]
        assert len(store_result.rows) == len(baseline.rows)
        for mine, theirs in zip(store_result.rows, baseline.rows):
            assert mine[0] == theirs[0]  # workload name


class TestCharacterizeOnStore:
    def test_full_report_runs_out_of_core(self, cc_b_reps):
        report = characterize(cc_b_reps["store"], max_k=4)
        baseline = characterize(cc_b_reps["trace"], max_k=4)
        assert report.summary.n_jobs == baseline.summary.n_jobs
        assert report.clustering.k == baseline.clustering.k
        assert report.access.fractions == baseline.access.fractions
        rendered = report.render()
        assert "Per-job data sizes" in rendered and "Job types" in rendered
