"""Tests for Zipf fitting and the burstiness metric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    analyze_burstiness,
    burstiness_curve,
    fit_zipf_slope,
    hourly_task_seconds,
    rank_frequencies,
    zipf_goodness_of_fit,
)
from repro.errors import AnalysisError
from repro.synth import ZipfRank, sine_reference_series


class TestZipfFit:
    def test_exact_power_law_recovered(self):
        ranks = np.arange(1, 101, dtype=float)
        frequencies = 1000.0 * ranks ** (-5.0 / 6.0)
        slope, intercept, r_squared = fit_zipf_slope(ranks, frequencies)
        assert slope == pytest.approx(5.0 / 6.0, rel=1e-6)
        assert r_squared == pytest.approx(1.0, abs=1e-9)

    def test_fit_requires_positive_values(self):
        with pytest.raises(AnalysisError):
            fit_zipf_slope([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(AnalysisError):
            fit_zipf_slope([1.0], [1.0])

    def test_rank_frequencies_counts_accesses(self):
        paths = ["/a"] * 5 + ["/b"] * 3 + ["/c"] + [None] * 4
        ranks = rank_frequencies(paths)
        assert ranks.frequencies.tolist() == [5.0, 3.0, 1.0]
        assert ranks.total_accesses == 9
        assert ranks.n_items == 3

    def test_rank_frequencies_all_none_rejected(self):
        with pytest.raises(AnalysisError):
            rank_frequencies([None, None])

    def test_uniform_accesses_have_no_slope(self):
        ranks = rank_frequencies(["/a", "/b", "/c"])
        assert ranks.slope is None

    def test_zipf_samples_recover_slope_roughly(self):
        # Draw many accesses from a true Zipf rank distribution and check the
        # fitted slope lands near the generating exponent.
        rng = np.random.default_rng(0)
        dist = ZipfRank(2000, 5.0 / 6.0)
        samples = dist.sample(rng, 60000).astype(int)
        paths = ["/f/%d" % rank for rank in samples]
        ranks = rank_frequencies(paths)
        assert ranks.slope is not None
        assert 0.55 < ranks.slope < 1.15

    def test_top_share_and_goodness(self):
        paths = ["/hot"] * 80 + ["/f%d" % index for index in range(20)]
        ranks = rank_frequencies(paths)
        assert ranks.top_share(0.05) == pytest.approx(0.8)
        goodness = zipf_goodness_of_fit(ranks)
        assert set(goodness) >= {"slope", "r_squared", "top10_share_observed"}

    def test_top_share_invalid_fraction(self):
        ranks = rank_frequencies(["/a", "/a", "/b"])
        with pytest.raises(AnalysisError):
            ranks.top_share(0.0)


class TestBurstiness:
    def test_constant_series_not_bursty(self):
        result = burstiness_curve([10.0] * 200)
        assert result.peak_to_median == pytest.approx(1.0)
        assert result.p90_to_median == pytest.approx(1.0)

    def test_single_spike_is_bursty(self):
        values = [1.0] * 199 + [500.0]
        result = burstiness_curve(values)
        assert result.peak_to_median == pytest.approx(500.0)
        assert result.p90_to_median == pytest.approx(1.0)

    def test_sine_reference_mild_burstiness(self):
        series = sine_reference_series(14 * 24, offset=2.0)
        result = burstiness_curve(series)
        assert 1.0 < result.peak_to_median < 2.0

    def test_drop_zero_hours(self):
        values = [0.0] * 90 + [10.0] * 10
        with pytest.raises(AnalysisError):
            burstiness_curve(values, drop_zero_hours=False)
        result = burstiness_curve(values, drop_zero_hours=True)
        assert result.hours == 10

    def test_ratio_at_interpolates(self):
        result = burstiness_curve([1.0] * 99 + [10.0])
        assert result.ratio_at(50.0) == pytest.approx(1.0, abs=0.1)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            burstiness_curve([])

    def test_analyze_burstiness_on_trace(self, tiny_trace):
        result = analyze_burstiness(tiny_trace)
        assert result.peak_to_median >= 1.0
        series = hourly_task_seconds(tiny_trace)
        assert series.sum() == pytest.approx(
            sum(job.total_task_seconds for job in tiny_trace))

    def test_workload_burstier_than_sine(self, cc_e_trace):
        """Figure 8 shape: real workloads are far burstier than sine patterns."""
        workload = analyze_burstiness(cc_e_trace)
        sine = burstiness_curve(sine_reference_series(14 * 24, offset=2.0))
        assert workload.peak_to_median > 3 * sine.peak_to_median


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
                       min_size=3, max_size=300))
def test_property_burstiness_curve_monotone(values):
    """Normalized rate is non-decreasing in the percentile, and peak >= median."""
    result = burstiness_curve(values)
    ratios = [ratio for ratio, _ in result.curve]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert result.peak_to_median >= 1.0 - 1e-9
