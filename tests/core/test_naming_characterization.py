"""Tests for the job-name analysis (Figure 10) and the full characterizer."""

import pytest

from repro.core import (
    WorkloadCharacterizer,
    analyze_naming,
    characterize,
    classify_framework,
    first_word_breakdown,
    render_table,
)
from repro.errors import AnalysisError
from repro.traces import Job, Trace


class TestClassifyFramework:
    @pytest.mark.parametrize("word,expected", [
        ("insert", "hive"), ("select", "hive"), ("from", "hive"),
        ("piglatin", "pig"), ("oozie", "oozie"), ("distcp", "native"),
        ("mycustomjob", "native"), (None, "unknown"),
    ])
    def test_keyword_classification(self, word, expected):
        assert classify_framework(word) == expected

    def test_declared_framework_wins(self):
        assert classify_framework("insert", declared="pig") == "pig"


class TestFirstWordBreakdown:
    def test_by_jobs(self, tiny_trace):
        breakdown = first_word_breakdown(tiny_trace, "jobs")
        shares = dict(breakdown.shares)
        assert shares["select"] == pytest.approx(2 / 6)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_by_bytes_weights_large_jobs(self, tiny_trace):
        breakdown = first_word_breakdown(tiny_trace, "bytes")
        # The oozie job moves ~2.6 TB of the ~2.6 TB total.
        assert breakdown.share_of("oozie") > 0.9

    def test_unknown_weighting_rejected(self, tiny_trace):
        with pytest.raises(AnalysisError):
            first_word_breakdown(tiny_trace, "cpu")

    def test_top_n_folds_others(self):
        jobs = [Job(job_id=str(index), submit_time_s=index, duration_s=1, input_bytes=1,
                    shuffle_bytes=0, output_bytes=1, map_task_seconds=1,
                    reduce_task_seconds=0, name="%s run" % ("word" + "x" * index))
                for index in range(30)]
        breakdown = first_word_breakdown(Trace(jobs, name="many"), "jobs", top_n=5)
        assert breakdown.shares[-1][0] == "[others]"
        assert sum(share for _, share in breakdown.shares) == pytest.approx(1.0)

    def test_unnamed_jobs_grouped(self):
        jobs = [Job(job_id="a", submit_time_s=0, duration_s=1, input_bytes=1,
                    shuffle_bytes=0, output_bytes=1, map_task_seconds=1,
                    reduce_task_seconds=0)]
        breakdown = first_word_breakdown(Trace(jobs, name="u"), "jobs")
        assert breakdown.shares[0][0] == "[unnamed]"


class TestAnalyzeNaming:
    def test_tiny_trace_framework_shares(self, tiny_trace):
        analysis = analyze_naming(tiny_trace)
        shares = analysis.framework_shares["jobs"]
        assert shares["hive"] == pytest.approx(3 / 6)
        assert "hive" in analysis.dominant_frameworks("jobs", 2)
        assert 0.0 < analysis.framework_share("jobs") <= 1.0

    def test_unnamed_trace_rejected(self, fb_2009_small_trace):
        # FB-2009 generated traces do carry names; strip them to test the error.
        stripped = fb_2009_small_trace.filter(lambda job: False)
        with pytest.raises(AnalysisError):
            analyze_naming(stripped if not stripped.is_empty() else Trace([
                Job(job_id="x", submit_time_s=0, duration_s=1, input_bytes=1,
                    shuffle_bytes=0, output_bytes=1, map_task_seconds=1,
                    reduce_task_seconds=0)], name="unnamed"))

    def test_generated_workload_two_frameworks_dominate(self, cc_e_trace):
        """Figure 10 shape: two frameworks account for the majority of jobs."""
        analysis = analyze_naming(cc_e_trace)
        top_two = analysis.dominant_frameworks("jobs", 2)
        share = sum(analysis.framework_shares["jobs"][name] for name in top_two)
        assert share > 0.5
        assert analysis.framework_share("jobs") >= 0.2  # paper: at least 20%


class TestRenderTable:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]


class TestCharacterizer:
    def test_full_report_on_generated_workload(self, cc_b_small_trace):
        report = characterize(cc_b_small_trace, max_k=6)
        assert report.workload == cc_b_small_trace.name
        assert report.data_sizes is not None
        assert report.access is not None
        assert report.burstiness is not None
        assert report.correlations is not None
        assert report.naming is not None
        assert report.clustering is not None
        text = report.render()
        assert "Per-job data sizes" in text
        assert "Job types" in text

    def test_report_degrades_without_names_or_paths(self, fb_2009_small_trace):
        report = characterize(fb_2009_small_trace, cluster=False)
        assert report.clustering is None
        assert any("paths" in note for note in report.notes)
        assert report.naming is not None  # FB-2009 has names
        # Rendering never fails even with missing sections.
        assert "Workload" in report.render()

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            WorkloadCharacterizer().characterize(Trace([], name="e"))

    def test_cluster_flag_skips_clustering(self, tiny_trace):
        report = characterize(tiny_trace, cluster=False)
        assert report.clustering is None
